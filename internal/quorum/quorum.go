// Package quorum implements the primary-component selection rules used by
// the replication engine.
//
// The paper uses dynamic linear voting (Jajodia & Mutchler, TODS 1990):
// the component containing a (weighted) majority of the *last primary
// component* becomes the new primary. A static majority rule over the
// full server set is provided for comparison; the ablation benchmark
// shows why the paper chose DLV (availability under shrinking
// partitions).
package quorum

import (
	"evsdb/internal/types"
)

// System decides whether a connected component may install the next
// primary component.
type System interface {
	// IsQuorum reports whether members (the current component) may form
	// the next primary, given the membership of the last installed
	// primary component.
	IsQuorum(members, lastPrimary []types.ServerID) bool
	// Name identifies the rule in logs and benchmarks.
	Name() string
}

// DynamicLinear is weighted dynamic linear voting: a component qualifies
// when it holds a strict weighted majority of the previous primary
// component's membership.
type DynamicLinear struct {
	// Weights assigns voting weight per server; absent ids weigh 1.
	Weights map[types.ServerID]int
}

var _ System = DynamicLinear{}

// Name implements System.
func (DynamicLinear) Name() string { return "dynamic-linear-voting" }

// IsQuorum implements System.
func (d DynamicLinear) IsQuorum(members, lastPrimary []types.ServerID) bool {
	if len(lastPrimary) == 0 {
		// Bootstrap: no primary has ever been installed. Require the
		// component to contain a majority of itself — trivially true for
		// any non-empty component; the engine restricts bootstrap to the
		// full initial server set via its configuration.
		return len(members) > 0
	}
	total := 0
	have := 0
	in := make(map[types.ServerID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	for _, p := range lastPrimary {
		w := d.weight(p)
		total += w
		if in[p] {
			have += w
		}
	}
	return 2*have > total
}

func (d DynamicLinear) weight(id types.ServerID) int {
	if w, ok := d.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}

// StaticMajority requires a weighted majority of a fixed server set,
// regardless of history. Simpler, but a sequence of shrinking partitions
// that DLV would survive makes the system unavailable.
type StaticMajority struct {
	// All is the fixed universe of servers.
	All []types.ServerID
	// Weights assigns voting weight per server; absent ids weigh 1.
	Weights map[types.ServerID]int
}

var _ System = StaticMajority{}

// Name implements System.
func (StaticMajority) Name() string { return "static-majority" }

// IsQuorum implements System.
func (s StaticMajority) IsQuorum(members, _ []types.ServerID) bool {
	total := 0
	have := 0
	in := make(map[types.ServerID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	for _, a := range s.All {
		w := s.weight(a)
		total += w
		if in[a] {
			have += w
		}
	}
	return 2*have > total
}

func (s StaticMajority) weight(id types.ServerID) int {
	if w, ok := s.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}
