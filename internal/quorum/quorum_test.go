package quorum

import (
	"fmt"
	"testing"
	"testing/quick"

	"evsdb/internal/types"
)

func ids(names ...string) []types.ServerID {
	out := make([]types.ServerID, len(names))
	for i, n := range names {
		out[i] = types.ServerID(n)
	}
	return out
}

func TestDynamicLinearMajorityOfLastPrimary(t *testing.T) {
	d := DynamicLinear{}
	last := ids("a", "b", "c", "d", "e")
	tests := []struct {
		name    string
		members []types.ServerID
		want    bool
	}{
		{"3 of 5", ids("a", "b", "c"), true},
		{"2 of 5", ids("a", "b"), false},
		{"exactly half of 4 is not quorum", nil, false}, // placeholder, replaced below
		{"all", last, true},
		{"none overlapping", ids("x", "y", "z"), false},
		{"3 of 5 plus outsiders", ids("a", "b", "c", "x", "y"), true},
	}
	tests[2] = struct {
		name    string
		members []types.ServerID
		want    bool
	}{"half exactly", ids("a", "b"), false}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := d.IsQuorum(tt.members, last); got != tt.want {
				t.Fatalf("IsQuorum(%v) = %v, want %v", tt.members, got, tt.want)
			}
		})
	}
}

func TestDynamicLinearEvenSplit(t *testing.T) {
	d := DynamicLinear{}
	last := ids("a", "b", "c", "d")
	if d.IsQuorum(ids("a", "b"), last) {
		t.Fatal("2 of 4 must not be a quorum (strict majority)")
	}
	if !d.IsQuorum(ids("a", "b", "c"), last) {
		t.Fatal("3 of 4 must be a quorum")
	}
}

func TestDynamicLinearWeights(t *testing.T) {
	d := DynamicLinear{Weights: map[types.ServerID]int{"a": 3}}
	last := ids("a", "b", "c") // total weight 5
	if !d.IsQuorum(ids("a"), last) {
		t.Fatal("weight-3 member alone should be a quorum of weight-5 set")
	}
	if d.IsQuorum(ids("b", "c"), last) {
		t.Fatal("weight-2 pair should not be a quorum of weight-5 set")
	}
}

// TestAtMostOnePrimary is the safety property: for ANY partition of the
// last primary into disjoint components, at most one component qualifies.
func TestAtMostOnePrimary(t *testing.T) {
	systems := []System{
		DynamicLinear{},
		DynamicLinear{Weights: map[types.ServerID]int{"s0": 2, "s3": 3}},
		StaticMajority{All: ids("s0", "s1", "s2", "s3", "s4", "s5", "s6")},
	}
	last := ids("s0", "s1", "s2", "s3", "s4", "s5", "s6")
	prop := func(assign []uint8) bool {
		// Partition the 7 servers into up to 4 components.
		comps := make([][]types.ServerID, 4)
		for i, s := range last {
			g := 0
			if i < len(assign) {
				g = int(assign[i]) % 4
			}
			comps[g] = append(comps[g], s)
		}
		for _, sys := range systems {
			quorums := 0
			for _, c := range comps {
				if len(c) > 0 && sys.IsQuorum(c, last) {
					quorums++
				}
			}
			if quorums > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDLVSurvivesShrinkingPartitions shows the availability property the
// paper chose DLV for: after each re-formed primary, a majority OF THAT
// primary suffices — a cascade static majority cannot survive.
func TestDLVSurvivesShrinkingPartitions(t *testing.T) {
	d := DynamicLinear{}
	s := StaticMajority{All: ids("a", "b", "c", "d", "e")}

	// Round 1: {a,b,c} is 3 of 5 — both rules allow it.
	last := ids("a", "b", "c", "d", "e")
	comp := ids("a", "b", "c")
	if !d.IsQuorum(comp, last) || !s.IsQuorum(comp, last) {
		t.Fatal("round 1 should qualify under both rules")
	}

	// Round 2: that primary partitions again; {a,b} is 2 of 3 for DLV
	// but only 2 of 5 statically.
	last = comp
	comp = ids("a", "b")
	if !d.IsQuorum(comp, last) {
		t.Fatal("DLV should allow 2 of 3")
	}
	if s.IsQuorum(comp, last) {
		t.Fatal("static majority should refuse 2 of 5")
	}
}

func TestBootstrapEmptyLastPrimary(t *testing.T) {
	d := DynamicLinear{}
	if !d.IsQuorum(ids("a"), nil) {
		t.Fatal("bootstrap with no prior primary should pass (engine restricts via initial set)")
	}
	if d.IsQuorum(nil, nil) {
		t.Fatal("empty component can never be a quorum")
	}
}

func TestStaticMajorityWeights(t *testing.T) {
	s := StaticMajority{
		All:     ids("a", "b", "c"),
		Weights: map[types.ServerID]int{"c": 10},
	}
	if s.IsQuorum(ids("a", "b"), nil) {
		t.Fatal("a+b weigh 2 of 12")
	}
	if !s.IsQuorum(ids("c"), nil) {
		t.Fatal("c weighs 10 of 12")
	}
}

func TestNames(t *testing.T) {
	for _, sys := range []System{DynamicLinear{}, StaticMajority{}} {
		if sys.Name() == "" {
			t.Fatalf("%T has empty name", sys)
		}
	}
}

func ExampleDynamicLinear() {
	d := DynamicLinear{}
	last := []types.ServerID{"a", "b", "c", "d", "e"}
	fmt.Println(d.IsQuorum([]types.ServerID{"a", "b", "c"}, last))
	fmt.Println(d.IsQuorum([]types.ServerID{"d", "e"}, last))
	// Output:
	// true
	// false
}
