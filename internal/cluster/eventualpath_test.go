package cluster

import (
	"testing"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

// TestEventualPathPropagation checks the paper's § 3.1 claim: knowledge
// propagates by eventual path — the exchange runs in EVERY new component,
// so green actions reach servers that were never connected to the primary
// component that ordered them.
//
// Topology (7 replicas):
//  1. {s0..s3} is the primary and orders action X; {s4,s5,s6} is isolated.
//  2. Re-partition to {s0,s1,s2} | {s3,s4} | {s5,s6}: s3 carries X into
//     the non-primary component {s3,s4}. s4 must learn X as green there,
//     without ever having been connected to the primary that ordered it.
func TestEventualPathPropagation(t *testing.T) {
	c := testCluster(t, 7)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	// Phase 1: primary {s0..s3} orders X; {s4,s5,s6} never sees it.
	c.Partition(all[:4], all[4:])
	if err := c.WaitPrimary(10*time.Second, all[:4]...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "x", "ordered-in-primary")

	// Phase 2: s3 meets s4 in a strictly non-primary component (2 of 7).
	c.Partition(all[:3], []types.ServerID{all[3], all[4]}, all[5:])
	if err := c.WaitNonPrim(10*time.Second, all[3], all[4]); err != nil {
		t.Fatal(err)
	}

	// s4 obtains X as green via the exchange — the global order is known,
	// so the action applies even though the component is non-primary.
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := c.Replica(all[4]).Engine.Query(ctx(t), db.Get("x"), core.QueryWeak)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value == "ordered-in-primary" {
			break
		}
		if time.Now().After(deadline) {
			st := c.Replica(all[4]).Engine.Status()
			t.Fatalf("eventual path failed: s4 green=%d state=%v value=%q",
				st.GreenCount, st.State, res.Value)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And it stayed non-primary the whole time.
	if st := c.Replica(all[4]).Engine.Status(); st.State != core.NonPrim {
		t.Fatalf("s4 is %v, expected NonPrim", st.State)
	}
	if err := c.CheckTotalOrder(all[3], all[4]); err != nil {
		t.Fatal(err)
	}
}

// TestRedActionsPropagateThroughNonPrimary: the dual of the green case —
// red actions travel via non-primary exchanges so they reach the primary
// through intermediaries (the generator never reconnects).
func TestRedActionsPropagateThroughNonPrimary(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	// s4 is isolated and generates a red action.
	c.Partition(all[:4], all[4:])
	if err := c.WaitNonPrim(10*time.Second, all[4]); err != nil {
		t.Fatal(err)
	}
	pending, err := c.Replica(all[4]).Engine.SubmitAsync(
		db.EncodeUpdate(db.Set("carried", "by-intermediary")), nil, types.SemStrict)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the action is red locally.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replica(all[4]).Engine.Status().RedCount == 0 {
		if time.Now().After(deadline) {
			t.Fatal("action never turned red at s4")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// s3 meets s4 in a non-primary component and picks up the red action.
	c.Partition(all[:3], all[3:])
	if err := c.WaitNonPrim(10*time.Second, all[3], all[4]); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for c.Replica(all[3]).Engine.Status().RedCount == 0 {
		if time.Now().After(deadline) {
			t.Fatal("red action never reached s3 via the exchange")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Now s3 rejoins the majority — s4 stays isolated — and the carried
	// action gets ordered by a primary s4 has never reconnected to.
	c.Partition(all[:4], all[4:])
	if err := c.WaitPrimary(10*time.Second, all[:4]...); err != nil {
		t.Fatal(err)
	}
	for _, id := range all[:4] {
		waitValue(t, c, id, "carried", "by-intermediary")
	}

	// Finally s4 reconnects and its pending submit completes.
	c.Heal()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-pending:
		if r.Err != "" {
			t.Fatalf("carried action aborted: %s", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending submit never answered")
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

// TestJoinCompletesViaNonPrimaryPeer: the joiner's representative sits in
// a non-primary component; the PERSISTENT_JOIN is carried to the primary
// by eventual path, turns green, propagates back, and the join completes
// — the joiner itself never talks to the primary (paper § 5.1).
func TestJoinCompletesViaNonPrimaryPeer(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "seed", "1")

	// The representative s4 is in the minority.
	c.Partition(all[:3], all[3:])
	if err := c.WaitNonPrim(10*time.Second, all[3], all[4]); err != nil {
		t.Fatal(err)
	}

	joinDone := make(chan error, 1)
	go func() {
		_, err := c.Join(ctx(t), "s99", all[4])
		joinDone <- err
	}()
	// The join cannot complete while the representative is non-primary.
	select {
	case err := <-joinDone:
		t.Fatalf("join completed in a non-primary component: %v", err)
	case <-time.After(300 * time.Millisecond):
	}

	// Merge the representative's component with the primary briefly; the
	// JOIN action gets ordered; then the minority splits off again and
	// the join STILL completes (the green JOIN came back with s4).
	c.Heal()
	select {
	case err := <-joinDone:
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("join never completed after merge")
	}
	// The joiner inherited the seed through the snapshot.
	waitValue(t, c, "s99", "seed", "1")
}
