package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestRapidRepartitionTotalOrder hammers Theorem 1 under rapid
// re-partitioning (regression: a non-atomic history snapshot in the
// checker once produced false violations here).
func TestRapidRepartitionTotalOrder(t *testing.T) {
	for attempt := 0; attempt < 40; attempt++ {
		func() {
			c := testCluster(t, 5)
			all := c.IDs()
			if err := c.WaitPrimary(10*time.Second, all...); err != nil {
				t.Fatal(err)
			}
			mustSet(t, c, all[0], "pre", "1")
			for round := 0; round < 3; round++ {
				c.Partition(all[:3], all[3:])
				time.Sleep(time.Duration(round) * time.Millisecond)
				c.Partition(all[:2], all[2:])
				time.Sleep(time.Duration(round) * time.Millisecond)
				c.Heal()
				if err := c.WaitPrimary(20*time.Second, all...); err != nil {
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
				mustSet(t, c, all[round%5], fmt.Sprintf("round%d", round), "done")
				if err := c.CheckTotalOrder(all...); err != nil {
					for _, id := range all {
						h, hStart := c.Replica(id).Engine.GreenHistory()
						st := c.Replica(id).Engine.Status()
						t.Logf("%s green=%d base-start=%d hist=%v", id, st.GreenCount, hStart, h)
					}
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
			}
			c.Close()
		}()
	}
}
