package cluster

import (
	"fmt"
	"testing"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/types"
)

// TestRapidRepartitionTotalOrder hammers Theorem 1 under rapid
// re-partitioning (regression: a non-atomic history snapshot in the
// checker once produced false violations here).
func TestRapidRepartitionTotalOrder(t *testing.T) {
	for attempt := 0; attempt < 40; attempt++ {
		func() {
			c := testCluster(t, 5)
			all := c.IDs()
			if err := c.WaitPrimary(10*time.Second, all...); err != nil {
				t.Fatal(err)
			}
			mustSet(t, c, all[0], "pre", "1")
			for round := 0; round < 3; round++ {
				c.Partition(all[:3], all[3:])
				time.Sleep(time.Duration(round) * time.Millisecond)
				c.Partition(all[:2], all[2:])
				time.Sleep(time.Duration(round) * time.Millisecond)
				c.Heal()
				if err := c.WaitPrimary(20*time.Second, all...); err != nil {
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
				mustSet(t, c, all[round%5], fmt.Sprintf("round%d", round), "done")
				if err := c.CheckTotalOrder(all...); err != nil {
					dumpHistories(t, c, all)
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
				if err := c.CheckColoring(all...); err != nil {
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
			}
			c.Close()
		}()
	}
}

func dumpHistories(t *testing.T, c *Cluster, ids []types.ServerID) {
	t.Helper()
	for _, id := range ids {
		h, hStart := c.Replica(id).Engine.GreenHistory()
		st := c.Replica(id).Engine.Status()
		t.Logf("%s green=%d base-start=%d hist=%v", id, st.GreenCount, hStart, h)
	}
}

// TestCascadingThreeWaySplit re-partitions the network again while the
// previous partition's state exchange is still in flight — the cascading
// membership changes of paper § 4 — cutting three ways and then
// shattering to singletons before healing. The cascade points are
// event-driven: each further split fires as soon as a watched replica is
// observed to have left RegPrim, so the test lands inside the exchange
// window instead of guessing with sleeps.
func TestCascadingThreeWaySplit(t *testing.T) {
	leftRegPrim := func(r *Replica) bool { return r.Engine.Status().State != core.RegPrim }
	for attempt := 0; attempt < 12; attempt++ {
		func() {
			c := testCluster(t, 5)
			all := c.IDs()
			if err := c.WaitPrimary(10*time.Second, all...); err != nil {
				t.Fatal(err)
			}
			mustSet(t, c, all[0], "pre", "1")
			for round := 0; round < 3; round++ {
				// Three-way cut: {0,1,2} keeps quorum, {3} and {4} do not.
				c.Partition(all[:3], all[3:4], all[4:])
				c.waitCond(all[0], time.Now().Add(5*time.Second), leftRegPrim)
				// Cascade mid-exchange: the quorum side splits again and
				// node 2 switches sides while holding exchange state.
				c.Partition(all[:2], all[2:4], all[4:])
				c.waitCond(all[2], time.Now().Add(5*time.Second), leftRegPrim)
				// Shatter to singletons, then merge everyone back at once.
				c.Partition(all[:1], all[1:2], all[2:3], all[3:4], all[4:])
				c.Heal()
				if err := c.WaitPrimary(20*time.Second, all...); err != nil {
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
				key := fmt.Sprintf("cascade%d", round)
				mustSet(t, c, all[(round+1)%5], key, "done")
				for _, id := range all {
					waitValue(t, c, id, key, "done")
				}
				if err := c.CheckTotalOrder(all...); err != nil {
					dumpHistories(t, c, all)
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
				if err := c.CheckColoring(all...); err != nil {
					t.Fatalf("attempt %d round %d: %v", attempt, round, err)
				}
			}
			c.Close()
		}()
	}
}
