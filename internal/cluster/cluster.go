// Package cluster assembles full replication stacks — memnet endpoint,
// EVS node, stable storage, database, engine — for tests, examples and
// benchmarks, with scripting for partitions, merges, crashes, recoveries
// and online joins.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/obs"
	"evsdb/internal/quorum"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

// Option configures a Cluster.
type Option func(*Cluster)

// WithSyncPolicy selects the stable-storage sync policy for all replicas.
func WithSyncPolicy(p storage.SyncPolicy) Option {
	return func(c *Cluster) { c.logOpts.Policy = p }
}

// WithSyncLatency sets the simulated forced-write latency.
func WithSyncLatency(d time.Duration) Option {
	return func(c *Cluster) { c.logOpts.SyncLatency = d }
}

// WithEVSTick sets the group-communication protocol tick.
func WithEVSTick(d time.Duration) Option {
	return func(c *Cluster) { c.evsTick = d }
}

// WithNetwork passes options to the underlying memnet.
func WithNetwork(opts ...memnet.Option) Option {
	return func(c *Cluster) { c.netOpts = append(c.netOpts, opts...) }
}

// WithQuorum selects the quorum system for all replicas.
func WithQuorum(q quorum.System) Option {
	return func(c *Cluster) { c.quorum = q }
}

// WithMaxBatch caps how many submissions each engine coalesces into one
// ActionBatch (see core.Config.MaxBatchActions): 0 keeps the engine
// default, 1 (or negative) disables batching.
func WithMaxBatch(n int) Option {
	return func(c *Cluster) { c.maxBatch = n }
}

// WithBatchDelay sets the engines' batch collection window (see
// core.Config.MaxBatchDelay).
func WithBatchDelay(d time.Duration) Option {
	return func(c *Cluster) { c.batchDelay = d }
}

// WithApplyWorkers sets each replica database's parallel green-apply
// width (see core.Config.ApplyWorkers).
func WithApplyWorkers(n int) Option {
	return func(c *Cluster) { c.applyWorkers = n }
}

// WithApplyOracle enables the determinism oracle on every replica
// database: each green mutation is re-applied on a shadow sequential
// database and cross-checked (db.Database.EnableOracle). The simulator
// turns this on for every run and asserts db.CheckOracle in the finale.
func WithApplyOracle() Option {
	return func(c *Cluster) { c.applyOracle = true }
}

// WithCrashHook installs a fault-injection hook invoked at every engine
// "** sync to disk" barrier (see core.Config.SyncHook). Returning true
// kills the replica exactly at that barrier: the engine halts mid-handler
// and the network endpoint drops synchronously, before any post-barrier
// protocol message can leave the machine. The caller must still invoke
// Crash(id) afterwards to finish the teardown (close the GC stack and
// drop the unsynced log tail) before Recover(id).
func WithCrashHook(fn func(id types.ServerID, point string) bool) Option {
	return func(c *Cluster) { c.crashHook = fn }
}

// Replica bundles one server's full stack.
type Replica struct {
	ID     types.ServerID
	Engine *core.Engine
	GC     *evs.Node
	Log    *storage.MemLog
	DB     *db.Database
	// Obs is the observer shared by the replica's engine and EVS node: one
	// metrics registry and one event ring per incarnation (a recovery gets
	// a fresh one, like a restarted process would).
	Obs *obs.Observer
}

// Cluster is a set of replicas over one partitionable network.
type Cluster struct {
	Net *memnet.Network

	logOpts    storage.Options
	evsTick    time.Duration
	netOpts    []memnet.Option
	quorum     quorum.System
	maxBatch   int
	batchDelay time.Duration
	crashHook  func(id types.ServerID, point string) bool

	applyWorkers int
	applyOracle  bool

	mu       sync.Mutex
	replicas map[types.ServerID]*Replica
	servers  []types.ServerID
}

// ServerID names the i-th replica (zero-based) in a cluster.
func ServerID(i int) types.ServerID {
	return types.ServerID(fmt.Sprintf("s%02d", i))
}

// New builds and starts a cluster of n replicas named s00..s(n-1).
func New(n int, opts ...Option) (*Cluster, error) {
	c := &Cluster{
		logOpts:  storage.Options{Policy: storage.SyncForced},
		evsTick:  500 * time.Microsecond,
		replicas: make(map[types.ServerID]*Replica),
	}
	for _, opt := range opts {
		opt(c)
	}
	c.Net = memnet.New(c.netOpts...)
	for i := 0; i < n; i++ {
		c.servers = append(c.servers, ServerID(i))
	}
	for _, id := range c.servers {
		if _, err := c.start(id, nil, false); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// start attaches a replica stack for id. When snap is non-nil the replica
// joins from the snapshot; when recovering, the existing log is replayed.
func (c *Cluster) start(id types.ServerID, snap *core.JoinSnapshot, recovering bool) (*Replica, error) {
	ep, err := c.Net.Attach(id)
	if err != nil {
		return nil, fmt.Errorf("attach %s: %w", id, err)
	}
	ob := obs.NewObserver()
	gc := evs.NewNode(ep, evs.WithTick(c.evsTick), evs.WithObserver(ob))

	c.mu.Lock()
	var log *storage.MemLog
	if old, ok := c.replicas[id]; ok && recovering {
		log = old.Log // the disk survives the crash
	} else {
		log = storage.NewMemLog(c.logOpts)
	}
	servers := append([]types.ServerID(nil), c.servers...)
	c.mu.Unlock()

	database := db.New()
	if c.applyOracle {
		database.EnableOracle()
	}
	cfg := core.Config{
		ID:              id,
		Servers:         servers,
		GC:              gc,
		Log:             log,
		DB:              database,
		Quorum:          c.quorum,
		Recover:         recovering,
		MaxBatchActions: c.maxBatch,
		MaxBatchDelay:   c.batchDelay,
		Obs:             ob,
		ApplyWorkers:    c.applyWorkers,
	}
	if c.crashHook != nil {
		cfg.SyncHook = func(point string) bool {
			if !c.crashHook(id, point) {
				return false
			}
			c.Net.Crash(id)
			return true
		}
	}
	var eng *core.Engine
	if snap != nil {
		eng, err = core.NewFromJoin(cfg, snap)
	} else {
		eng, err = core.New(cfg)
	}
	if err != nil {
		gc.Close()
		return nil, fmt.Errorf("engine %s: %w", id, err)
	}
	r := &Replica{ID: id, Engine: eng, GC: gc, Log: log, DB: database, Obs: ob}
	c.mu.Lock()
	c.replicas[id] = r
	c.mu.Unlock()
	return r, nil
}

// Replica returns the stack for id (nil if crashed or unknown).
func (c *Cluster) Replica(id types.ServerID) *Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[id]
}

// IDs returns the initial server ids.
func (c *Cluster) IDs() []types.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]types.ServerID(nil), c.servers...)
}

// Alive returns ids of currently running replicas.
func (c *Cluster) Alive() []types.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []types.ServerID
	for id := range c.replicas {
		out = append(out, id)
	}
	return types.SortServerIDs(out)
}

// Partition splits the network (see memnet.Network.Partition).
func (c *Cluster) Partition(groups ...[]types.ServerID) {
	c.Net.Partition(groups...)
}

// Heal reconnects all components.
func (c *Cluster) Heal() { c.Net.Heal() }

// Crash kills a replica: the network endpoint drops, the engine and GC
// stop, and unsynced log records are lost (power-failure semantics).
func (c *Cluster) Crash(id types.ServerID) {
	c.mu.Lock()
	r := c.replicas[id]
	if r != nil {
		delete(c.replicas, id)
	}
	c.mu.Unlock()
	if r == nil {
		return
	}
	c.Net.Crash(id)
	r.GC.Close()
	r.Engine.Close()
	r.Log.Crash()
	c.mu.Lock()
	c.replicas[id] = r // keep the stack (and its disk) for recovery
	c.mu.Unlock()
}

// Recover restarts a crashed replica from its surviving log.
func (c *Cluster) Recover(id types.ServerID) (*Replica, error) {
	return c.start(id, nil, true)
}

// Join admits a brand-new replica via the given representative: the peer
// orders a PERSISTENT_JOIN, transfers a snapshot, and the new replica
// starts executing the algorithm (paper § 5.1).
func (c *Cluster) Join(ctx context.Context, newID, via types.ServerID) (*Replica, error) {
	peer := c.Replica(via)
	if peer == nil {
		return nil, fmt.Errorf("join via %s: no such replica", via)
	}
	snap, err := peer.Engine.RequestJoin(ctx, newID)
	if err != nil {
		return nil, fmt.Errorf("request join: %w", err)
	}
	c.mu.Lock()
	c.servers = append(c.servers, newID)
	c.mu.Unlock()
	return c.start(newID, snap, false)
}

// Close stops every replica.
func (c *Cluster) Close() {
	c.mu.Lock()
	reps := make([]*Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		reps = append(reps, r)
	}
	c.replicas = make(map[types.ServerID]*Replica)
	c.mu.Unlock()
	for _, r := range reps {
		r.GC.Close()
		r.Engine.Close()
	}
}

// waitCond blocks until cond holds for the replica or the deadline
// passes. It is event-driven: the engine's Watch channel signals state
// transitions and green applies, so the wait wakes as soon as anything
// observable changes. The wakeup wait is capped because the replica can
// be crashed and replaced underneath us — a dead engine never signals.
func (c *Cluster) waitCond(id types.ServerID, deadline time.Time, cond func(*Replica) bool) bool {
	for {
		r := c.Replica(id)
		if r == nil {
			if !time.Now().Before(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if cond(r) {
			return true
		}
		ch, cancel := r.Engine.Watch()
		if cond(r) { // re-check: the change may have raced the registration
			cancel()
			return true
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			cancel()
			return false
		}
		if wait > 20*time.Millisecond {
			wait = 20 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
		case <-t.C:
		}
		t.Stop()
		cancel()
	}
}

// WaitState waits until the replica reaches the given engine state.
func (c *Cluster) WaitState(id types.ServerID, want core.State, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	ok := c.waitCond(id, deadline, func(r *Replica) bool {
		return r.Engine.Status().State == want
	})
	if ok {
		return nil
	}
	r := c.Replica(id)
	if r == nil {
		return fmt.Errorf("wait %s for %v: replica down", id, want)
	}
	return fmt.Errorf("wait %s for %v: still %v", id, want, r.Engine.Status().State)
}

// WaitPrimary waits until every listed replica is in RegPrim.
func (c *Cluster) WaitPrimary(timeout time.Duration, ids ...types.ServerID) error {
	for _, id := range ids {
		if err := c.WaitState(id, core.RegPrim, timeout); err != nil {
			return err
		}
	}
	return nil
}

// WaitNonPrim waits until every listed replica is in NonPrim.
func (c *Cluster) WaitNonPrim(timeout time.Duration, ids ...types.ServerID) error {
	for _, id := range ids {
		if err := c.WaitState(id, core.NonPrim, timeout); err != nil {
			return err
		}
	}
	return nil
}

// WaitGreenCount waits until every listed replica has marked at least n
// actions green.
func (c *Cluster) WaitGreenCount(n uint64, timeout time.Duration, ids ...types.ServerID) error {
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		ok := c.waitCond(id, deadline, func(r *Replica) bool {
			return r.Engine.Status().GreenCount >= n
		})
		if !ok {
			return fmt.Errorf("wait green count %d: %s timed out", n, id)
		}
	}
	return nil
}

// CheckColoring verifies the paper's Fig. 1 invariant across the listed
// replicas: an action discarded as white at one server (known green
// everywhere) must be green at every other server — never red or
// missing. Operationally: everyone's white base is bounded by everyone
// else's green count.
func (c *Cluster) CheckColoring(ids ...types.ServerID) error {
	// Read all white bases first, then all green counts: greens are
	// monotone, so a white base justified at read time is still justified
	// against the later green reads (no false positives from skew).
	whites := make(map[types.ServerID]uint64)
	for _, id := range ids {
		if r := c.Replica(id); r != nil {
			whites[id] = r.Engine.Status().WhiteBase
		}
	}
	greens := make(map[types.ServerID]uint64)
	for _, id := range ids {
		if r := c.Replica(id); r != nil {
			greens[id] = r.Engine.Status().GreenCount
		}
	}
	for a, white := range whites {
		for b, green := range greens {
			if white > green {
				return fmt.Errorf("coloring violated: %s discarded %d whites but %s has only %d greens",
					a, white, b, green)
			}
		}
	}
	return nil
}

// CheckTotalOrder verifies Theorem 1 across the listed replicas: where
// green histories overlap, they must be identical. Returns an error
// describing the first divergence.
func (c *Cluster) CheckTotalOrder(ids ...types.ServerID) error {
	type hist struct {
		id    types.ServerID
		start uint64 // global seq of history[0]
		seq   []types.ActionID
	}
	var hs []hist
	for _, id := range ids {
		r := c.Replica(id)
		if r == nil {
			continue
		}
		h, firstAt := r.Engine.GreenHistory()
		hs = append(hs, hist{id: id, start: firstAt, seq: h})
	}
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			a, b := hs[i], hs[j]
			lo := a.start
			if b.start > lo {
				lo = b.start
			}
			hiA := a.start + uint64(len(a.seq))
			hiB := b.start + uint64(len(b.seq))
			hi := hiA
			if hiB < hi {
				hi = hiB
			}
			for p := lo; p < hi; p++ {
				x := a.seq[p-a.start]
				y := b.seq[p-b.start]
				if x != y {
					return fmt.Errorf("total order violated at %d: %s has %s, %s has %s",
						p, a.id, x, b.id, y)
				}
			}
		}
	}
	return nil
}
