package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

func testCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	opts = append([]Option{WithSyncPolicy(storage.SyncNone)}, opts...)
	c, err := New(n, opts...)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

func mustSet(t *testing.T, c *Cluster, id types.ServerID, key, value string) {
	t.Helper()
	r := c.Replica(id)
	reply, err := r.Engine.Submit(ctx(t), db.EncodeUpdate(db.Set(key, value)), nil, types.SemStrict)
	if err != nil {
		t.Fatalf("submit set %s=%s at %s: %v", key, value, id, err)
	}
	if reply.Err != "" {
		t.Fatalf("set %s=%s at %s aborted: %s", key, value, id, reply.Err)
	}
}

func mustGet(t *testing.T, c *Cluster, id types.ServerID, key string) string {
	t.Helper()
	r := c.Replica(id)
	res, err := r.Engine.Query(ctx(t), db.Get(key), core.QueryWeak)
	if err != nil {
		t.Fatalf("weak get %s at %s: %v", key, id, err)
	}
	return res.Value
}

func waitValue(t *testing.T, c *Cluster, id types.ServerID, key, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if mustGet(t, c, id, key) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica %s never saw %s=%q (have %q)", id, key, want, mustGet(t, c, id, key))
}

func TestPrimaryFormsAndReplicates(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	mustSet(t, c, all[0], "k", "v1")
	mustSet(t, c, all[3], "k2", "v2")

	for _, id := range all {
		waitValue(t, c, id, "k", "v1")
		waitValue(t, c, id, "k2", "v2")
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSubmittersTotalOrder(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	const perServer = 30
	errs := make(chan error, len(all))
	for _, id := range all {
		go func(id types.ServerID) {
			r := c.Replica(id)
			for i := 0; i < perServer; i++ {
				key := fmt.Sprintf("key-%s-%d", id, i)
				_, err := r.Engine.Submit(context.Background(),
					db.EncodeUpdate(db.Set(key, "x")), nil, types.SemStrict)
				if err != nil {
					errs <- fmt.Errorf("%s submit %d: %w", id, i, err)
					return
				}
			}
			errs <- nil
		}(id)
	}
	for range all {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	total := uint64(perServer * len(all))
	if err := c.WaitGreenCount(total, 15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMajorityStaysPrimary(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "pre", "1")

	maj := all[:3]
	min := all[3:]
	c.Partition(maj, min)

	if err := c.WaitPrimary(10*time.Second, maj...); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitNonPrim(10*time.Second, min...); err != nil {
		t.Fatal(err)
	}

	// The majority keeps committing.
	mustSet(t, c, maj[0], "maj", "yes")
	for _, id := range maj {
		waitValue(t, c, id, "maj", "yes")
	}

	// The minority cannot commit, but red actions serve dirty reads and
	// the green state serves weak reads.
	minRep := c.Replica(min[0])
	replyCh, err := minRep.Engine.SubmitAsync(db.EncodeUpdate(db.Set("min", "pending")), nil, types.SemStrict)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replyCh:
		t.Fatalf("minority action committed during partition: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}

	weak, err := minRep.Engine.Query(ctx(t), db.Get("pre"), core.QueryWeak)
	if err != nil || weak.Value != "1" {
		t.Fatalf("weak query: %v %+v", err, weak)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		dirty, err := minRep.Engine.Query(ctx(t), db.Get("min"), core.QueryDirty)
		if err == nil && dirty.Value == "pending" && dirty.Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dirty query never saw the red action: %+v err=%v", dirty, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Merge: the minority's red action obtains a global order; the
	// blocked Submit completes.
	c.Heal()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replyCh:
		if r.Err != "" {
			t.Fatalf("minority action aborted after merge: %s", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("minority action never committed after merge")
	}
	for _, id := range all {
		waitValue(t, c, id, "min", "pending")
		waitValue(t, c, id, "maj", "yes")
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

func TestMinorityNeverFormsPrimary(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	c.Partition(all[:2], all[2:3], all[3:])

	// No component holds 3 of 5: everyone must settle in NonPrim.
	if err := c.WaitNonPrim(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	// And stay there.
	time.Sleep(100 * time.Millisecond)
	for _, id := range all {
		if st := c.Replica(id).Engine.Status(); st.State == core.RegPrim {
			t.Fatalf("%s formed a primary without quorum", id)
		}
	}
}

func TestCrashRecoveryConverges(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "a", "1")

	c.Crash(all[2])
	if err := c.WaitPrimary(10*time.Second, all[:2]...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "b", "2")

	if _, err := c.Recover(all[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c, all[2], "a", "1")
	waitValue(t, c, all[2], "b", "2")
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointThenCrashRecover(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustSet(t, c, all[i%3], fmt.Sprintf("k%d", i), "v")
	}
	// Compact s01's log, then crash and recover it: replay starts from
	// the checkpoint and the replica converges as usual.
	if err := c.Replica(all[1]).Engine.Checkpoint(ctx(t)); err != nil {
		t.Fatal(err)
	}
	c.Crash(all[1])
	if err := c.WaitPrimary(10*time.Second, all[0], all[2]); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "post", "crash")
	if _, err := c.Recover(all[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		waitValue(t, c, all[1], fmt.Sprintf("k%d", i), "v")
	}
	waitValue(t, c, all[1], "post", "crash")
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}
