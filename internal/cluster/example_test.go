package cluster_test

import (
	"context"
	"fmt"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

func Example() {
	// Three replicas in one process, no fsync cost for the example.
	c, err := cluster.New(3, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		fmt.Println(err)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A strict write at one replica...
	eng := c.Replica(ids[0]).Engine
	reply, err := eng.Submit(ctx, db.EncodeUpdate(db.Set("k", "v")), nil, types.SemStrict)
	if err != nil || reply.Err != "" {
		fmt.Println(err, reply.Err)
		return
	}
	fmt.Println("ordered at position", reply.GreenSeq)

	// ...is readable everywhere once applied (weak read may lag briefly).
	other := c.Replica(ids[2]).Engine
	for {
		res, err := other.Query(ctx, db.Get("k"), core.QueryWeak)
		if err != nil {
			fmt.Println(err)
			return
		}
		if res.Value == "v" {
			fmt.Println("replicated:", res.Value)
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Output:
	// ordered at position 1
	// replicated: v
}

func ExampleCluster_Partition() {
	c, err := cluster.New(5, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		fmt.Println(err)
		return
	}

	// A 3|2 split: dynamic linear voting keeps the majority primary.
	// (Poll rather than read once: a transient membership echo can insert
	// one extra exchange round right after the first primary forms.)
	c.Partition(ids[:3], ids[3:])
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		maj := c.Replica(ids[0]).Engine.Status().State
		min := c.Replica(ids[4]).Engine.Status().State
		if maj == core.RegPrim && min == core.NonPrim {
			fmt.Println("majority primary:", maj)
			fmt.Println("minority:", min)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("never settled")
	// Output:
	// majority primary: RegPrim
	// minority: NonPrim
}
