package cluster

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// TestCommutativeConvergesAcrossPartition exercises the paper's § 6
// commutative-update semantics: both sides of a partition keep applying
// increments immediately; after the merge all replicas converge to the
// same total even though one-copy serializability was suspended.
func TestCommutativeConvergesAcrossPartition(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	c.Partition(all[:3], all[3:])
	if err := c.WaitPrimary(10*time.Second, all[:3]...); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitNonPrim(10*time.Second, all[3:]...); err != nil {
		t.Fatal(err)
	}

	// Both sides increment the same counter; the minority side gets
	// immediate replies despite being non-primary.
	submitAdd := func(id types.ServerID, n int64) {
		t.Helper()
		r, err := c.Replica(id).Engine.Submit(ctx(t),
			db.EncodeUpdate(db.Add("stock", n)), nil, types.SemCommutative)
		if err != nil {
			t.Fatalf("commutative add at %s: %v", id, err)
		}
		if r.Err != "" {
			t.Fatalf("commutative add aborted: %s", r.Err)
		}
	}
	submitAdd(all[0], 5)  // majority
	submitAdd(all[4], 7)  // minority, applied eagerly while red
	submitAdd(all[3], -2) // minority

	// The minority already sees its local effects.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := mustGet(t, c, all[4], "stock")
		if v == "5" {
			break // only its own two? no: 7-2=5 locally
		}
		if time.Now().After(deadline) {
			t.Fatalf("minority local state: stock=%q, want 5", v)
		}
		time.Sleep(2 * time.Millisecond)
	}

	c.Heal()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for _, id := range all {
		waitValue(t, c, id, "stock", "10") // 5 + 7 - 2
	}
}

// TestTimestampSemantics checks § 6 timestamp updates: the highest
// timestamp wins regardless of merge order.
func TestTimestampSemantics(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	c.Partition(all[:2], all[2:])
	if err := c.WaitPrimary(10*time.Second, all[:2]...); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitNonPrim(10*time.Second, all[2:]...); err != nil {
		t.Fatal(err)
	}

	// The isolated replica records a NEWER position fix than the primary.
	if _, err := c.Replica(all[0]).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.TSSet("loc", "old-primary", 100)), nil, types.SemTimestamp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replica(all[2]).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.TSSet("loc", "new-minority", 200)), nil, types.SemTimestamp); err != nil {
		t.Fatal(err)
	}

	c.Heal()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for _, id := range all {
		waitValue(t, c, id, "loc", "new-minority")
	}
}

// TestInteractiveCAS checks § 6 interactive transactions emulated by two
// actions: read, then a guarded update that aborts deterministically when
// the read values changed.
func TestInteractiveCAS(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "balance", "100")

	// A stale CAS (expects 100 after balance moved to 50) must abort at
	// every replica identically.
	mustSet(t, c, all[1], "balance", "50")
	r, err := c.Replica(all[0]).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.CAS(map[string]string{"balance": "100"}, db.Set("balance", "0"))),
		nil, types.SemStrict)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err == "" {
		t.Fatal("stale CAS did not abort")
	}
	// A fresh CAS succeeds.
	r, err = c.Replica(all[0]).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.CAS(map[string]string{"balance": "50"}, db.Set("balance", "45"))),
		nil, types.SemStrict)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != "" {
		t.Fatalf("fresh CAS aborted: %s", r.Err)
	}
	for _, id := range all {
		waitValue(t, c, id, "balance", "45")
	}
}

// TestActiveAction checks § 6 active transactions: a registered
// deterministic procedure invoked at ordering time.
func TestActiveAction(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	for _, id := range all {
		c.Replica(id).Engine.DB().RegisterProc("double", func(tx *db.Tx, _ []byte) error {
			v, _ := tx.Get("counter")
			n, _ := strconv.ParseInt(v, 10, 64)
			tx.Set("counter", strconv.FormatInt(n*2, 10))
			return nil
		})
	}
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "counter", "3")
	r, err := c.Replica(all[1]).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.Proc("double", nil)), nil, types.SemStrict)
	if err != nil || r.Err != "" {
		t.Fatalf("active action: %v %q", err, r.Err)
	}
	for _, id := range all {
		waitValue(t, c, id, "counter", "6")
	}
}

// TestStrictQueryOrdered checks that a strict query reflects every action
// the issuing server generated before it (paper § 6's query guarantee).
func TestStrictQueryOrdered(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	eng := c.Replica(all[0]).Engine
	for i := 0; i < 10; i++ {
		if _, err := eng.Submit(ctx(t),
			db.EncodeUpdate(db.Set("seq", fmt.Sprintf("%d", i))), nil, types.SemStrict); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Query(ctx(t), db.Get("seq"), core.QueryStrict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "9" {
		t.Fatalf("strict query returned %q, want 9", res.Value)
	}
}

// TestForcedWritesWithCrash runs with real forced-write semantics: records
// not yet synced are lost at a crash, and the recovered replica must
// converge anyway (the vulnerable mechanism and exchange close the gap).
func TestForcedWritesWithCrash(t *testing.T) {
	c := testCluster(t, 3,
		WithSyncPolicy(storage.SyncForced),
		WithSyncLatency(200*time.Microsecond))
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustSet(t, c, all[i%3], fmt.Sprintf("k%d", i), "v")
	}
	c.Crash(all[1])
	if err := c.WaitPrimary(10*time.Second, all[0], all[2]); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		mustSet(t, c, all[0], fmt.Sprintf("k%d", i), "v")
	}
	if _, err := c.Recover(all[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		waitValue(t, c, all[1], fmt.Sprintf("k%d", i), "v")
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

// TestWhiteCollection checks that actions green everywhere are discarded.
func TestWhiteCollection(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustSet(t, c, all[i%3], "k", fmt.Sprintf("%d", i))
	}
	// Green lines propagate via action piggybacking; keep traffic flowing
	// briefly so everyone learns everyone's progress.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mustSet(t, c, all[0], "tick", "x")
		st := c.Replica(all[0]).Engine.Status()
		if st.WhiteBase > 40 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("white collection never advanced: base=%d",
		c.Replica(all[0]).Engine.Status().WhiteBase)
}
