package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"evsdb/internal/db"
	"evsdb/internal/types"
)

// TestChurnWithCrashesAndRecoveries extends the torture test with full
// replica crashes (losing unsynced state) and recoveries interleaved with
// partitions. Total order must hold at every convergence point.
func TestChurnWithCrashesAndRecoveries(t *testing.T) {
	const replicas = 5
	rng := rand.New(rand.NewSource(23))
	c := testCluster(t, replicas)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 8; round++ {
		victim := all[rng.Intn(replicas)]
		c.Crash(victim)

		// The survivors re-form (4 of 5 always has quorum).
		var survivors []types.ServerID
		for _, id := range all {
			if id != victim {
				survivors = append(survivors, id)
			}
		}
		if err := c.WaitPrimary(15*time.Second, survivors...); err != nil {
			t.Fatalf("round %d after crash of %s: %v", round, victim, err)
		}
		// Commit work without the victim.
		for i := 0; i < 5; i++ {
			mustSet(t, c, survivors[rng.Intn(len(survivors))],
				fmt.Sprintf("churn-%d-%d", round, i), "v")
		}
		// Optionally partition the survivors too.
		if rng.Intn(2) == 0 {
			c.Partition(survivors[:3], survivors[3:])
			time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
			c.Heal()
		}
		if _, err := c.Recover(victim); err != nil {
			t.Fatalf("round %d recover %s: %v", round, victim, err)
		}
		if err := c.WaitPrimary(20*time.Second, all...); err != nil {
			t.Fatalf("round %d after recovery: %v", round, err)
		}
		if err := c.CheckTotalOrder(all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Everything committed anywhere is visible everywhere.
	for round := 0; round < 8; round++ {
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("churn-%d-%d", round, i)
			for _, id := range all {
				waitValue(t, c, id, key, "v")
			}
		}
	}
}

// TestJoinsUnderChurn admits new replicas while partitions come and go;
// every joiner must fully converge and the grown cluster must maintain
// total order.
func TestJoinsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "genesis", "1")

	members := append([]types.ServerID(nil), all...)
	for j := 0; j < 3; j++ {
		// Background traffic during the join.
		stopTraffic := make(chan struct{})
		trafficDone := make(chan struct{})
		go func(j int) {
			defer close(trafficDone)
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				r := c.Replica(all[i%3])
				if r != nil {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					_, _ = r.Engine.Submit(ctx,
						db.EncodeUpdate(db.Set(fmt.Sprintf("bg-%d-%d", j, i), "x")), nil, types.SemStrict)
					cancel()
				}
				time.Sleep(time.Millisecond)
			}
		}(j)

		joiner := types.ServerID(fmt.Sprintf("j%02d", j))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := c.Join(ctx, joiner, members[rng.Intn(len(members))]); err != nil {
			cancel()
			t.Fatalf("join %s: %v", joiner, err)
		}
		cancel()
		members = append(members, joiner)
		close(stopTraffic)
		<-trafficDone

		// A quick partition wiggle with the joiner in the mix.
		perm := rng.Perm(len(members))
		cut := 1 + rng.Intn(len(members)-1)
		var left, right []types.ServerID
		for i, p := range perm {
			if i < cut {
				left = append(left, members[p])
			} else {
				right = append(right, members[p])
			}
		}
		c.Partition(left, right)
		time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
		c.Heal()

		if err := c.WaitPrimary(25*time.Second, members...); err != nil {
			t.Fatalf("after join %s: %v", joiner, err)
		}
		waitValue(t, c, joiner, "genesis", "1")
		if err := c.CheckTotalOrder(members...); err != nil {
			t.Fatalf("after join %s: %v", joiner, err)
		}
	}
	// Final sanity: the 6-member cluster commits and replicates.
	mustSet(t, c, members[len(members)-1], "final", "done")
	for _, id := range members {
		waitValue(t, c, id, "final", "done")
	}
}
