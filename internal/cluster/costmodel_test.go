package cluster

import (
	"fmt"
	"testing"
	"time"

	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
)

// TestEngineMessageCostModel verifies the paper's accounting for the
// engine in steady state: ~one multicast per action (the action itself)
// plus constant-rate protocol overhead (ordering by the sequencer and
// amortized stability traffic) — and crucially, NO per-action end-to-end
// acknowledgment from every replica.
func TestEngineMessageCostModel(t *testing.T) {
	c := testCluster(t, 5, WithNetwork(memnet.WithSeed(1)))
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	// Quiesce, then measure a burst.
	time.Sleep(50 * time.Millisecond)
	before := c.Net.Stats()
	const actions = 200
	for i := 0; i < actions; i++ {
		mustSet(t, c, all[i%5], fmt.Sprintf("k%d", i), "v")
	}
	after := c.Net.Stats()

	mcPerAction := float64(after.MulticastOps-before.MulticastOps) / actions
	// Expected: 1 data multicast per action + sequencer order multicasts
	// (<=1 per action, amortized under batching) + stability multicasts
	// (amortized). A per-action ack scheme would push this to ~n+2 = 7.
	if mcPerAction > 4 {
		t.Fatalf("engine used %.2f multicasts/action; per-action acknowledgments have crept in", mcPerAction)
	}
	t.Logf("engine: %.2f multicast ops/action, %.2f unicast ops/action",
		mcPerAction, float64(after.UnicastOps-before.UnicastOps)/actions)
}

// TestEngineSyncCostModel verifies the disk accounting: one forced write
// per action at the GENERATOR only (group-commit may merge several); the
// other replicas apply green actions without forcing.
func TestEngineSyncCostModel(t *testing.T) {
	c := testCluster(t, 3,
		WithSyncPolicy(storage.SyncForced),
		WithSyncLatency(time.Millisecond))
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	gen := c.Replica(all[0])
	other := c.Replica(all[1])
	genBefore, otherBefore := gen.Log.SyncCount(), other.Log.SyncCount()

	const actions = 30
	for i := 0; i < actions; i++ {
		mustSet(t, c, all[0], fmt.Sprintf("s%d", i), "v") // all at replica 0
	}
	genSyncs := gen.Log.SyncCount() - genBefore
	otherSyncs := other.Log.SyncCount() - otherBefore

	if genSyncs == 0 || genSyncs > actions {
		t.Fatalf("generator forced %d writes for %d actions", genSyncs, actions)
	}
	// Appliers must not force per action (state-transition syncs only).
	if otherSyncs > 3 {
		t.Fatalf("applier forced %d writes for %d remote actions", otherSyncs, actions)
	}
	t.Logf("generator %d syncs, applier %d syncs for %d actions", genSyncs, otherSyncs, actions)
}

// TestClusterUnderLoss runs the full replication stack over a lossy
// network: NACK recovery below, FIFO cuts above — everything must still
// converge with total order intact.
func TestClusterUnderLoss(t *testing.T) {
	c := testCluster(t, 3, WithNetwork(memnet.WithLoss(0.05), memnet.WithSeed(11)))
	all := c.IDs()
	if err := c.WaitPrimary(20*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	const actions = 40
	for i := 0; i < actions; i++ {
		mustSet(t, c, all[i%3], fmt.Sprintf("lk%d", i), "v")
	}
	for _, id := range all {
		for i := 0; i < actions; i++ {
			waitValue(t, c, id, fmt.Sprintf("lk%d", i), "v")
		}
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
	if dropped := c.Net.Stats().Dropped; dropped == 0 {
		t.Fatal("loss model never dropped anything; test is vacuous")
	}
}

// TestPartitionDuringExchange interrupts the exchange itself: a second
// partition hits while state messages are in flight. The engines must
// re-exchange and converge rather than wedge.
func TestPartitionDuringExchange(t *testing.T) {
	c := testCluster(t, 5)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "pre", "1")

	for round := 0; round < 5; round++ {
		c.Partition(all[:3], all[3:])
		// Re-partition almost immediately — mid-exchange for most runs.
		time.Sleep(time.Duration(round) * time.Millisecond)
		c.Partition(all[:2], all[2:])
		time.Sleep(time.Duration(round) * time.Millisecond)
		c.Heal()
		if err := c.WaitPrimary(20*time.Second, all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		mustSet(t, c, all[round%5], fmt.Sprintf("round%d", round), "done")
		if err := c.CheckTotalOrder(all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for _, id := range all {
		waitValue(t, c, id, "round4", "done")
	}
}
