package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"evsdb/internal/db"
	"evsdb/internal/quorum"
	"evsdb/internal/types"
)

// TestDynamicJoin admits a brand-new replica via PERSISTENT_JOIN: the
// joiner restores a snapshot, catches up, and participates in ordering
// (paper § 5.1, Theorems 1–2 dynamic).
func TestDynamicJoin(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "before", "1")

	joiner := types.ServerID("s99")
	if _, err := c.Join(ctx(t), joiner, all[1]); err != nil {
		t.Fatal(err)
	}

	// The joiner inherits pre-join state via the snapshot and receives
	// post-join actions via replication.
	waitValue(t, c, joiner, "before", "1")
	mustSet(t, c, all[0], "after", "2")
	waitValue(t, c, joiner, "after", "2")

	// Everyone's replica set now includes the joiner.
	for _, id := range append(all, joiner) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			set := c.Replica(id).Engine.Status().ServerSet
			if containsID(set, joiner) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never learned about %s (set %v)", id, joiner, set)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The joiner can originate actions.
	r, err := c.Replica(joiner).Engine.Submit(ctx(t),
		db.EncodeUpdate(db.Set("from-joiner", "hi")), nil, types.SemStrict)
	if err != nil || r.Err != "" {
		t.Fatalf("joiner submit: %v %q", err, r.Err)
	}
	for _, id := range all {
		waitValue(t, c, id, "from-joiner", "hi")
	}
	if err := c.CheckTotalOrder(append(all, joiner)...); err != nil {
		t.Fatal(err)
	}
}

// TestJoinThenPrimaryCounting verifies the joiner counts in quorum after
// it has been part of an installed primary: 3 original + 1 joiner, then
// the original majority alone (2 of 4) must NOT form a primary.
func TestJoinThenPrimaryCounting(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	joiner := types.ServerID("s99")
	if _, err := c.Join(ctx(t), joiner, all[0]); err != nil {
		t.Fatal(err)
	}
	withJoiner := append(append([]types.ServerID(nil), all...), joiner)
	if err := c.WaitPrimary(10*time.Second, withJoiner...); err != nil {
		t.Fatal(err)
	}
	// Submit once so the new primary (with 4 members) has run.
	mustSet(t, c, all[0], "x", "1")

	// 2 of 4 is not a majority of the last primary: nobody is primary.
	c.Partition(all[:2], []types.ServerID{all[2], joiner})
	if err := c.WaitNonPrim(10*time.Second, all[0], all[1]); err != nil {
		t.Fatal(err)
	}
	// 2 of 4 on the other side either: also NonPrim.
	if err := c.WaitNonPrim(10*time.Second, all[2], joiner); err != nil {
		t.Fatal(err)
	}
}

// TestPersistentLeave removes a replica permanently; the remaining two of
// the original three keep forming primaries because the replica set
// shrank (paper § 5.1: without removal the system could block forever).
func TestPersistentLeave(t *testing.T) {
	c := testCluster(t, 3)
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	if err := c.Replica(all[2]).Engine.Leave(ctx(t)); err != nil {
		t.Fatal(err)
	}
	// The survivors' replica set shrinks to two.
	deadline := time.Now().Add(10 * time.Second)
	for {
		set := c.Replica(all[0]).Engine.Status().ServerSet
		if len(set) == 2 && !containsID(set, all[2]) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leave never applied: set %v", set)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The departed replica stops accepting work.
	c.Crash(all[2])
	if err := c.WaitPrimary(10*time.Second, all[:2]...); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "post-leave", "ok")
	waitValue(t, c, all[1], "post-leave", "ok")
}

// TestRandomPartitionSchedule is the repository's torture test: random
// partitions, merges and submissions across many rounds; after every heal
// the cluster must re-form a primary, converge, and never violate the
// global total order (Theorem 1).
func TestRandomPartitionSchedule(t *testing.T) {
	const (
		replicas = 5
		rounds   = 12
	)
	rng := rand.New(rand.NewSource(7))
	c := testCluster(t, replicas)
	all := c.IDs()
	if err := c.WaitPrimary(15*time.Second, all...); err != nil {
		t.Fatal(err)
	}

	var submitted int
	for round := 0; round < rounds; round++ {
		// Random two-way split (possibly trivial).
		cut := rng.Intn(replicas + 1)
		perm := rng.Perm(replicas)
		var left, right []types.ServerID
		for i, p := range perm {
			if i < cut {
				left = append(left, all[p])
			} else {
				right = append(right, all[p])
			}
		}
		if len(left) > 0 && len(right) > 0 {
			c.Partition(left, right)
		}

		// Fire-and-forget submissions at random replicas: some commit in
		// the primary side, some stay red until a later merge.
		for i := 0; i < 10; i++ {
			id := all[rng.Intn(replicas)]
			r := c.Replica(id)
			if r == nil {
				continue
			}
			key := fmt.Sprintf("r%d-%d", round, i)
			if _, err := r.Engine.SubmitAsync(
				db.EncodeUpdate(db.Set(key, string(id)+key)), nil, types.SemStrict); err != nil {
				t.Fatalf("submit: %v", err)
			}
			submitted++
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)

		c.Heal()
		if err := c.WaitPrimary(20*time.Second, all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := c.CheckTotalOrder(all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := c.CheckColoring(all...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	// Liveness: every submitted action is eventually ordered everywhere.
	if err := c.WaitGreenCount(uint64(submitted), 30*time.Second, all...); err != nil {
		// Account for actions still propagating; nudge with a final write.
		mustSet(t, c, all[0], "fin", "1")
		if err := c.WaitGreenCount(uint64(submitted)+1, 30*time.Second, all...); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckTotalOrder(all...); err != nil {
		t.Fatal(err)
	}
}

func containsID(ids []types.ServerID, want types.ServerID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func init() {
	// Keep the package compiling if context becomes unused in edits.
	_ = context.Background
}

// TestWeightedQuorum gives one replica enough voting weight to form a
// primary alone (paper § 3.1: "dynamic linear voting ... weighted
// majority").
func TestWeightedQuorum(t *testing.T) {
	c := testCluster(t, 3, WithQuorum(quorum.DynamicLinear{
		Weights: map[types.ServerID]int{ServerID(0): 5},
	}))
	all := c.IDs()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	// s00 alone outweighs s01+s02.
	c.Partition(all[:1], all[1:])
	if err := c.WaitPrimary(10*time.Second, all[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitNonPrim(10*time.Second, all[1], all[2]); err != nil {
		t.Fatal(err)
	}
	mustSet(t, c, all[0], "heavy", "committed-alone")
	c.Heal()
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c, all[2], "heavy", "committed-alone")
}
