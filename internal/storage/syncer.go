package storage

import (
	"sync"

	"evsdb/internal/queue"
)

// AsyncSyncer decouples protocol loops from forced-write latency: a loop
// appends records, then schedules a callback to run once everything
// appended so far is durable. A single writer goroutine drains pending
// callbacks, performs one Sync (group commit) per batch, and runs the
// callbacks in FIFO order.
//
// Callbacks run on the writer goroutine; they must only touch thread-safe
// state (send on the network, close a client channel, bump an atomic).
type AsyncSyncer struct {
	log Log
	q   *queue.Unbounded[taggedFn]

	stopOnce sync.Once
	done     chan struct{}
}

type taggedFn struct {
	tag string
	fn  func()
}

// NewAsyncSyncer starts the writer goroutine.
func NewAsyncSyncer(log Log) *AsyncSyncer {
	s := &AsyncSyncer{
		log:  log,
		q:    queue.NewUnbounded[taggedFn](),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// After schedules fn to run once all records appended to the log before
// this call are durable. Callbacks run in FIFO order.
func (s *AsyncSyncer) After(fn func()) {
	s.q.Push(taggedFn{fn: fn})
}

// AfterTagged is After with coalescing: if several callbacks with the
// same tag land in one sync batch, only the newest runs. Use for
// cumulative notifications (acknowledgment bounds) where the latest
// subsumes the rest — the natural pairing with group commit.
func (s *AsyncSyncer) AfterTagged(tag string, fn func()) {
	s.q.Push(taggedFn{tag: tag, fn: fn})
}

// Close stops the writer after draining scheduled callbacks.
func (s *AsyncSyncer) Close() {
	s.stopOnce.Do(func() { s.q.Close() })
	<-s.done
}

func (s *AsyncSyncer) run() {
	defer close(s.done)
	for {
		first, ok := s.q.Pop()
		if !ok {
			return
		}
		batch := []taggedFn{first}
		for s.q.Len() > 0 {
			next, ok := s.q.Pop()
			if !ok {
				break
			}
			batch = append(batch, next)
		}
		_ = s.log.Sync() // one forced write covers the whole batch
		// Coalesce tagged callbacks: only the newest per tag runs.
		var lastByTag map[string]int
		for i, t := range batch {
			if t.tag == "" {
				continue
			}
			if lastByTag == nil {
				lastByTag = make(map[string]int)
			}
			lastByTag[t.tag] = i
		}
		for i, t := range batch {
			if t.tag != "" && lastByTag[t.tag] != i {
				continue
			}
			t.fn()
		}
	}
}
