// Package storage provides the stable-storage abstraction the replication
// engine writes to at its "** sync to disk" points (paper, Appendix A).
//
// The engine's correctness across crashes depends on what survives: a
// server that crashes while vulnerable must find, on recovery, exactly the
// records it forced to disk. The in-memory implementation models this
// precisely — records are split into a synced prefix and an unsynced tail,
// a simulated crash discards the tail — while also charging a configurable
// latency per forced sync so benchmarks reproduce the paper's disk-bound
// results (Fig. 5(b)). A file-backed implementation performs real fsyncs
// for deployments.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("storage: log closed")

// SyncPolicy selects how Sync behaves.
type SyncPolicy int

const (
	// SyncForced makes Sync a durable write barrier (and charges the
	// configured latency). This is the paper's "forced disk write".
	SyncForced SyncPolicy = iota + 1
	// SyncDelayed makes Sync return immediately; data is made durable in
	// the background. Corresponds to the paper's "delayed writes" run,
	// trading a bounded durability window for throughput.
	SyncDelayed
	// SyncNone disables durability accounting entirely (testing).
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncForced:
		return "forced"
	case SyncDelayed:
		return "delayed"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Log is an append-only record log with an explicit sync barrier.
type Log interface {
	// Append adds one opaque record to the log tail.
	Append(record []byte) error
	// Sync makes all appended records durable, per the sync policy.
	Sync() error
	// Records returns every durable record in append order. Used on
	// recovery.
	Records() ([][]byte, error)
	// Close releases resources. Idempotent.
	Close() error
}

// Compactable is implemented by logs that support atomic replacement of
// their whole contents — used by checkpointing to truncate history.
type Compactable interface {
	// Rewrite atomically replaces the log's durable contents.
	Rewrite(records [][]byte) error
}

// Options configures a log.
type Options struct {
	// Policy selects the Sync behaviour. Default SyncForced.
	Policy SyncPolicy
	// SyncLatency is the simulated cost of one forced write. It models
	// the rotational/SSD fsync the paper's evaluation is dominated by.
	// Applied by MemLog on every forced Sync; added by FileLog on top of
	// the real fsync (usually left zero there).
	SyncLatency time.Duration
}

func (o Options) withDefaults() Options {
	if o.Policy == 0 {
		o.Policy = SyncForced
	}
	return o
}

// MemLog is an in-memory Log with crash semantics: records appended but
// not yet synced are lost by Crash.
//
// Sync implements group commit: one physical sync (one latency charge)
// covers every record appended before it started, and concurrent callers
// share rounds — exactly how production write-ahead logs amortize fsync.
type MemLog struct {
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	synced    [][]byte
	unsynced  [][]byte
	closed    bool
	syncing   bool
	appendGen uint64 // records appended so far
	syncedGen uint64 // records covered by completed syncs

	syncCount   uint64
	appendCount uint64
}

var (
	_ Log         = (*MemLog)(nil)
	_ Compactable = (*MemLog)(nil)
)

// NewMemLog returns an empty in-memory log.
func NewMemLog(opts Options) *MemLog {
	l := &MemLog{opts: opts.withDefaults()}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append implements Log.
func (l *MemLog) Append(record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.appendCount++
	l.appendGen++
	l.unsynced = append(l.unsynced, append([]byte(nil), record...))
	if l.opts.Policy == SyncNone || l.opts.Policy == SyncDelayed {
		// Delayed/none: model an OS page cache that is continuously
		// flushed; records become "durable" immediately for recovery
		// purposes, but Sync never blocks. The durability window that a
		// real delayed-write system risks is the paper's stated trade.
		l.synced = append(l.synced, l.unsynced...)
		l.unsynced = l.unsynced[:0]
	}
	return nil
}

// Sync implements Log. Under SyncForced it blocks until every record
// appended before the call is durable, charging the configured latency.
// Concurrent callers share sync rounds (group commit).
func (l *MemLog) Sync() error {
	if l.opts.Policy != SyncForced {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	myGen := l.appendGen
	for {
		if l.closed {
			return ErrClosed
		}
		if l.syncedGen >= myGen {
			return nil // a shared round already covered our records
		}
		if !l.syncing {
			break
		}
		l.cond.Wait() // an in-flight round may cover us; recheck after
	}
	l.syncing = true
	covers := l.appendGen
	l.mu.Unlock()

	if l.opts.SyncLatency > 0 {
		time.Sleep(l.opts.SyncLatency)
	}

	l.mu.Lock()
	l.syncing = false
	l.syncCount++
	l.synced = append(l.synced, l.unsynced...)
	l.unsynced = l.unsynced[:0]
	if covers > l.syncedGen {
		l.syncedGen = covers
	}
	l.cond.Broadcast()
	if l.closed {
		return ErrClosed
	}
	return nil
}

// Records implements Log: only durable records are returned.
func (l *MemLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	out := make([][]byte, len(l.synced))
	for i, r := range l.synced {
		out[i] = append([]byte(nil), r...)
	}
	return out, nil
}

// Crash simulates a power failure: the unsynced tail is lost. The log
// remains usable (it represents the disk, which survives).
func (l *MemLog) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.unsynced = l.unsynced[:0]
	l.syncedGen = l.appendGen
	l.closed = false
	l.cond.Broadcast()
}

// Rewrite implements Compactable: the new contents are immediately
// durable (a real implementation writes a sidecar file and renames).
func (l *MemLog) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.synced = l.synced[:0]
	for _, r := range records {
		l.synced = append(l.synced, append([]byte(nil), r...))
	}
	l.unsynced = l.unsynced[:0]
	l.syncedGen = l.appendGen
	return nil
}

// SyncCount returns the number of forced syncs performed (benchmarking).
func (l *MemLog) SyncCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncCount
}

// Close implements Log.
func (l *MemLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
	return nil
}

// FileLog is a file-backed Log using length-prefixed records and real
// fsync barriers.
type FileLog struct {
	opts Options
	path string

	mu     sync.Mutex
	f      *os.File
	closed bool
}

var (
	_ Log         = (*FileLog)(nil)
	_ Compactable = (*FileLog)(nil)
)

// OpenFileLog opens (or creates) a log file. A torn tail left by a crash
// mid-append is truncated away, so post-recovery appends continue from
// the last intact record instead of landing unreachably after garbage.
func OpenFileLog(path string, opts Options) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open log %q: %w", path, err)
	}
	valid, err := scanValidPrefix(f)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("scan log %q: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("truncate torn tail of %q: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("seek log %q: %w", path, err)
	}
	return &FileLog{opts: opts.withDefaults(), path: path, f: f}, nil
}

// scanValidPrefix returns the byte length of the longest prefix of f that
// consists of complete length-prefixed records.
func scanValidPrefix(f *os.File) (int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	var valid int64
	var hdr [4]byte
	for {
		if valid+4 > size {
			return valid, nil // torn (or absent) header
		}
		if _, err := f.ReadAt(hdr[:], valid); err != nil {
			return 0, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[:]))
		if valid+4+n > size {
			return valid, nil // torn record body
		}
		valid += 4 + n
	}
}

// Rewrite implements Compactable: write a sidecar, fsync it, and rename
// over the log so the replacement is atomic on crash.
func (l *FileLog) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("create %q: %w", tmpPath, err)
	}
	var hdr [4]byte
	for _, rec := range records {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(rec)))
		if _, err := tmp.Write(hdr[:]); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("write sidecar: %w", err)
		}
		if _, err := tmp.Write(rec); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("write sidecar: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("sync sidecar: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("close sidecar: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("swap log: %w", err)
	}
	_ = l.f.Close()
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("reopen log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return fmt.Errorf("seek reopened log: %w", err)
	}
	l.f = f
	return nil
}

// Append implements Log.
func (l *FileLog) Append(record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(record)))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("append header: %w", err)
	}
	if _, err := l.f.Write(record); err != nil {
		return fmt.Errorf("append record: %w", err)
	}
	return nil
}

// Sync implements Log.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.opts.Policy != SyncForced {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("fsync: %w", err)
	}
	if l.opts.SyncLatency > 0 {
		time.Sleep(l.opts.SyncLatency)
	}
	return nil
}

// Records implements Log.
func (l *FileLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("seek: %w", err)
	}
	var out [][]byte
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn header from a crash mid-append: discard tail
			}
			return nil, fmt.Errorf("read header: %w", err)
		}
		rec := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(l.f, rec); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn record: discard
			}
			return nil, fmt.Errorf("read record: %w", err)
		}
		out = append(out, rec)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, fmt.Errorf("seek end: %w", err)
	}
	return out, nil
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
