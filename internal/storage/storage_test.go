package storage

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMemLogAppendSyncRecords(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced})
	if err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "a" || string(recs[1]) != "b" {
		t.Fatalf("records: %q", recs)
	}
}

func TestMemLogCrashLosesUnsynced(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced})
	_ = l.Append([]byte("durable"))
	_ = l.Sync()
	_ = l.Append([]byte("lost"))
	l.Crash()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "durable" {
		t.Fatalf("post-crash records: %q", recs)
	}
	// The log remains usable after the crash (the disk survived).
	_ = l.Append([]byte("after"))
	_ = l.Sync()
	recs, _ = l.Records()
	if len(recs) != 2 || string(recs[1]) != "after" {
		t.Fatalf("post-recovery records: %q", recs)
	}
}

func TestMemLogDelayedIsImmediatelyVisible(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncDelayed, SyncLatency: time.Hour})
	_ = l.Append([]byte("x"))
	start := time.Now()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("delayed sync blocked")
	}
	recs, _ := l.Records()
	if len(recs) != 1 {
		t.Fatalf("records: %q", recs)
	}
}

func TestMemLogGroupCommit(t *testing.T) {
	// Concurrent Sync calls share rounds: with latency L and N
	// concurrent writers, total time is far below N*L.
	const latency = 20 * time.Millisecond
	l := NewMemLog(Options{Policy: SyncForced, SyncLatency: latency})
	const writers = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = l.Append([]byte("r"))
			_ = l.Sync()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > time.Duration(writers)*latency/2 {
		t.Fatalf("no group commit: %d writers took %v", writers, elapsed)
	}
	if got := l.SyncCount(); got == 0 || got > writers {
		t.Fatalf("sync count %d out of range", got)
	}
	recs, _ := l.Records()
	if len(recs) != writers {
		t.Fatalf("records after group commit: %d", len(recs))
	}
}

func TestMemLogSyncCoversPriorAppends(t *testing.T) {
	// A Sync must cover exactly the records appended before it started;
	// records appended during the latency window need the next round.
	l := NewMemLog(Options{Policy: SyncForced, SyncLatency: 10 * time.Millisecond})
	_ = l.Append([]byte("first"))
	done := make(chan struct{})
	go func() {
		_ = l.Sync()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	_ = l.Append([]byte("second"))
	<-done
	l.Crash()
	recs, _ := l.Records()
	if len(recs) < 1 || string(recs[0]) != "first" {
		t.Fatalf("first record not durable: %q", recs)
	}
}

func TestMemLogClosed(t *testing.T) {
	l := NewMemLog(Options{})
	_ = l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
	if _, err := l.Records(); err == nil {
		t.Fatal("records after close succeeded")
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, Options{Policy: SyncForced})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append([]byte("one"))
	_ = l.Append([]byte("two two"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two two" {
		t.Fatalf("records: %q", recs)
	}
	// Appends continue after a Records scan (seek restored).
	_ = l2.Append([]byte("three"))
	recs, _ = l2.Records()
	if len(recs) != 3 {
		t.Fatalf("after reopen append: %q", recs)
	}
}

func TestFileLogTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append([]byte("good"))
	// Simulate a torn write: a header promising more bytes than exist.
	if _, err := l.f.Write([]byte{0, 0, 0, 99, 'x'}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("torn tail not discarded: %q", recs)
	}
	_ = l.Close()
}

func TestAsyncSyncerOrdering(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced})
	s := NewAsyncSyncer(l)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		i := i
		s.After(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	s.Close()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("callbacks out of order: %v", order)
		}
	}
}

func TestAsyncSyncerTaggedCoalesces(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced, SyncLatency: 5 * time.Millisecond})
	s := NewAsyncSyncer(l)
	var mu sync.Mutex
	var got []int
	// Stall the writer with one slow round so the tagged batch queues up.
	var first sync.WaitGroup
	first.Add(1)
	s.After(func() { first.Done() })
	for i := 0; i < 10; i++ {
		i := i
		s.AfterTagged("cum", func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	first.Wait()
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no tagged callback ran")
	}
	if got[len(got)-1] != 9 {
		t.Fatalf("newest tagged callback did not run last: %v", got)
	}
	if len(got) == 10 {
		t.Log("no coalescing occurred (timing-dependent); newest still ran")
	}
}

func TestSyncPolicyString(t *testing.T) {
	for p := SyncPolicy(0); p <= 4; p++ {
		if p.String() == "" {
			t.Fatalf("empty string for policy %d", int(p))
		}
	}
}

func TestFileLogRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, Options{Policy: SyncForced})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = l.Append([]byte("old"))
	}
	_ = l.Sync()
	if err := l.Rewrite([][]byte{[]byte("checkpoint"), []byte("tail")}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "checkpoint" || string(recs[1]) != "tail" {
		t.Fatalf("post-rewrite records: %q", recs)
	}
	// Appends continue on the new file and survive reopen.
	_ = l.Append([]byte("after"))
	_ = l.Sync()
	_ = l.Close()
	l2, err := OpenFileLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ = l2.Records()
	if len(recs) != 3 || string(recs[2]) != "after" {
		t.Fatalf("reopened records: %q", recs)
	}
}

func TestMemLogRewrite(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced})
	_ = l.Append([]byte("old"))
	_ = l.Sync()
	_ = l.Append([]byte("unsynced-old"))
	if err := l.Rewrite([][]byte{[]byte("new")}); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.Records()
	if len(recs) != 1 || string(recs[0]) != "new" {
		t.Fatalf("records: %q", recs)
	}
	// A crash right after a rewrite keeps the rewritten contents.
	l.Crash()
	recs, _ = l.Records()
	if len(recs) != 1 {
		t.Fatalf("records after crash: %q", recs)
	}
}

func TestAsyncSyncerCloseDrains(t *testing.T) {
	l := NewMemLog(Options{Policy: SyncForced, SyncLatency: time.Millisecond})
	s := NewAsyncSyncer(l)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 20; i++ {
		s.After(func() {
			mu.Lock()
			ran++
			mu.Unlock()
		})
	}
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if ran != 20 {
		t.Fatalf("close dropped callbacks: ran %d of 20", ran)
	}
}
