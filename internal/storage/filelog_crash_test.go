package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Crash-recovery tests for the file-backed log. A process crash is
// simulated by abandoning the handle (no Close, no final fsync) and — for
// the torn-write cases — by truncating the file at a byte boundary a
// partial kernel write could leave behind. What we can assert in-process
// is the recovery contract: on reopen, exactly the longest intact record
// prefix survives, the torn tail is gone for good, and appends made after
// recovery are themselves recoverable.

func openTestLog(t *testing.T, path string, p SyncPolicy) *FileLog {
	t.Helper()
	l, err := OpenFileLog(path, Options{Policy: p})
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l
}

func appendAll(t *testing.T, l *FileLog, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("append %q: %v", r, err)
		}
	}
}

func wantRecords(t *testing.T, l *FileLog, want ...string) {
	t.Helper()
	got, err := l.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d (%q)", len(got), len(want), want)
	}
	for i := range want {
		if !bytes.Equal(got[i], []byte(want[i])) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFileLogCrashReopenEachPolicy reopens a log abandoned without Close
// under every sync policy: the synced records must survive, both before
// and after a Sync barrier was issued.
func TestFileLogCrashReopenEachPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncForced, SyncDelayed, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")

			// Crash before any Sync: the OS may or may not have flushed the
			// appends; our simulation keeps them (the file survives), and
			// recovery must parse whatever prefix is intact.
			l := openTestLog(t, path, p)
			appendAll(t, l, "a1", "a2")
			// no Sync, no Close: process dies here
			r := openTestLog(t, path, p)
			wantRecords(t, r, "a1", "a2")

			// Crash after Sync: everything before the barrier is durable by
			// contract under every policy.
			appendAll(t, r, "b1")
			if err := r.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			appendAll(t, r, "c1") // after the barrier; may be lost for real
			r2 := openTestLog(t, path, p)
			wantRecords(t, r2, "a1", "a2", "b1", "c1")
			_ = r2.Close()
		})
	}
}

// TestFileLogTornTailTruncatedAtOpen cuts the file at every byte boundary
// inside the last record (header and body) and verifies reopen recovers
// exactly the intact prefix — and, critically, that appends made after
// the recovery are visible to subsequent reads and reopens (a torn tail
// left in place would swallow them).
func TestFileLogTornTailTruncatedAtOpen(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	l := openTestLog(t, base, SyncForced)
	appendAll(t, l, "first", "second", "third-victim")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	intact := int64(4+5) + int64(4+6) // "first" + "second" framing
	full, err := os.Stat(base)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()

	for cut := intact + 1; cut < full.Size(); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")
			data, err := os.ReadFile(base)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			r := openTestLog(t, path, SyncForced)
			wantRecords(t, r, "first", "second")
			appendAll(t, r, "post-crash")
			if err := r.Sync(); err != nil {
				t.Fatal(err)
			}
			wantRecords(t, r, "first", "second", "post-crash")
			_ = r.Close()
			r2 := openTestLog(t, path, SyncForced)
			wantRecords(t, r2, "first", "second", "post-crash")
			_ = r2.Close()
		})
	}
}

// TestFileLogRewriteCrashAtomicity simulates a crash between writing the
// compaction sidecar and renaming it over the log: the stale sidecar must
// not disturb recovery (old contents win), and a later Rewrite must still
// succeed over it.
func TestFileLogRewriteCrashAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l := openTestLog(t, path, SyncForced)
	appendAll(t, l, "keep1", "keep2")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()

	// Crash mid-compaction: the sidecar exists with new contents, but the
	// rename never happened.
	if err := os.WriteFile(path+".compact", []byte("\x00\x00\x00\x05bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTestLog(t, path, SyncForced)
	wantRecords(t, r, "keep1", "keep2")

	// Compaction retried after recovery replaces both log and sidecar.
	if err := r.Rewrite([][]byte{[]byte("compacted")}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	wantRecords(t, r, "compacted")
	_ = r.Close()
	r2 := openTestLog(t, path, SyncForced)
	wantRecords(t, r2, "compacted")
	_ = r2.Close()
}

// TestFileLogRecoverEmptyAndHeaderOnly covers degenerate crash leftovers:
// an empty file and a file holding only a partial header.
func TestFileLogRecoverEmptyAndHeaderOnly(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openTestLog(t, empty, SyncForced)
	wantRecords(t, l)
	_ = l.Close()

	partial := filepath.Join(dir, "partial")
	if err := os.WriteFile(partial, []byte{0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, partial, SyncForced)
	wantRecords(t, l2)
	appendAll(t, l2, "fresh")
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = l2.Close()
	l3 := openTestLog(t, partial, SyncForced)
	wantRecords(t, l3, "fresh")
	_ = l3.Close()
}
