// Package types defines the identifiers, actions and coloring model shared
// by the replication engine, the group communication layer and the
// baselines.
//
// The vocabulary follows Amir & Tutu, "From Total Order to Database
// Replication" (CNDS-2001-6): an Action is the unit of replication, an
// ActionID names it globally, and a Color records how much a given server
// knows about the action's position in the global persistent order.
package types

import (
	"fmt"
	"strings"
)

// ServerID uniquely identifies a replication server. Identifiers are
// retained across crashes and recoveries (the paper's recovery model), so
// they are stable strings rather than ephemeral handles.
type ServerID string

// ActionID identifies an action globally: the creating server plus a
// per-server monotonically increasing index. The pair is unique because a
// server never reuses an index, even across crashes (the index is part of
// the state synced to stable storage).
type ActionID struct {
	Server ServerID `json:"server"`
	Index  uint64   `json:"index"`
}

// Zero reports whether the id is the zero value (no action).
func (a ActionID) Zero() bool { return a.Server == "" && a.Index == 0 }

// Less imposes the deterministic canonical order used when reds are
// promoted to green on primary installation: order by (Server, Index).
// Every server applies the same rule to the same set, so the resulting
// green order is identical everywhere (paper CodeSegment A.10).
func (a ActionID) Less(b ActionID) bool {
	if a.Server != b.Server {
		return a.Server < b.Server
	}
	return a.Index < b.Index
}

func (a ActionID) String() string {
	return fmt.Sprintf("%s:%d", a.Server, a.Index)
}

// Color is the knowledge level a server associates with an action
// (paper Figs. 1 and 3).
type Color int

const (
	// Red means the action has been ordered within the local component
	// but its global order is unknown.
	Red Color = iota + 1
	// Yellow means the action was delivered in a transitional
	// configuration of a primary component: its order is known unless the
	// primary installation failed everywhere.
	Yellow
	// Green means the server has determined the action's global order.
	Green
	// White means the server knows all servers marked the action green;
	// it may be discarded.
	White
)

func (c Color) String() string {
	switch c {
	case Red:
		return "red"
	case Yellow:
		return "yellow"
	case Green:
		return "green"
	case White:
		return "white"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// ActionType distinguishes regular client actions from the online
// reconfiguration actions of § 5.1.
type ActionType int

const (
	// ActionUpdate is a regular action carrying a (possibly empty) query
	// part and an update part.
	ActionUpdate ActionType = iota + 1
	// ActionQuery is a query-only action: it reads a consistent state and
	// needs no global ordering beyond the generator's FIFO position.
	ActionQuery
	// ActionJoin is a PERSISTENT_JOIN: when it turns green, every server
	// extends its data structures with the joining server id.
	ActionJoin
	// ActionLeave is a PERSISTENT_LEAVE: when it turns green, every server
	// removes the parting server id.
	ActionLeave
	// ActionActive carries the name of a registered deterministic
	// procedure invoked at ordering time (§ 6 "active transactions").
	ActionActive
)

func (t ActionType) String() string {
	switch t {
	case ActionUpdate:
		return "update"
	case ActionQuery:
		return "query"
	case ActionJoin:
		return "join"
	case ActionLeave:
		return "leave"
	case ActionActive:
		return "active"
	default:
		return fmt.Sprintf("ActionType(%d)", int(t))
	}
}

// Semantics selects the consistency treatment of an action (paper § 6).
type Semantics int

const (
	// SemStrict (the default) applies the action only once its global
	// order is known (green), preserving one-copy serializability.
	SemStrict Semantics = iota
	// SemCommutative applies the action immediately, even in a
	// non-primary component: order is irrelevant as long as every action
	// is eventually applied everywhere (e.g. inventory increments).
	// One-copy serializability is not maintained during partitions;
	// states converge after merge.
	SemCommutative
	// SemTimestamp applies the action immediately; only the highest
	// timestamp per key survives, so replay in any order converges
	// (e.g. location tracking).
	SemTimestamp
)

// Relaxed reports whether the semantics class permits application
// before the global order is known (paper § 6): commutative and
// timestamp actions converge regardless of apply order, which is also
// why the parallel green applier may overlap them freely within their
// class.
func (s Semantics) Relaxed() bool {
	return s == SemCommutative || s == SemTimestamp
}

func (s Semantics) String() string {
	switch s {
	case SemStrict:
		return "strict"
	case SemCommutative:
		return "commutative"
	case SemTimestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// Action is the unit of replication: a deterministic transition from one
// database state to the next (paper § 2.2). Client transactions translate
// into actions.
type Action struct {
	ID   ActionID   `json:"id"`
	Type ActionType `json:"type"`

	// Semantics selects strict or relaxed consistency treatment.
	Semantics Semantics `json:"semantics,omitempty"`

	// GreenLine is the number of actions the creating server had marked
	// green when the action was created. It lets receivers advance their
	// knowledge of the creator's green line without extra messages (used
	// for white-action collection).
	GreenLine uint64 `json:"greenLine"`

	// Client identifies the submitting client. Together with ClientSeq it
	// forms the action's idempotency key: the engine applies at most one
	// green action per (Client, ClientSeq) pair and answers retries with
	// the original reply. Empty means the action carries no key.
	Client string `json:"client,omitempty"`

	// ClientSeq is the client's submission sequence number for this
	// logical operation. Retries of the same operation — including via a
	// different replica after failover — reuse the same value.
	ClientSeq uint64 `json:"clientSeq,omitempty"`

	// Query and Update are the two halves of an action; either may be
	// empty. Their interpretation belongs to the database layer.
	Query  []byte `json:"query,omitempty"`
	Update []byte `json:"update,omitempty"`

	// Target is the server id being joined or removed for
	// ActionJoin/ActionLeave actions.
	Target ServerID `json:"target,omitempty"`

	// Proc names the registered deterministic procedure for ActionActive.
	Proc string `json:"proc,omitempty"`
}

// Clone returns a deep copy so queues can hand actions across goroutine
// boundaries without sharing the byte slices.
func (a Action) Clone() Action {
	c := a
	if a.Query != nil {
		c.Query = append([]byte(nil), a.Query...)
	}
	if a.Update != nil {
		c.Update = append([]byte(nil), a.Update...)
	}
	return c
}

func (a Action) String() string {
	return fmt.Sprintf("action{%s %s}", a.ID, a.Type)
}

// ConfID identifies a group-communication configuration (view). It is
// unique per installation: a counter plus the id of the coordinator that
// proposed the view.
type ConfID struct {
	Counter  uint64   `json:"counter"`
	Proposer ServerID `json:"proposer"`
}

// Zero reports whether the id is the zero value.
func (c ConfID) Zero() bool { return c.Counter == 0 && c.Proposer == "" }

// Less orders configuration ids (by counter, then proposer) so membership
// agreement can pick a maximum.
func (c ConfID) Less(d ConfID) bool {
	if c.Counter != d.Counter {
		return c.Counter < d.Counter
	}
	return c.Proposer < d.Proposer
}

func (c ConfID) String() string {
	return fmt.Sprintf("conf(%d@%s)", c.Counter, c.Proposer)
}

// Configuration is a membership notification delivered by the group
// communication layer: the set of reachable servers (a view).
type Configuration struct {
	ID      ConfID     `json:"id"`
	Members []ServerID `json:"members"`
	// Transitional marks a reduced EVS membership delivered between the
	// old regular configuration and the next regular configuration.
	Transitional bool `json:"transitional"`
}

// Contains reports whether id is a member of the configuration.
func (c Configuration) Contains(id ServerID) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the configuration.
func (c Configuration) Clone() Configuration {
	d := c
	d.Members = append([]ServerID(nil), c.Members...)
	return d
}

func (c Configuration) String() string {
	names := make([]string, len(c.Members))
	for i, m := range c.Members {
		names[i] = string(m)
	}
	kind := "reg"
	if c.Transitional {
		kind = "trans"
	}
	return fmt.Sprintf("%s %s{%s}", c.ID, kind, strings.Join(names, ","))
}

// SortServerIDs sorts ids in place in their canonical order and returns
// the slice for convenience.
func SortServerIDs(ids []ServerID) []ServerID {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// EqualMembers reports whether two member sets contain the same ids,
// regardless of order.
func EqualMembers(a, b []ServerID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[ServerID]bool, len(a))
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if !seen[id] {
			return false
		}
	}
	return true
}
