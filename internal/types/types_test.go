package types

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestActionIDLessIsStrictTotalOrder(t *testing.T) {
	// Antisymmetry and totality over random pairs.
	prop := func(s1, s2 string, i1, i2 uint64) bool {
		a := ActionID{Server: ServerID(s1), Index: i1}
		b := ActionID{Server: ServerID(s2), Index: i2}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionIDLessTransitive(t *testing.T) {
	prop := func(s1, s2, s3 string, i1, i2, i3 uint64) bool {
		a := ActionID{Server: ServerID(s1), Index: i1}
		b := ActionID{Server: ServerID(s2), Index: i2}
		c := ActionID{Server: ServerID(s3), Index: i3}
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionIDZero(t *testing.T) {
	if !(ActionID{}).Zero() {
		t.Fatal("zero value not Zero")
	}
	if (ActionID{Server: "a"}).Zero() {
		t.Fatal("non-zero value reported Zero")
	}
}

func TestConfIDLess(t *testing.T) {
	tests := []struct {
		name string
		a, b ConfID
		want bool
	}{
		{"counter wins", ConfID{1, "z"}, ConfID{2, "a"}, true},
		{"proposer ties", ConfID{1, "a"}, ConfID{1, "b"}, true},
		{"equal", ConfID{1, "a"}, ConfID{1, "a"}, false},
		{"greater", ConfID{3, "a"}, ConfID{2, "z"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Fatalf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestSortServerIDs(t *testing.T) {
	prop := func(raw []string) bool {
		ids := make([]ServerID, len(raw))
		for i, s := range raw {
			ids[i] = ServerID(s)
		}
		SortServerIDs(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i] < ids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualMembers(t *testing.T) {
	a := []ServerID{"x", "y", "z"}
	b := []ServerID{"z", "x", "y"}
	if !EqualMembers(a, b) {
		t.Fatal("permutations should be equal")
	}
	if EqualMembers(a, b[:2]) {
		t.Fatal("different lengths should differ")
	}
	if EqualMembers(a, []ServerID{"x", "y", "w"}) {
		t.Fatal("different members should differ")
	}
	if !EqualMembers(nil, nil) {
		t.Fatal("empty sets should be equal")
	}
}

func TestConfigurationContains(t *testing.T) {
	c := Configuration{Members: []ServerID{"a", "b"}}
	if !c.Contains("a") || c.Contains("c") {
		t.Fatalf("Contains misbehaves: %v", c)
	}
}

func TestConfigurationCloneIsDeep(t *testing.T) {
	c := Configuration{ID: ConfID{1, "a"}, Members: []ServerID{"a", "b"}}
	d := c.Clone()
	d.Members[0] = "zzz"
	if c.Members[0] != "a" {
		t.Fatal("Clone shares the member slice")
	}
}

func TestActionCloneIsDeep(t *testing.T) {
	a := Action{
		ID:     ActionID{Server: "s", Index: 1},
		Update: []byte("update"),
		Query:  []byte("query"),
	}
	b := a.Clone()
	b.Update[0] = 'X'
	b.Query[0] = 'Y'
	if a.Update[0] != 'u' || a.Query[0] != 'q' {
		t.Fatal("Clone shares byte slices")
	}
}

func TestActionJSONRoundTrip(t *testing.T) {
	a := Action{
		ID:        ActionID{Server: "s01", Index: 42},
		Type:      ActionJoin,
		Semantics: SemCommutative,
		GreenLine: 7,
		Client:    "c1",
		Update:    []byte(`{"ops":[]}`),
		Target:    "s99",
	}
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Action
	if err := json.Unmarshal(buf, &b); err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID || b.Type != a.Type || b.Semantics != a.Semantics ||
		b.GreenLine != a.GreenLine || b.Target != a.Target || string(b.Update) != string(a.Update) {
		t.Fatalf("round trip mismatch: %+v vs %+v", a, b)
	}
}

func TestStringers(t *testing.T) {
	// The String methods are used in logs and test failures; keep them
	// total over the enum ranges plus one out-of-range value.
	for c := Color(0); c <= 5; c++ {
		if c.String() == "" {
			t.Fatalf("empty string for color %d", int(c))
		}
	}
	for at := ActionType(0); at <= 6; at++ {
		if at.String() == "" {
			t.Fatalf("empty string for action type %d", int(at))
		}
	}
	for s := Semantics(0); s <= 3; s++ {
		if s.String() == "" {
			t.Fatalf("empty string for semantics %d", int(s))
		}
	}
}
