package sim

import "time"

// Shrink minimizes a failing schedule by delta debugging: it repeatedly
// tries dropping chunks of steps (halving chunk size down to single
// steps) and keeps any removal after which the schedule still fails.
// Because the runner skips inapplicable steps, every subsequence is a
// valid schedule, so no repair pass is needed. The budget bounds the
// number of re-runs (each re-run executes a real cluster); the best
// schedule found so far is returned when it runs out.
func Shrink(sched *Schedule, opts Options, budget int) *Schedule {
	fails := func(s *Schedule) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return Run(s, opts).Failed()
	}
	cur := &Schedule{Seed: sched.Seed, Nodes: sched.Nodes, Steps: append([]Step(nil), sched.Steps...)}
	chunk := len(cur.Steps) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 && budget > 0 {
		shrunk := false
		for start := 0; start < len(cur.Steps) && budget > 0; {
			cand := &Schedule{Seed: cur.Seed, Nodes: cur.Nodes}
			cand.Steps = append(cand.Steps, cur.Steps[:start]...)
			end := start + chunk
			if end > len(cur.Steps) {
				end = len(cur.Steps)
			}
			cand.Steps = append(cand.Steps, cur.Steps[end:]...)
			if len(cand.Steps) < len(cur.Steps) && fails(cand) {
				cur = cand
				shrunk = true
				// Retry the same offset: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if !shrunk {
			chunk /= 2
		}
	}
	return cur
}

// ReplayStable re-runs a schedule n times and reports how many runs
// failed — a quick confidence measure for schedules whose failure depends
// on goroutine interleaving as well as the fault sequence.
func ReplayStable(sched *Schedule, opts Options, n int) (failures int) {
	for i := 0; i < n; i++ {
		if Run(sched, opts).Failed() {
			failures++
		}
		time.Sleep(time.Millisecond)
	}
	return failures
}
