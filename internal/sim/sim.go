package sim

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/obs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

// Options tunes a simulation run.
type Options struct {
	// ConvergeTimeout bounds the final heal-and-converge phase.
	// Zero means 30s.
	ConvergeTimeout time.Duration
	// StepPause is the pacing delay after every step, letting protocol
	// activity interleave with the next fault. Zero means 2ms.
	StepPause time.Duration
	// Logf, when set, receives a narrative of the run (use t.Logf).
	Logf func(format string, args ...any)
}

// Result reports one run.
type Result struct {
	Seed int64
	// Err is the first invariant violation or liveness failure; nil for a
	// clean run. The message always embeds the seed.
	Err error
	// Executed counts schedule steps actually applied (inapplicable
	// steps are skipped, see Step).
	Executed int
	// Report is a post-mortem state dump (per-replica status, green
	// history tails, install histories), filled on failure.
	Report string
}

// Failed reports whether the run violated an invariant.
func (r *Result) Failed() bool { return r.Err != nil }

// submitAttempt is one transmission of a submission: the original or a
// retry, each with its own reply channel and origin node.
type submitAttempt struct {
	origin types.ServerID
	ch     <-chan core.Reply
}

// pendingSubmit tracks one logical client operation across all its
// attempts. Every attempt reuses the same idempotency key (client, seq)
// and the same update — a Set of the payload plus a strict counter
// increment on "ctr:"+key whose final value exposes any double apply.
type pendingSubmit struct {
	key      string
	val      string
	client   string
	seq      uint64
	update   []byte
	attempts []submitAttempt
}

type runner struct {
	sched *Schedule
	opts  Options
	c     *cluster.Cluster
	chk   *checker
	ids   []types.ServerID
	up    map[types.ServerID]bool

	mu    sync.Mutex
	armed map[types.ServerID]string
	fired []types.ServerID

	subs []*pendingSubmit
	nsub int
}

// simClient is the idempotency-key client id used by every scheduled
// submission; sequence numbers distinguish operations.
const simClient = "sim"

// Run executes one schedule and checks every invariant. It is safe to
// run multiple schedules concurrently (each gets its own cluster).
func Run(sched *Schedule, opts Options) *Result {
	// Timing scale: race-instrumented builds run 5-20x slower on the same
	// host, so the native tick rates overdrive the event loops — datagram
	// production outpaces consumption and queueing delay (not the
	// scheduled faults) dominates the run. Stretching all protocol timing
	// by one factor preserves the shape of every schedule while keeping
	// the load inside the host's capacity.
	scale := time.Duration(1)
	if raceEnabled {
		scale = 5
	}
	if opts.ConvergeTimeout == 0 {
		opts.ConvergeTimeout = 30 * time.Second
		if raceEnabled {
			// Proportional liveness budget, so starvation is not reported
			// as a convergence failure.
			opts.ConvergeTimeout = 120 * time.Second
		}
	}
	if opts.StepPause == 0 {
		opts.StepPause = scale * 2 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	r := &runner{
		sched: sched,
		opts:  opts,
		up:    make(map[types.ServerID]bool),
		armed: make(map[types.ServerID]string),
	}
	for i := 0; i < sched.Nodes; i++ {
		id := cluster.ServerID(i)
		r.ids = append(r.ids, id)
		r.up[id] = true
	}
	r.chk = newChecker(r.ids)

	res := &Result{Seed: sched.Seed}
	c, err := cluster.New(sched.Nodes,
		cluster.WithCrashHook(r.hook),
		// Every simulated replica runs the determinism oracle: the
		// parallel green applier is cross-checked against a shadow
		// sequential applier on every batch, and the finale asserts no
		// divergence was ever recorded (CheckOracle per replica).
		cluster.WithApplyOracle(),
		cluster.WithSyncPolicy(storage.SyncForced),
		cluster.WithEVSTick(scale*200*time.Microsecond),
		cluster.WithNetwork(
			memnet.WithLatency(scale*50*time.Microsecond),
			memnet.WithJitter(scale*300*time.Microsecond),
			memnet.WithSeed(sched.Seed),
		),
	)
	if err != nil {
		res.Err = r.seeded(fmt.Errorf("cluster: %w", err))
		return res
	}
	r.c = c
	defer c.Close()

	if err := c.WaitPrimary(opts.ConvergeTimeout, r.ids...); err != nil {
		res.Err = r.seeded(fmt.Errorf("initial primary never formed: %w", err))
		return res
	}

	for i, st := range sched.Steps {
		r.drainFired()
		if r.apply(st) {
			res.Executed++
			r.opts.Logf("sim seed=%d step %d: %s", sched.Seed, i, st)
		}
		if err := r.chk.firstErr(); err != nil {
			res.Err = r.seeded(err)
			res.Report = r.dump()
			return res
		}
		time.Sleep(opts.StepPause)
	}

	if err := r.finale(); err != nil {
		res.Err = r.seeded(err)
		res.Report = r.dump()
	}
	return res
}

// traceTail is how many trailing state-machine events each replica
// contributes to a failure report.
const traceTail = 30

// dump renders a post-mortem of every replica for failure reports. It
// reads only post-mortem-safe state (green/install histories and the
// log), not Status, so it works for crashed replicas too.
func (r *runner) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net: components=%v stats=%+v\n", r.c.Net.Components(), r.c.Net.Stats())
	for _, id := range r.ids {
		rep := r.c.Replica(id)
		if rep == nil {
			fmt.Fprintf(&b, "%s: down\n", id)
			continue
		}
		hist, firstAt := rep.Engine.GreenHistory()
		fmt.Fprintf(&b, "%s: up=%v greens [%d..%d]:", id, r.up[id], firstAt, firstAt+uint64(len(hist))-1)
		lo := 0
		if len(hist) > 12 {
			lo = len(hist) - 12
			fmt.Fprintf(&b, " ...")
		}
		for _, a := range hist[lo:] {
			fmt.Fprintf(&b, " %s", a)
		}
		fmt.Fprintf(&b, "\n%s: installs:", id)
		for _, p := range rep.Engine.InstallHistory() {
			fmt.Fprintf(&b, " %d/%d%v", p.PrimIndex, p.AttemptIndex, p.Servers)
		}
		fmt.Fprintf(&b, "\n%s: status: %s\n", id, probeStatus(rep.Engine))
		fmt.Fprintf(&b, "%s: evs: %s\n", id, rep.GC.Debug())
		// The event trace reads only atomics, so it is safe even when the
		// engine loop itself is wedged — often the only record of how the
		// node got there.
		if evs := rep.Obs.Trace.Events(traceTail); len(evs) > 0 {
			fmt.Fprintf(&b, "%s: last %d events:\n", id, len(evs))
			for _, ev := range evs {
				fmt.Fprintf(&b, "%s:   %s\n", id, ev)
			}
		}
	}
	// A second EVS snapshot a beat later distinguishes a live-but-stuck
	// protocol (tick counter advances) from a wedged node loop (frozen).
	time.Sleep(200 * time.Millisecond)
	for _, id := range r.ids {
		if rep := r.c.Replica(id); rep != nil {
			fmt.Fprintf(&b, "%s: evs+200ms: %s\n", id, rep.GC.Debug())
		}
	}
	return b.String()
}

// probeStatus asks a possibly-wedged engine for its status; a healthy
// (or cleanly closed) engine answers immediately, a wedged engine loop
// never does, so the probe gives up after a short wait instead of
// hanging the post-mortem.
func probeStatus(eng *core.Engine) string {
	ch := make(chan core.Status, 1)
	go func() { ch <- eng.Status() }()
	select {
	case st := <-ch:
		return fmt.Sprintf("state=%s conf=%v prim=%d/%d%v vuln=%v greens=%d reds=%d",
			st.State, st.Conf.Members, st.Prim.PrimIndex, st.Prim.AttemptIndex,
			st.Prim.Servers, st.Vulnerable, st.GreenCount, st.RedCount)
	case <-time.After(2 * time.Second):
		return "WEDGED: engine loop did not answer a status probe within 2s"
	}
}

// seeded wraps a failure so every report carries the replay seed.
func (r *runner) seeded(err error) error {
	flag := ""
	if r.sched.Retry {
		flag = " -retry"
	}
	if r.sched.Batch {
		flag = " -batch"
	}
	return fmt.Errorf("seed %d: %w (replay: go run ./cmd/evssim%s -seed %d)", r.sched.Seed, err, flag, r.sched.Seed)
}

// hook runs on an engine goroutine at each sync barrier: an armed,
// rule-allowed crash fires here, exactly at the barrier. The whole
// decision happens under r.mu: if any part of arm-check/crash-rule/fired
// were outside it, a concurrent disarm (StepRecover, finale) could slip
// between check and commit — the engine would die but the runner would
// never learn, and the finale would wait on a dead replica forever.
func (r *runner) hook(id types.ServerID, point string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	want, ok := r.armed[id]
	if !ok || (want != "*" && want != point) {
		return false
	}
	delete(r.armed, id)
	if !r.chk.allowCrash(r.c, id) {
		return false
	}
	r.fired = append(r.fired, id)
	r.opts.Logf("sim seed=%d: %s crashed at barrier %q", r.sched.Seed, id, point)
	return true
}

// drainFired finishes the teardown of hook-crashed replicas: the engine
// already halted and the endpoint dropped at the barrier; here the GC
// stack closes and the unsynced log tail is discarded.
func (r *runner) drainFired() {
	r.mu.Lock()
	fired := r.fired
	r.fired = nil
	r.mu.Unlock()
	for _, id := range fired {
		r.c.Crash(id)
		r.up[id] = false
	}
}

// apply executes one step; false means it was inapplicable and skipped.
func (r *runner) apply(st Step) bool {
	switch st.Kind {
	case StepSubmit:
		return r.submitOne(st.Node)
	case StepSubmitBurst:
		// Back-to-back submissions with no pacing: they race into the
		// engine's batch collection window and travel as bundles.
		ok := false
		for i := 0; i < max(st.Count, 1); i++ {
			if r.submitOne(st.Node) {
				ok = true
			}
		}
		return ok
	case StepRetry:
		if len(r.subs) == 0 {
			return false
		}
		sub := r.subs[st.Sub%len(r.subs)]
		id := r.pickAlive(st.Node)
		if id == "" {
			return false
		}
		rep := r.c.Replica(id)
		if rep == nil {
			return false
		}
		ch, err := rep.Engine.SubmitKeyedAsync(sub.client, sub.seq, sub.update, nil, types.SemStrict)
		if err != nil {
			return false
		}
		sub.attempts = append(sub.attempts, submitAttempt{origin: id, ch: ch})
		return true
	case StepPartition:
		groups := make([][]types.ServerID, 0, len(st.Groups))
		for _, grp := range st.Groups {
			ids := make([]types.ServerID, 0, len(grp))
			for _, n := range grp {
				if n >= 0 && n < len(r.ids) {
					ids = append(ids, r.ids[n])
				}
			}
			if len(ids) > 0 {
				groups = append(groups, ids)
			}
		}
		if len(groups) == 0 {
			return false
		}
		r.c.Partition(groups...)
		return true
	case StepHeal:
		r.c.Heal()
		return true
	case StepCrash:
		if st.Node < 0 || st.Node >= len(r.ids) {
			return false
		}
		id := r.ids[st.Node]
		if !r.up[id] {
			return false
		}
		if !r.chk.allowCrash(r.c, id) {
			r.opts.Logf("sim seed=%d: crash of %s refused (would erase green knowledge)", r.sched.Seed, id)
			return false
		}
		r.c.Crash(id)
		r.up[id] = false
		return true
	case StepCrashAt:
		if st.Node < 0 || st.Node >= len(r.ids) {
			return false
		}
		id := r.ids[st.Node]
		if !r.up[id] {
			return false
		}
		r.mu.Lock()
		r.armed[id] = st.Point
		r.mu.Unlock()
		return true
	case StepRecover:
		if st.Node < 0 || st.Node >= len(r.ids) {
			return false
		}
		id := r.ids[st.Node]
		r.mu.Lock()
		_, wasArmed := r.armed[id]
		delete(r.armed, id) // an armed-but-unfired crash is cancelled
		r.mu.Unlock()
		if r.up[id] {
			return wasArmed
		}
		if _, err := r.c.Recover(id); err != nil {
			r.opts.Logf("sim seed=%d: recover %s failed: %v", r.sched.Seed, id, err)
			return false
		}
		r.up[id] = true
		return true
	case StepSettle:
		time.Sleep(time.Duration(st.Ms) * time.Millisecond)
		return true
	}
	return false
}

// submitOne fires one uniquely keyed strict submission through the
// preferred node (shared by StepSubmit and StepSubmitBurst).
func (r *runner) submitOne(node int) bool {
	id := r.pickAlive(node)
	if id == "" {
		return false
	}
	rep := r.c.Replica(id)
	if rep == nil {
		return false
	}
	r.nsub++
	key := fmt.Sprintf("k%04d", r.nsub)
	val := fmt.Sprintf("v%d-%d", r.sched.Seed, r.nsub)
	sub := &pendingSubmit{
		key: key, val: val,
		client: simClient, seq: uint64(r.nsub),
		update: db.EncodeUpdate(db.Set(key, val), db.Add("ctr:"+key, 1)),
	}
	ch, err := rep.Engine.SubmitKeyedAsync(sub.client, sub.seq, sub.update, nil, types.SemStrict)
	if err != nil {
		return false
	}
	sub.attempts = append(sub.attempts, submitAttempt{origin: id, ch: ch})
	r.subs = append(r.subs, sub)
	return true
}

// pickAlive returns the preferred node if alive, else the first alive
// node (deterministic), else "".
func (r *runner) pickAlive(n int) types.ServerID {
	if n >= 0 && n < len(r.ids) && r.up[r.ids[n]] {
		return r.ids[n]
	}
	for _, id := range r.ids {
		if r.up[id] {
			return id
		}
	}
	return ""
}

// finale heals everything, recovers every crashed node, waits for the
// cluster to converge, and runs the full invariant battery.
func (r *runner) finale() error {
	// Disarm leftover barrier crashes, then flush any that fired.
	r.mu.Lock()
	r.armed = make(map[types.ServerID]string)
	r.mu.Unlock()
	r.drainFired()

	r.c.Heal()
	for _, id := range r.ids {
		if !r.up[id] {
			if _, err := r.c.Recover(id); err != nil {
				return fmt.Errorf("final recover %s: %w", id, err)
			}
			r.up[id] = true
		}
	}
	deadline := time.Now().Add(r.opts.ConvergeTimeout)
	if err := r.c.WaitPrimary(time.Until(deadline), r.ids...); err != nil {
		return fmt.Errorf("no convergence to a primary component: %w", err)
	}
	if err := r.waitQuiesced(deadline); err != nil {
		return err
	}

	// Collect replies: every attempt of a submission whose origin never
	// crashed must be answered (liveness says the reply comes; channels
	// whose origin crashed may never be). A submission counts as
	// acknowledged when any attempt green-replied to the client — the
	// crash rule guarantees that knowledge was never erased, so the
	// durability check below is exact, not best-effort.
	var expect []*pendingSubmit
	for _, s := range r.subs {
		acked := false
		for _, at := range s.attempts {
			var rep core.Reply
			var got bool
			if r.chk.everCrashed(at.origin) {
				select {
				case rep = <-at.ch:
					got = true
				default:
				}
			} else {
				select {
				case rep = <-at.ch:
					got = true
				case <-time.After(time.Until(deadline)):
					return fmt.Errorf("submission %s at %s never answered after convergence", s.key, at.origin)
				}
			}
			if got && rep.Err == "" && rep.GreenSeq > 0 {
				acked = true
			}
		}
		if acked {
			expect = append(expect, s)
		}
	}

	if err := r.chk.observe(r.c); err != nil {
		return err
	}
	if err := r.c.CheckTotalOrder(r.ids...); err != nil {
		return err
	}
	if err := r.c.CheckColoring(r.ids...); err != nil {
		return err
	}
	if err := r.checkStateEquality(); err != nil {
		return err
	}
	// Determinism oracle: every replica's parallel applier must have
	// stayed byte-identical to its shadow sequential applier across the
	// whole schedule, including crashes and recoveries.
	for _, id := range r.ids {
		if rep := r.c.Replica(id); rep != nil {
			if err := rep.DB.CheckOracle(); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	}
	rep := r.c.Replica(r.ids[0])
	for _, s := range expect {
		res, err := rep.DB.QueryGreen(db.Get(s.key))
		if err != nil {
			return fmt.Errorf("durability query %s: %w", s.key, err)
		}
		if res.Value != s.val {
			return fmt.Errorf("durability violated: green-replied %s=%s reads %q after convergence",
				s.key, s.val, res.Value)
		}
	}
	// Exactly-once: each submission bumps a per-key counter, and every
	// attempt reuses the idempotency key, so after convergence the counter
	// reads at most 1 no matter how many retries raced the original —
	// and exactly 1 for any submission a client saw acknowledged.
	for _, s := range r.subs {
		res, err := rep.DB.QueryGreen(db.Get("ctr:" + s.key))
		if err != nil {
			return fmt.Errorf("dedup counter query %s: %w", s.key, err)
		}
		switch {
		case res.Value == "" || res.Value == "1":
			// applied at most once (or never reached the green zone)
		default:
			return fmt.Errorf("exactly-once violated: key %s (%d attempts) applied %s times",
				s.key, len(s.attempts), res.Value)
		}
		if res.Value == "" {
			for _, e := range expect {
				if e == s {
					return fmt.Errorf("exactly-once violated: key %s acknowledged green but counter never applied", s.key)
				}
			}
		}
	}
	// Every run doubles as a metrics conformance check: render each
	// replica's registry and reject any output the in-repo exposition
	// parser would not accept (grammar, bucket monotonicity, sum/count).
	for _, id := range r.ids {
		var text strings.Builder
		if err := r.c.Replica(id).Obs.Reg.WriteText(&text); err != nil {
			return fmt.Errorf("metrics render %s: %w", id, err)
		}
		if _, err := obs.ParseExposition(text.String()); err != nil {
			return fmt.Errorf("metrics exposition %s invalid: %w", id, err)
		}
	}
	r.opts.Logf("sim seed=%d: converged, %d submissions (%d green-verified), ledger %d greens, %d installs",
		r.sched.Seed, r.nsub, len(expect), len(r.chk.ledger), len(r.chk.installs))
	return nil
}

// waitQuiesced waits until green counts are equal everywhere, red zones
// are empty, and nothing changes across two consecutive polls.
func (r *runner) waitQuiesced(deadline time.Time) error {
	var last []uint64
	stable := 0
	for time.Now().Before(deadline) {
		counts := make([]uint64, 0, len(r.ids))
		equal, redFree := true, true
		for _, id := range r.ids {
			rep := r.c.Replica(id)
			if rep == nil {
				equal = false
				break
			}
			st := rep.Engine.Status()
			if st.State != core.RegPrim {
				equal = false
				break
			}
			if st.RedCount != 0 {
				redFree = false
			}
			counts = append(counts, st.GreenCount)
			if counts[0] != st.GreenCount {
				equal = false
			}
		}
		if equal && redFree && len(counts) == len(r.ids) {
			same := last != nil && len(last) == len(counts)
			if same {
				for i := range counts {
					if counts[i] != last[i] {
						same = false
						break
					}
				}
			}
			if same {
				stable++
				if stable >= 2 {
					return nil
				}
			} else {
				stable = 0
			}
			last = counts
		} else {
			stable = 0
			last = nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("cluster never quiesced (equal green counts, empty red zones)")
}

// checkStateEquality asserts byte-identical database snapshots and equal
// green counts across all replicas after convergence.
func (r *runner) checkStateEquality() error {
	var refID types.ServerID
	var refSnap []byte
	var refGreen uint64
	for _, id := range r.ids {
		rep := r.c.Replica(id)
		if rep == nil {
			return fmt.Errorf("replica %s missing after convergence", id)
		}
		st := rep.Engine.Status()
		snap := rep.DB.Snapshot()
		if refID == "" {
			refID, refSnap, refGreen = id, snap, st.GreenCount
			continue
		}
		if st.GreenCount != refGreen {
			return fmt.Errorf("green counts diverge after convergence: %s=%d, %s=%d",
				refID, refGreen, id, st.GreenCount)
		}
		if !bytes.Equal(snap, refSnap) {
			return fmt.Errorf("database snapshots diverge after convergence: %s vs %s", refID, id)
		}
	}
	return nil
}
