//go:build race

package sim

// raceEnabled is true when the race detector is compiled in. Instrumented
// runs are 5-20x slower, so liveness deadlines are scaled up to keep the
// checker from reporting starvation as a convergence failure.
const raceEnabled = true
