package sim

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

var (
	simSeed   = flag.Int64("sim.seed", 0, "run only this schedule seed (plus sim.runs repeats)")
	simRuns   = flag.Int("sim.runs", 48, "number of random schedules to run in long mode")
	simShrink = flag.Bool("sim.shrink", false, "shrink failing schedules before reporting")
)

// regressionCorpus is the fixed set of seeds run on every test invocation,
// including -short. Seeds 1..60 were vetted as part of a clean 240-seed
// sweep; across the corpus roughly 40% of schedules crash nodes outright,
// almost half crash them surgically at sync barriers, and nearly all
// partition and re-partition the network. Failures print the seed and a
// replay command, so a regression here is reproducible offline with
// cmd/evssim.
var regressionCorpus = func() []int64 {
	seeds := make([]int64, 0, 60)
	for s := int64(1); s <= 60; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}()

func runSeed(t *testing.T, seed int64) {
	t.Helper()
	res := Run(Generate(seed), Options{})
	if !res.Failed() {
		return
	}
	if *simShrink {
		min := Shrink(Generate(seed), Options{}, 60)
		t.Errorf("%v\nshrunk to %d steps:\n%s\npost-mortem:\n%s",
			res.Err, len(min.Steps), min, res.Report)
		return
	}
	t.Errorf("%v\npost-mortem:\n%s", res.Err, res.Report)
}

// TestSimCorpus drives the fixed regression corpus of seeded fault
// schedules; it runs in short mode too.
func TestSimCorpus(t *testing.T) {
	if *simSeed != 0 {
		t.Skip("-sim.seed set; see TestSimSeed")
	}
	for _, seed := range regressionCorpus {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runSeed(t, seed)
		})
	}
}

// retryCorpus is the fixed seed set for the retry-heavy generator:
// idempotent re-submissions of earlier keys race partitions, barrier
// crashes and view changes, and the finale asserts the exactly-once
// dedup invariant (per-key apply counter never exceeds 1; an
// acknowledged submission always applied). Runs in short mode too.
var retryCorpus = func() []int64 {
	seeds := make([]int64, 0, 40)
	for s := int64(1); s <= 40; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}()

// TestSimRetryCorpus drives the fixed retry-under-faults corpus.
func TestSimRetryCorpus(t *testing.T) {
	if *simSeed != 0 {
		t.Skip("-sim.seed set; see TestSimSeed")
	}
	for _, seed := range retryCorpus {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := Run(GenerateRetry(seed), Options{})
			if res.Failed() {
				t.Errorf("%v\npost-mortem:\n%s", res.Err, res.Report)
			}
		})
	}
}

// batchCorpus is the fixed seed set for the burst-heavy generator:
// storms of back-to-back submissions travel as multi-action bundles
// (the cluster runs the engine's default MaxBatchActions > 1) while
// partitions, barrier crashes and recoveries churn underneath. The
// invariant battery is unchanged — a bundle must expand into the same
// global order everywhere, with exactly-once semantics per key.
var batchCorpus = func() []int64 {
	seeds := make([]int64, 0, 40)
	for s := int64(1); s <= 40; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}()

// TestSimBatchCorpus drives the fixed batching-under-faults corpus.
func TestSimBatchCorpus(t *testing.T) {
	if *simSeed != 0 {
		t.Skip("-sim.seed set; see TestSimSeed")
	}
	for _, seed := range batchCorpus {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := Run(GenerateBatch(seed), Options{})
			if res.Failed() {
				t.Errorf("%v\npost-mortem:\n%s", res.Err, res.Report)
			}
		})
	}
}

// TestSimFlakeSeed replays a schedule that has wedged a replica in
// Construct during random exploration (the failure reproduces only under
// interleaving pressure, so it is skipped by default). Run it with
// SIM_FLAKE=1, ideally alongside a parallel load, to chase the bug; the
// failure report now carries each node's event trace, which is the
// evidence the wedge diagnosis needs.
func TestSimFlakeSeed(t *testing.T) {
	if os.Getenv("SIM_FLAKE") == "" {
		t.Skip("known interleaving-dependent flake; set SIM_FLAKE=1 to chase it")
	}
	runSeed(t, 1786030011310274417)
}

// TestSimRandom explores fresh random seeds (long mode only). The base
// seed is logged so a failing batch is re-runnable with -sim.seed.
func TestSimRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("random exploration skipped in short mode")
	}
	if *simSeed != 0 {
		t.Skip("-sim.seed set; see TestSimSeed")
	}
	base := time.Now().UnixNano()
	t.Logf("random base seed: %d (replay any failure via -sim.seed)", base)
	for i := 0; i < *simRuns; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runSeed(t, seed)
		})
	}
}

// TestSimSeed replays a single seed given via -sim.seed, repeating it
// -sim.runs times to gauge interleaving-dependent flakiness.
func TestSimSeed(t *testing.T) {
	if *simSeed == 0 {
		t.Skip("pass -sim.seed to replay a specific schedule")
	}
	sched := Generate(*simSeed)
	t.Logf("schedule:\n%s", sched)
	fails := 0
	var last *Result
	for i := 0; i < *simRuns; i++ {
		res := Run(sched, Options{})
		if res.Failed() {
			fails++
			last = res
		}
	}
	if fails == 0 {
		return
	}
	if *simShrink {
		min := Shrink(sched, Options{}, 120)
		t.Errorf("%d/%d runs failed; last: %v\nshrunk to %d steps:\n%s\npost-mortem:\n%s",
			fails, *simRuns, last.Err, len(min.Steps), min, last.Report)
		return
	}
	t.Errorf("%d/%d runs failed; last: %v\npost-mortem:\n%s", fails, *simRuns, last.Err, last.Report)
}

// TestShrinkProducesValidSchedule checks the shrinker's contract on a
// passing schedule: with no failure to preserve it must return the
// schedule unchanged, and every subsequence it would try is runnable.
func TestShrinkProducesValidSchedule(t *testing.T) {
	sched := Generate(7)
	min := Shrink(sched, Options{}, 4)
	if len(min.Steps) != len(sched.Steps) {
		t.Fatalf("shrink of a passing schedule dropped steps: %d -> %d", len(sched.Steps), len(min.Steps))
	}
	// An arbitrary subsequence must still run to completion.
	sub := &Schedule{Seed: sched.Seed, Nodes: sched.Nodes, Steps: sched.Steps[:len(sched.Steps)/2]}
	if res := Run(sub, Options{}); res.Failed() {
		t.Fatalf("subsequence of a passing schedule failed: %v", res.Err)
	}
}

// TestScheduleDeterminism checks the reproducibility contract: the same
// seed always derives the identical schedule.
func TestScheduleDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 1 << 40} {
		a, b := Generate(seed), Generate(seed)
		if a.String() != b.String() || a.Nodes != b.Nodes {
			t.Fatalf("seed %d produced two different schedules:\n%s\nvs\n%s", seed, a, b)
		}
	}
}
