package sim

import (
	"fmt"
	"sync"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/types"
)

// checker accumulates cross-time observations of the cluster and asserts
// the paper's safety properties against them:
//
//   - Unique primary: for every primary-component index, every server
//     that installed it installed the same component (dynamic linear
//     voting admits at most one primary per epoch, § 3.1).
//   - Global persistent order: the ledger maps each global green sequence
//     number to the action every server ever placed there; two servers
//     disagreeing on a position — even servers that were never up at the
//     same time — violates Theorem 1.
//
// It also owns the knowledge-preservation rule that makes those checks
// sound under fault injection: a crash is only allowed when, afterwards,
// every possible future primary component still contains at least one
// member that held the green knowledge in memory. Without the rule a
// schedule could legitimately erase green actions (crash every holder
// before its next barrier) and the durability check would be vacuous.
type checker struct {
	mu sync.Mutex
	// ledger is the global persistent order across the whole run: green
	// seq -> action id, union of every server's observed history.
	ledger map[uint64]types.ActionID
	// ledgerBy remembers which server first established an entry (for
	// error messages).
	ledgerBy map[uint64]types.ServerID
	// installs is every primary component ever observed, by PrimIndex.
	installs map[uint64]core.PrimComponent
	// latest is the highest-indexed observed install (zero value until
	// the first: treated as "all nodes" by majority math).
	latest core.PrimComponent
	// crashRec[s] is the latest observed PrimIndex when s last crashed.
	crashRec map[types.ServerID]uint64
	crashed  map[types.ServerID]bool // crashed at least once, ever
	nodes    []types.ServerID
	err      error // first violation (sticky)
}

func newChecker(nodes []types.ServerID) *checker {
	return &checker{
		ledger:   make(map[uint64]types.ActionID),
		ledgerBy: make(map[uint64]types.ServerID),
		installs: make(map[uint64]core.PrimComponent),
		crashRec: make(map[types.ServerID]uint64),
		crashed:  make(map[types.ServerID]bool),
		nodes:    nodes,
	}
}

// observe folds the current observable state of every live replica into
// the checker, reporting the first violation found. It reads only the
// engines' lock-protected observability state (never Status, which does
// a round-trip with the engine loop) so it is safe to call from the crash
// hook, which runs on an engine goroutine.
func (k *checker) observe(c *cluster.Cluster) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.observeLocked(c)
}

func (k *checker) observeLocked(c *cluster.Cluster) error {
	for _, id := range k.nodes {
		r := c.Replica(id)
		if r == nil {
			continue
		}
		for _, p := range r.Engine.InstallHistory() {
			if seen, ok := k.installs[p.PrimIndex]; ok {
				if !seen.Equal(p) {
					k.fail(fmt.Errorf("two primary components share index %d: %v (at %s) vs %v",
						p.PrimIndex, seen, id, p))
				}
			} else {
				k.installs[p.PrimIndex] = p
			}
			if p.PrimIndex > k.latest.PrimIndex {
				k.latest = p
			}
		}
		hist, firstAt := r.Engine.GreenHistory()
		for i, aid := range hist {
			seq := firstAt + uint64(i)
			if prev, ok := k.ledger[seq]; ok {
				if prev != aid {
					k.fail(fmt.Errorf("global order violated at green seq %d: %s placed %v, %s placed %v",
						seq, k.ledgerBy[seq], prev, id, aid))
				}
			} else {
				k.ledger[seq] = aid
				k.ledgerBy[seq] = id
			}
		}
	}
	return k.err
}

func (k *checker) fail(err error) {
	if k.err == nil {
		k.err = err
	}
}

// firstErr returns the sticky first violation.
func (k *checker) firstErr() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err
}

// allowCrash decides — against fresh observations — whether killing id
// now provably preserves green knowledge, and records the crash if so.
// Let P be the latest installed primary component. Members of P that
// crashed since (about) P's installation may have lost unsynced greens;
// everyone else's green knowledge is a prefix of what P's surviving
// members hold. Dynamic linear voting requires a strict majority of P to
// form any future primary, so knowledge survives into every future
// primary iff the crashed-since-install members of P stay a minority.
// The "about" is a one-index slack: an install can complete on another
// node in the window between observing and killing, so a crash recorded
// against index i is still counted against a primary of index i+1.
func (k *checker) allowCrash(c *cluster.Cluster, id types.ServerID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.observeLocked(c)
	p := k.latest
	members := p.Servers
	if len(members) == 0 {
		members = k.nodes // no install yet: bootstrap majority over everyone
	}
	inP := false
	count := 0
	for _, m := range members {
		if m == id {
			inP = true
			continue
		}
		if rec, ok := k.crashRec[m]; ok && rec+1 >= p.PrimIndex {
			count++
		}
	}
	if inP {
		count++
	}
	if count >= len(members)/2+1 {
		return false
	}
	k.crashRec[id] = k.latest.PrimIndex
	k.crashed[id] = true
	return true
}

// everCrashed reports whether id crashed at any point in the run.
func (k *checker) everCrashed(id types.ServerID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.crashed[id]
}
