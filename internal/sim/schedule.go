package sim

import (
	"fmt"
	"math/rand"
	"strings"
)

// StepKind enumerates fault-schedule operations.
type StepKind int

const (
	// StepSubmit submits one uniquely keyed strict update via a node.
	StepSubmit StepKind = iota + 1
	// StepPartition splits the network into the given components.
	StepPartition
	// StepHeal reconnects every component.
	StepHeal
	// StepCrash power-fails a node immediately: its unsynced log tail is
	// lost (the interesting case: green records applied since the last
	// "** sync to disk" barrier vanish, forcing a § 5.2 catch-up later).
	StepCrash
	// StepCrashAt arms a crash that fires exactly at the node's next
	// matching sync barrier — including while vulnerable, the window the
	// paper's recovery machinery exists for.
	StepCrashAt
	// StepRecover restarts a crashed node from its surviving log.
	StepRecover
	// StepSettle lets the cluster run undisturbed for Ms milliseconds.
	StepSettle
	// StepRetry re-submits an earlier submission's idempotency key —
	// possibly through a different node — racing the original through
	// partitions, crashes and view changes. The dedup invariant says the
	// key still applies at most once and every reply agrees.
	StepRetry
	// StepSubmitBurst fires Count uniquely keyed submissions back-to-back
	// through one node with no pacing between them, so they race into the
	// engine's batch collection window and travel as multi-action bundles
	// (core.Config.MaxBatchActions > 1). The invariants don't change: the
	// burst must expand into the same global order everywhere.
	StepSubmitBurst
)

// Step is one schedule entry. Nodes are ordinals into the cluster's
// server list; the runner skips steps that are inapplicable when they
// come up (crashing a dead node, recovering a live one), which keeps
// shrinking simple: any subsequence of a schedule is a valid schedule.
type Step struct {
	Kind   StepKind
	Node   int
	Groups [][]int // StepPartition: ordinals per component
	Point  string  // StepCrashAt: barrier name, "*" = any barrier
	Ms     int     // StepSettle: duration in milliseconds
	Sub    int     // StepRetry: ordinal of the submission to re-send
	Count  int     // StepSubmitBurst: submissions in the burst
}

// Schedule is a reproducible fault-injection scenario: everything about
// it derives from Seed, so a failure report needs only the seed (plus the
// step list, if it was shrunk).
type Schedule struct {
	Seed  int64
	Nodes int
	Steps []Step
	// Retry marks schedules produced by GenerateRetry, so failure reports
	// print the right replay command.
	Retry bool
	// Batch marks schedules produced by GenerateBatch (same purpose).
	Batch bool
}

// crashPoints are the barrier names StepCrashAt can target (see the
// syncLog call sites in internal/core).
var crashPoints = []string{"*", "*", "install", "exchange-states", "construct", "nonprim"}

// Generate derives a random schedule from a seed. The mix leans on
// submissions (the invariants are only interesting when actions flow)
// interleaved with partitions, merges, crashes at and between barriers,
// and recoveries.
func Generate(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Nodes: 3 + rng.Intn(3)}
	steps := 12 + rng.Intn(16)
	up := make([]bool, s.Nodes)
	for i := range up {
		up[i] = true
	}
	downCount := 0
	for len(s.Steps) < steps {
		switch w := rng.Intn(100); {
		case w < 40:
			s.Steps = append(s.Steps, Step{Kind: StepSubmit, Node: rng.Intn(s.Nodes)})
		case w < 55:
			s.Steps = append(s.Steps, Step{Kind: StepPartition, Groups: randGroups(rng, s.Nodes)})
		case w < 65:
			s.Steps = append(s.Steps, Step{Kind: StepHeal})
		case w < 73:
			// Keep a majority of nodes alive in the schedule itself; the
			// runner additionally enforces the knowledge-preservation rule
			// at execution time.
			if n := rng.Intn(s.Nodes); up[n] && downCount+1 < (s.Nodes+2)/2 {
				kind := StepCrash
				point := ""
				if rng.Intn(2) == 0 {
					kind = StepCrashAt
					point = crashPoints[rng.Intn(len(crashPoints))]
				}
				s.Steps = append(s.Steps, Step{Kind: kind, Node: n, Point: point})
				up[n] = false
				downCount++
			}
		case w < 85:
			if n := rng.Intn(s.Nodes); !up[n] {
				s.Steps = append(s.Steps, Step{Kind: StepRecover, Node: n})
				up[n] = true
				downCount--
			}
		default:
			s.Steps = append(s.Steps, Step{Kind: StepSettle, Ms: 5 + rng.Intn(25)})
		}
	}
	return s
}

// GenerateRetry derives a random schedule biased toward client retries
// racing faults: every few submissions, an earlier idempotency key is
// re-sent through a (usually different) node while partitions, barrier
// crashes and recoveries churn underneath. Generate's rng consumption is
// left untouched so the vetted regression corpus keeps its meaning; this
// generator owns its own seed space.
func GenerateRetry(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Nodes: 3 + rng.Intn(3), Retry: true}
	steps := 14 + rng.Intn(16)
	up := make([]bool, s.Nodes)
	for i := range up {
		up[i] = true
	}
	downCount, nsub := 0, 0
	for len(s.Steps) < steps {
		switch w := rng.Intn(100); {
		case w < 30:
			s.Steps = append(s.Steps, Step{Kind: StepSubmit, Node: rng.Intn(s.Nodes)})
			nsub++
		case w < 50:
			if nsub == 0 {
				continue
			}
			s.Steps = append(s.Steps, Step{
				Kind: StepRetry,
				Node: rng.Intn(s.Nodes),
				Sub:  rng.Intn(nsub),
			})
		case w < 62:
			s.Steps = append(s.Steps, Step{Kind: StepPartition, Groups: randGroups(rng, s.Nodes)})
		case w < 70:
			s.Steps = append(s.Steps, Step{Kind: StepHeal})
		case w < 78:
			if n := rng.Intn(s.Nodes); up[n] && downCount+1 < (s.Nodes+2)/2 {
				kind := StepCrash
				point := ""
				if rng.Intn(2) == 0 {
					kind = StepCrashAt
					point = crashPoints[rng.Intn(len(crashPoints))]
				}
				s.Steps = append(s.Steps, Step{Kind: kind, Node: n, Point: point})
				up[n] = false
				downCount++
			}
		case w < 90:
			if n := rng.Intn(s.Nodes); !up[n] {
				s.Steps = append(s.Steps, Step{Kind: StepRecover, Node: n})
				up[n] = true
				downCount--
			}
		default:
			s.Steps = append(s.Steps, Step{Kind: StepSettle, Ms: 5 + rng.Intn(25)})
		}
	}
	return s
}

// GenerateBatch derives a random schedule biased toward submit storms:
// bursts of 8–32 back-to-back submissions race partitions, barrier
// crashes and recoveries, so multi-action bundles are in flight while
// the membership churns — batches split across transitional
// configurations, bundles retransmitted through exchanges, bursts
// buffered during state exchange. Retries of burst keys ride along to
// stress the in-batch dedup path. Own seed space (Generate and
// GenerateRetry keep their vetted corpora).
func GenerateBatch(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Nodes: 3 + rng.Intn(3), Batch: true}
	steps := 10 + rng.Intn(12)
	up := make([]bool, s.Nodes)
	for i := range up {
		up[i] = true
	}
	downCount, nsub := 0, 0
	for len(s.Steps) < steps {
		switch w := rng.Intn(100); {
		case w < 35:
			n := 8 + rng.Intn(25)
			s.Steps = append(s.Steps, Step{Kind: StepSubmitBurst, Node: rng.Intn(s.Nodes), Count: n})
			nsub += n
		case w < 45:
			if nsub == 0 {
				continue
			}
			s.Steps = append(s.Steps, Step{Kind: StepRetry, Node: rng.Intn(s.Nodes), Sub: rng.Intn(nsub)})
		case w < 60:
			s.Steps = append(s.Steps, Step{Kind: StepPartition, Groups: randGroups(rng, s.Nodes)})
		case w < 68:
			s.Steps = append(s.Steps, Step{Kind: StepHeal})
		case w < 78:
			if n := rng.Intn(s.Nodes); up[n] && downCount+1 < (s.Nodes+2)/2 {
				kind := StepCrash
				point := ""
				if rng.Intn(2) == 0 {
					kind = StepCrashAt
					point = crashPoints[rng.Intn(len(crashPoints))]
				}
				s.Steps = append(s.Steps, Step{Kind: kind, Node: n, Point: point})
				up[n] = false
				downCount++
			}
		case w < 90:
			if n := rng.Intn(s.Nodes); !up[n] {
				s.Steps = append(s.Steps, Step{Kind: StepRecover, Node: n})
				up[n] = true
				downCount--
			}
		default:
			s.Steps = append(s.Steps, Step{Kind: StepSettle, Ms: 5 + rng.Intn(25)})
		}
	}
	return s
}

// randGroups partitions ordinals 0..n-1 into 1–3 shuffled components.
func randGroups(rng *rand.Rand, n int) [][]int {
	order := rng.Perm(n)
	g := 1 + rng.Intn(3)
	if g > n {
		g = n
	}
	groups := make([][]int, g)
	for i, node := range order {
		groups[i%g] = append(groups[i%g], node)
	}
	return groups
}

func (st Step) String() string {
	switch st.Kind {
	case StepSubmit:
		return fmt.Sprintf("submit@%d", st.Node)
	case StepPartition:
		parts := make([]string, len(st.Groups))
		for i, grp := range st.Groups {
			nums := make([]string, len(grp))
			for j, n := range grp {
				nums[j] = fmt.Sprint(n)
			}
			parts[i] = "{" + strings.Join(nums, ",") + "}"
		}
		return "partition" + strings.Join(parts, "")
	case StepHeal:
		return "heal"
	case StepCrash:
		return fmt.Sprintf("crash@%d", st.Node)
	case StepCrashAt:
		return fmt.Sprintf("crash@%d:%s", st.Node, st.Point)
	case StepRecover:
		return fmt.Sprintf("recover@%d", st.Node)
	case StepSettle:
		return fmt.Sprintf("settle:%dms", st.Ms)
	case StepRetry:
		return fmt.Sprintf("retry#%d@%d", st.Sub, st.Node)
	case StepSubmitBurst:
		return fmt.Sprintf("burst:%d@%d", st.Count, st.Node)
	default:
		return fmt.Sprintf("step(%d)", int(st.Kind))
	}
}

func (s *Schedule) String() string {
	steps := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		steps[i] = st.String()
	}
	return fmt.Sprintf("seed=%d nodes=%d [%s]", s.Seed, s.Nodes, strings.Join(steps, " "))
}
