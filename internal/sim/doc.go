// Package sim is a seeded fault-injection harness for the replication
// engine: it drives a full cluster (memnet transport, EVS nodes, engines,
// in-memory stable storage) through a schedule of partitions, merges,
// message-delay jitter, crashes — both power failures between barriers
// and surgical crashes exactly at the engine's "** sync to disk" points —
// and recoveries, then checks the paper's safety properties.
//
// Reproducibility model: the schedule (node count, step sequence, fault
// targets, network jitter) is fully determined by one int64 seed, so a
// failing run is re-created from the seed alone. Goroutine interleaving
// is not controlled; the checked properties are safety invariants that
// must hold under every interleaving, so a seed that fails only
// sometimes is still a real bug — the schedule is the repro, the
// interleaving merely the trigger. Schedules shrink well because any
// subsequence of a schedule is itself a valid schedule (see Shrink).
//
// Invariants checked (during the run and after a final heal-and-recover
// convergence phase):
//
//   - Unique primary component per epoch (dynamic linear voting, § 3.1).
//   - Global persistent order: all green histories, across servers and
//     across time, agree position-by-position (Theorem 1).
//   - Durability: no action green-replied to a client is ever lost. The
//     harness refuses crashes that would legitimately erase knowledge
//     (crashing every in-memory holder before its next barrier), making
//     this check non-vacuous; see checker.allowCrash.
//   - Convergence: once healed and recovered, every replica reaches
//     RegPrim with identical green counts, empty red zones, and
//     byte-identical database snapshots, and the coloring invariant
//     (white base bounded by every green count) holds.
//
// Entry points: Run executes one schedule; Generate derives a schedule
// from a seed; Shrink minimizes a failing schedule. sim_test.go runs a
// fixed regression corpus of seeds in short mode and random seeds
// otherwise; cmd/evssim explores seed ranges offline.
package sim
