package workload

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/storage"
)

func TestUniformStaysInKeyspace(t *testing.T) {
	u := &Uniform{N: 10, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 1000; i++ {
		k := u.Next()
		if !strings.HasPrefix(k, "key-") {
			t.Fatalf("bad key %q", k)
		}
	}
}

func TestZipfSkews(t *testing.T) {
	z := NewZipf(1000, rand.New(rand.NewSource(2)))
	counts := make(map[string]int)
	for i := 0; i < 5000; i++ {
		counts[z.Next()]++
	}
	if counts["key-000000"] < 500 {
		t.Fatalf("zipf not skewed: hottest key hit %d of 5000", counts["key-000000"])
	}
}

func TestHotspotFraction(t *testing.T) {
	h := &Hotspot{
		Fraction: 0.5,
		Cold:     &Uniform{N: 100, Rng: rand.New(rand.NewSource(3))},
		Rng:      rand.New(rand.NewSource(4)),
	}
	hot := 0
	for i := 0; i < 2000; i++ {
		if h.Next() == "key-hot" {
			hot++
		}
	}
	if hot < 800 || hot > 1200 {
		t.Fatalf("hotspot fraction off: %d of 2000", hot)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() *Generator {
		return NewGenerator(&Uniform{N: 50, Rng: rand.New(rand.NewSource(7))}, DefaultMix, 7)
	}
	g1, g2 := mk(), mk()
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if string(a.Update) != string(b.Update) || string(a.Query) != string(b.Query) ||
			a.Semantics != b.Semantics {
			t.Fatalf("divergence at op %d", i)
		}
	}
}

func TestGeneratorMixCoversAllKinds(t *testing.T) {
	g := NewGenerator(&Uniform{N: 10, Rng: rand.New(rand.NewSource(9))}, DefaultMix, 9)
	var sets, queries, relaxed int
	for i := 0; i < 500; i++ {
		op := g.Next()
		switch {
		case op.Query != nil && op.Update == nil:
			queries++
		case op.Semantics != 0:
			relaxed++
		default:
			sets++
		}
	}
	if sets == 0 || queries == 0 || relaxed == 0 {
		t.Fatalf("mix incomplete: sets=%d queries=%d relaxed=%d", sets, queries, relaxed)
	}
}

func TestEmptyMixFallsBackToDefault(t *testing.T) {
	g := NewGenerator(&Uniform{N: 10, Rng: rand.New(rand.NewSource(1))}, Mix{}, 1)
	op := g.Next()
	if op.Update == nil && op.Query == nil {
		t.Fatal("empty op from default mix")
	}
}

func TestClientsDriveCluster(t *testing.T) {
	c, err := cluster.New(3, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var clients []*Client
	for i, id := range ids {
		clients = append(clients, &Client{
			Engine: c.Replica(id).Engine,
			Gen: NewGenerator(
				NewZipf(100, rand.New(rand.NewSource(int64(i)))),
				DefaultMix, int64(i)),
		})
	}
	st := RunGroup(ctx, clients, 30)
	if st.Failed > 0 {
		t.Fatalf("failures: %+v", st)
	}
	if st.Completed+st.Aborted != uint64(30*len(clients)) {
		t.Fatalf("lost operations: %+v", st)
	}
	if st.Throughput() <= 0 {
		t.Fatalf("throughput: %+v", st)
	}
	if err := c.CheckTotalOrder(ids...); err != nil {
		t.Fatal(err)
	}
}
