// Package workload generates client action streams for examples,
// benchmarks and stress tests: key distributions (uniform, zipfian,
// hotspot), operation mixes over the db command language, and open- or
// closed-loop driving against a replication engine.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

// KeyDist selects keys for generated operations.
type KeyDist interface {
	// Next returns the next key.
	Next() string
}

// Uniform picks keys uniformly from a fixed keyspace.
type Uniform struct {
	N   int
	Rng *rand.Rand
}

var _ KeyDist = (*Uniform)(nil)

// Next implements KeyDist.
func (u *Uniform) Next() string {
	return fmt.Sprintf("key-%06d", u.Rng.Intn(u.N))
}

// Zipf skews access toward low-numbered keys (s=1.1), modeling the hot
// keys of real OLTP workloads.
type Zipf struct {
	z *rand.Zipf
}

var _ KeyDist = (*Zipf)(nil)

// NewZipf builds a zipfian distribution over n keys.
func NewZipf(n int, rng *rand.Rand) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, 1.1, 1, uint64(n-1))}
}

// Next implements KeyDist.
func (z *Zipf) Next() string {
	return fmt.Sprintf("key-%06d", z.z.Uint64())
}

// Hotspot sends a fraction of traffic to a single hot key.
type Hotspot struct {
	Fraction float64 // probability of hitting the hot key
	Cold     KeyDist
	Rng      *rand.Rand
}

var _ KeyDist = (*Hotspot)(nil)

// Next implements KeyDist.
func (h *Hotspot) Next() string {
	if h.Rng.Float64() < h.Fraction {
		return "key-hot"
	}
	return h.Cold.Next()
}

// Mix describes the operation blend of a workload. Weights need not sum
// to anything particular; they are relative.
type Mix struct {
	Set int // plain writes
	Add int // commutative increments
	Get int // strict queries
	TS  int // timestamped writes
}

// DefaultMix is a write-heavy blend resembling the paper's action stream.
var DefaultMix = Mix{Set: 6, Add: 2, Get: 1, TS: 1}

// Op is one generated client operation.
type Op struct {
	Update    []byte
	Query     []byte
	Semantics types.Semantics
}

// Generator produces a deterministic (seeded) stream of operations.
type Generator struct {
	keys KeyDist
	mix  Mix
	rng  *rand.Rand
	tot  int
	seq  int64
}

// NewGenerator builds a generator over the key distribution and mix.
func NewGenerator(keys KeyDist, mix Mix, seed int64) *Generator {
	tot := mix.Set + mix.Add + mix.Get + mix.TS
	if tot == 0 {
		mix = DefaultMix
		tot = mix.Set + mix.Add + mix.Get + mix.TS
	}
	return &Generator{keys: keys, mix: mix, rng: rand.New(rand.NewSource(seed)), tot: tot}
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	g.seq++
	key := g.keys.Next()
	r := g.rng.Intn(g.tot)
	switch {
	case r < g.mix.Set:
		return Op{
			Update:    db.EncodeUpdate(db.Set(key, fmt.Sprintf("v%d", g.seq))),
			Semantics: types.SemStrict,
		}
	case r < g.mix.Set+g.mix.Add:
		return Op{
			Update:    db.EncodeUpdate(db.Add(key, int64(g.rng.Intn(10)+1))),
			Semantics: types.SemCommutative,
		}
	case r < g.mix.Set+g.mix.Add+g.mix.Get:
		return Op{Query: db.Get(key), Semantics: types.SemStrict}
	default:
		return Op{
			Update:    db.EncodeUpdate(db.TSSet(key, fmt.Sprintf("t%d", g.seq), g.seq)),
			Semantics: types.SemTimestamp,
		}
	}
}

// Stats aggregates a driver run.
type Stats struct {
	Completed uint64
	Aborted   uint64
	Failed    uint64
	Elapsed   time.Duration
}

// Throughput returns completed operations per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Elapsed.Seconds()
}

// Client drives one engine with generated operations.
type Client struct {
	Engine *core.Engine
	Gen    *Generator
	// Think inserts a fixed pause between operations (0 = closed loop at
	// full speed).
	Think time.Duration
}

// Run submits n operations (or until ctx ends) and reports stats.
func (c *Client) Run(ctx context.Context, n int) Stats {
	start := time.Now()
	var st Stats
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		op := c.Gen.Next()
		reply, err := c.Engine.Submit(ctx, op.Update, op.Query, op.Semantics)
		switch {
		case err != nil:
			st.Failed++
		case reply.Err != "":
			st.Aborted++
		default:
			st.Completed++
		}
		if c.Think > 0 {
			time.Sleep(c.Think)
		}
	}
	st.Elapsed = time.Since(start)
	return st
}

// RunGroup drives several clients concurrently and merges their stats.
func RunGroup(ctx context.Context, clients []*Client, opsEach int) Stats {
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		agg Stats
	)
	start := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			st := c.Run(ctx, opsEach)
			mu.Lock()
			agg.Completed += st.Completed
			agg.Aborted += st.Aborted
			agg.Failed += st.Failed
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	agg.Elapsed = time.Since(start)
	return agg
}
