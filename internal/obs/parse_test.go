package obs

import (
	"strings"
	"testing"
)

func TestParseValidExposition(t *testing.T) {
	text := `# HELP evsdb_actions_total Actions generated.
# TYPE evsdb_actions_total counter
evsdb_actions_total 42
# HELP evsdb_lat_seconds Latency.
# TYPE evsdb_lat_seconds histogram
evsdb_lat_seconds_bucket{class="strict",le="0.001"} 1
evsdb_lat_seconds_bucket{class="strict",le="0.01"} 3
evsdb_lat_seconds_bucket{class="strict",le="+Inf"} 4
evsdb_lat_seconds_sum{class="strict"} 0.52
evsdb_lat_seconds_count{class="strict"} 4
# HELP evsdb_state Gauge of state.
# TYPE evsdb_state gauge
evsdb_state{server="s1"} 2
`
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("evsdb_actions_total", nil); !ok || v != 42 {
		t.Fatalf("counter = %v,%v", v, ok)
	}
	if f := exp.Family("evsdb_lat_seconds"); f == nil || f.Kind != "histogram" {
		t.Fatalf("histogram family: %+v", f)
	}
	if v, ok := exp.Value("evsdb_state", map[string]string{"server": "s1"}); !ok || v != 2 {
		t.Fatalf("gauge = %v,%v", v, ok)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad metric name":     "# HELP 9bad h\n# TYPE 9bad counter\n9bad 1\n",
		"undeclared family":   "orphan_total 1\n",
		"missing TYPE":        "# HELP evsdb_x h\nevsdb_x 1\n",
		"bad value":           "# HELP evsdb_x h\n# TYPE evsdb_x counter\nevsdb_x abc\n",
		"unterminated labels": "# HELP evsdb_x h\n# TYPE evsdb_x counter\nevsdb_x{a=\"b\" 1\n",
		"unquoted label":      "# HELP evsdb_x h\n# TYPE evsdb_x counter\nevsdb_x{a=b} 1\n",
		"duplicate label":     "# HELP evsdb_x h\n# TYPE evsdb_x counter\nevsdb_x{a=\"1\",a=\"2\"} 1\n",
		"bad escape":          "# HELP evsdb_x h\n# TYPE evsdb_x counter\nevsdb_x{a=\"\\q\"} 1\n",
		"unknown type":        "# HELP evsdb_x h\n# TYPE evsdb_x widget\nevsdb_x 1\n",
		"duplicate family":    "# HELP evsdb_x h\n# TYPE evsdb_x counter\n# HELP evsdb_x h\n",
		"non-cumulative buckets": `# HELP evsdb_h h
# TYPE evsdb_h histogram
evsdb_h_bucket{le="0.1"} 5
evsdb_h_bucket{le="1"} 3
evsdb_h_bucket{le="+Inf"} 5
evsdb_h_sum 1
evsdb_h_count 5
`,
		"missing +Inf bucket": `# HELP evsdb_h h
# TYPE evsdb_h histogram
evsdb_h_bucket{le="0.1"} 5
evsdb_h_sum 1
evsdb_h_count 5
`,
		"+Inf != count": `# HELP evsdb_h h
# TYPE evsdb_h histogram
evsdb_h_bucket{le="+Inf"} 5
evsdb_h_sum 1
evsdb_h_count 6
`,
		"duplicate sum": `# HELP evsdb_h h
# TYPE evsdb_h histogram
evsdb_h_bucket{le="+Inf"} 1
evsdb_h_sum 1
evsdb_h_sum 2
evsdb_h_count 1
`,
		"bucket without le": `# HELP evsdb_h h
# TYPE evsdb_h histogram
evsdb_h_bucket 1
evsdb_h_sum 1
evsdb_h_count 1
`,
	}
	for name, text := range cases {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("%s: parser accepted invalid input", name)
		}
	}
}

func TestParseHandlesEscapesAndTimestamps(t *testing.T) {
	text := "# HELP evsdb_x h\n# TYPE evsdb_x counter\n" +
		`evsdb_x{p="a\"b\\c\nd"} 3 1712345678` + "\n"
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\"b\\c\nd"
	if v, ok := exp.Value("evsdb_x", map[string]string{"p": want}); !ok || v != 3 {
		t.Fatalf("escaped value = %v,%v", v, ok)
	}
}

func TestParserAcceptsRegistryOutput(t *testing.T) {
	// End-to-end: a registry resembling the real instrumented set must
	// render text the parser accepts.
	r := NewRegistry()
	for _, class := range []string{"strict", "commutative", "timestamp"} {
		h := r.Histogram("evsdb_action_latency_seconds", "Submit-to-green latency.", nil, L("class", class))
		h.Observe(0.002)
		h.Observe(0.3)
	}
	r.Counter("evsdb_actions_generated_total", "x").Add(10)
	r.Gauge("evsdb_actions_green", "x").Set(7)
	hb := r.Histogram("evsdb_batch_actions", "x", SizeBuckets)
	hb.Observe(1)
	hb.Observe(64)
	hb.Observe(300)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(b.String()); err != nil {
		t.Fatalf("parser rejected registry output: %v\n%s", err, b.String())
	}
}
