// Package obs is the repo's dependency-free observability layer: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// rendering the Prometheus text exposition format, a bounded lock-free
// event ring recording typed state-machine events with monotonic
// timestamps, and a small Observer bundle that threads both — plus a
// log/slog logger — through the engine, EVS and transport layers.
//
// Everything on the hot path is allocation-free: counter increments and
// histogram observations are single atomic operations (the histogram sum
// is a CAS loop on the float64 bit pattern), and the tracer writes to
// pre-allocated all-atomic ring slots. Registration and rendering take
// locks; recording never does.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Inc and Add are
// allocation-free single atomic operations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is allocation-free:
// a linear scan over the (small) bound slice, one atomic bucket add, one
// atomic count add and a CAS loop folding the value into the float64 sum.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bit pattern
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default upper-bound set for latency histograms
// (seconds): 100µs to 10s, roughly exponential — wide enough for both
// the in-memory simulated-disk path and real fsync latencies.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is the default upper-bound set for small-count histograms
// (batch sizes and the like): powers of two through 256.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Label is one metric label pair. Values are escaped at render time.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

type series struct {
	labels string // pre-rendered `k1="v1",k2="v2"` (no braces), "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   string
	series []*series
}

// Registry holds metric families and renders them as Prometheus text.
// Metric creation is idempotent: asking for the same name and label set
// returns the existing metric, so layers can share a registry without
// coordinating registration order. Creation locks; the returned metrics
// are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable rendering
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels pre-renders a label set in sorted-key order with proper
// value escaping, so rendering and series identity are both canonical.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and series slot.
func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labels == ls {
			return s
		}
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return s
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for name+labels, creating it if
// needed. bounds must be ascending; nil means LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	s := r.lookup(name, help, kindHist, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.h
}

// WriteText renders every family in Prometheus text exposition format:
// one # HELP and # TYPE header per family, label variants grouped under
// it, histogram series expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(s.labels), s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(s.labels), s.g.Value())
			case kindHist:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(s.labels), formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(s.labels), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(s.labels), h.Count())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP makes the registry a GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
