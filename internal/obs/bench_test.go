package obs

import "testing"

// The hot-path guards: counter increments, histogram observes and
// tracer records must all be 0 allocs/op so instrumenting the engine's
// submit path never touches the garbage collector.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("evsdb_bench_total", "h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if testing.AllocsPerRun(100, c.Inc) != 0 {
		b.Fatal("Counter.Inc allocates")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("evsdb_bench_seconds", "h", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
	if testing.AllocsPerRun(100, func() { h.Observe(0.0042) }) != 0 {
		b.Fatal("Histogram.Observe allocates")
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("evsdb_bench_gauge", "h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(EvState, 1, 2, 0)
	}
	if testing.AllocsPerRun(100, func() { tr.Record(EvState, 1, 2, 0) }) != 0 {
		b.Fatal("Tracer.Record allocates")
	}
}

func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for _, class := range []string{"strict", "commutative", "timestamp"} {
		r.Histogram("evsdb_action_latency_seconds", "h", nil, L("class", class)).Observe(0.01)
	}
	for i := 0; i < 20; i++ {
		r.Counter("evsdb_bench_total", "h", L("k", string(rune('a'+i)))).Inc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink discardWriter
		_ = r.WriteText(&sink)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
