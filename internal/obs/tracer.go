package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Kind identifies the type of a traced state-machine event.
type Kind uint32

const (
	// EvState: engine state transition. A=from, B=to (core.State values).
	EvState Kind = iota + 1
	// EvInstall: primary component installed. A=primIndex, B=attemptIndex,
	// C=member count.
	EvInstall
	// EvConfRegular: regular configuration delivered. A=conf id, B=members.
	EvConfRegular
	// EvConfTrans: transitional configuration delivered. A=conf id,
	// B=members.
	EvConfTrans
	// EvExchangeStart: state-exchange round began. A=round number.
	EvExchangeStart
	// EvExchangeEnd: retransmission finished. A=round number, B=1 if a
	// quorum was present (→ Construct), 0 otherwise (→ NonPrim).
	EvExchangeEnd
	// EvBatchFlush: a submit batch was flushed. A=actions in batch,
	// B=reason (FlushFull/FlushTimer/FlushDrain).
	EvBatchFlush
	// EvAdmissionReject: a submission was rejected by admission control.
	// A=in-flight count at rejection.
	EvAdmissionReject
	// EvWALSync: forced log sync at a protocol barrier. A=point
	// (SyncPoint values).
	EvWALSync
	// EvDedupHit: a keyed submission matched the dedup table or an
	// in-flight action. A=1 replay, 2 in-flight attach, 3 eager-relaxed.
	EvDedupHit
	// EvViewGather: EVS membership gather phase entered. A=proposal conf id.
	EvViewGather
	// EvViewFlush: EVS flush phase entered. A=new conf id, B=members.
	EvViewFlush
	// EvViewInstall: EVS view installed. A=conf id, B=members.
	EvViewInstall
	// EvCatchUp: engine adopted a peer snapshot wholesale. A=green count
	// after catch-up.
	EvCatchUp
)

// Batch flush reasons (EvBatchFlush.B).
const (
	FlushFull  = 1 // batch hit MaxBatchActions
	FlushTimer = 2 // MaxBatchDelay expired
	FlushDrain = 3 // opportunistic drain emptied the queue
)

// SyncPoint enumerates the engine's WAL barrier points (EvWALSync.A).
type SyncPoint uint64

const (
	SyncExchangeStates SyncPoint = iota + 1
	SyncConstruct
	SyncNonPrim
	SyncInstall
	SyncCatchUp
	SyncOther
)

// SyncPointOf maps the engine's barrier-point names to SyncPoint values.
func SyncPointOf(point string) SyncPoint {
	switch point {
	case "exchange-states":
		return SyncExchangeStates
	case "construct":
		return SyncConstruct
	case "nonprim":
		return SyncNonPrim
	case "install":
		return SyncInstall
	case "catch-up":
		return SyncCatchUp
	}
	return SyncOther
}

func (p SyncPoint) String() string {
	switch p {
	case SyncExchangeStates:
		return "exchange-states"
	case SyncConstruct:
		return "construct"
	case SyncNonPrim:
		return "nonprim"
	case SyncInstall:
		return "install"
	case SyncCatchUp:
		return "catch-up"
	}
	return "other"
}

// StateName renders a core.State value for traces. The core package
// injects the real name table from an init function; the default keeps
// obs dependency-free.
var StateName = func(s uint64) string { return "state(" + strconv.FormatUint(s, 10) + ")" }

func (k Kind) String() string {
	switch k {
	case EvState:
		return "state"
	case EvInstall:
		return "install"
	case EvConfRegular:
		return "conf-regular"
	case EvConfTrans:
		return "conf-trans"
	case EvExchangeStart:
		return "exchange-start"
	case EvExchangeEnd:
		return "exchange-end"
	case EvBatchFlush:
		return "batch-flush"
	case EvAdmissionReject:
		return "admission-reject"
	case EvWALSync:
		return "wal-sync"
	case EvDedupHit:
		return "dedup-hit"
	case EvViewGather:
		return "view-gather"
	case EvViewFlush:
		return "view-flush"
	case EvViewInstall:
		return "view-install"
	case EvCatchUp:
		return "catch-up"
	}
	return "kind(" + strconv.FormatUint(uint64(k), 10) + ")"
}

// Event is one recorded state-machine event. At is the monotonic offset
// from the tracer's creation; A/B/C are kind-specific operands.
type Event struct {
	Seq  uint64
	At   time.Duration
	Kind Kind
	A    uint64
	B    uint64
	C    uint64
}

// String renders the event for post-mortem dumps.
func (e Event) String() string {
	ts := fmt.Sprintf("%10.4fs", e.At.Seconds())
	switch e.Kind {
	case EvState:
		return fmt.Sprintf("%s #%-5d state      %s -> %s", ts, e.Seq, StateName(e.A), StateName(e.B))
	case EvInstall:
		return fmt.Sprintf("%s #%-5d install    prim=%d attempt=%d members=%d", ts, e.Seq, e.A, e.B, e.C)
	case EvConfRegular:
		return fmt.Sprintf("%s #%-5d conf-reg   id=%d members=%d", ts, e.Seq, e.A, e.B)
	case EvConfTrans:
		return fmt.Sprintf("%s #%-5d conf-trans id=%d members=%d", ts, e.Seq, e.A, e.B)
	case EvExchangeStart:
		return fmt.Sprintf("%s #%-5d exch-start round=%d", ts, e.Seq, e.A)
	case EvExchangeEnd:
		outcome := "no-quorum"
		if e.B == 1 {
			outcome = "quorum"
		}
		return fmt.Sprintf("%s #%-5d exch-end   round=%d %s", ts, e.Seq, e.A, outcome)
	case EvBatchFlush:
		reason := "drain"
		switch e.B {
		case FlushFull:
			reason = "full"
		case FlushTimer:
			reason = "timer"
		}
		return fmt.Sprintf("%s #%-5d batch      n=%d reason=%s", ts, e.Seq, e.A, reason)
	case EvAdmissionReject:
		return fmt.Sprintf("%s #%-5d admission-reject inflight=%d", ts, e.Seq, e.A)
	case EvWALSync:
		return fmt.Sprintf("%s #%-5d wal-sync   point=%s", ts, e.Seq, SyncPoint(e.A))
	case EvDedupHit:
		how := "replay"
		switch e.A {
		case 2:
			how = "inflight"
		case 3:
			how = "eager"
		}
		return fmt.Sprintf("%s #%-5d dedup      %s", ts, e.Seq, how)
	case EvViewGather:
		return fmt.Sprintf("%s #%-5d evs-gather id=%d", ts, e.Seq, e.A)
	case EvViewFlush:
		return fmt.Sprintf("%s #%-5d evs-flush  id=%d members=%d", ts, e.Seq, e.A, e.B)
	case EvViewInstall:
		return fmt.Sprintf("%s #%-5d evs-install id=%d members=%d", ts, e.Seq, e.A, e.B)
	case EvCatchUp:
		return fmt.Sprintf("%s #%-5d catch-up   greens=%d", ts, e.Seq, e.A)
	}
	return fmt.Sprintf("%s #%-5d %s a=%d b=%d c=%d", ts, e.Seq, e.Kind, e.A, e.B, e.C)
}

// slot is one ring entry. Every field is atomic so concurrent Record and
// Events never constitute a data race; seq doubles as a seqlock: a
// writer zeroes it, stores the payload, then publishes the new sequence
// number. A reader that sees the same nonzero seq before and after
// reading the payload got a consistent snapshot.
type slot struct {
	seq  atomic.Uint64
	at   atomic.Int64
	kind atomic.Uint32
	a    atomic.Uint64
	b    atomic.Uint64
	c    atomic.Uint64
}

// Tracer is a bounded lock-free ring of Events. Record is wait-free for
// a single writer and safe (last-writer-wins per slot) for many; Events
// returns the most recent events, skipping any slot caught mid-write.
// A nil *Tracer is valid: Record and Events become no-ops.
type Tracer struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64
	start time.Time
}

// NewTracer builds a ring holding the last n events (rounded up to a
// power of two, minimum 16).
func NewTracer(n int) *Tracer {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Tracer{
		slots: make([]slot, size),
		mask:  uint64(size - 1),
		start: time.Now(),
	}
}

// Record appends an event. Allocation-free.
func (t *Tracer) Record(k Kind, a, b, c uint64) {
	if t == nil {
		return
	}
	at := time.Since(t.start)
	seq := t.head.Add(1)
	s := &t.slots[seq&t.mask]
	s.seq.Store(0) // invalidate for readers while fields are torn
	s.at.Store(int64(at))
	s.kind.Store(uint32(k))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Events returns up to n most recent events, oldest first. Slots being
// concurrently overwritten are skipped.
func (t *Tracer) Events(n int) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	head := t.head.Load()
	if head == 0 {
		return nil
	}
	if uint64(n) > head {
		n = int(head)
	}
	if n > len(t.slots) {
		n = len(t.slots)
	}
	out := make([]Event, 0, n)
	for seq := head - uint64(n) + 1; seq <= head; seq++ {
		s := &t.slots[seq&t.mask]
		got := s.seq.Load()
		if got != seq {
			continue // overwritten or mid-write
		}
		ev := Event{
			Seq:  seq,
			At:   time.Duration(s.at.Load()),
			Kind: Kind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
			C:    s.c.Load(),
		}
		if s.seq.Load() != seq {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Len reports how many events have ever been recorded.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}
