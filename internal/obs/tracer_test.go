package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(64)
	tr.Record(EvState, 1, 2, 0)
	tr.Record(EvInstall, 3, 1, 5)
	tr.Record(EvWALSync, uint64(SyncInstall), 0, 0)
	evs := tr.Events(10)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvState || evs[1].Kind != EvInstall || evs[2].Kind != EvWALSync {
		t.Fatalf("wrong order: %v", evs)
	}
	if evs[0].Seq >= evs[1].Seq || evs[1].Seq >= evs[2].Seq {
		t.Fatalf("sequence not increasing: %v", evs)
	}
	if !strings.Contains(evs[2].String(), "install") {
		t.Fatalf("wal-sync event string = %q", evs[2].String())
	}
}

func TestTracerWraps(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 100; i++ {
		tr.Record(EvBatchFlush, uint64(i), FlushTimer, 0)
	}
	evs := tr.Events(1000)
	if len(evs) != 16 {
		t.Fatalf("got %d events after wrap, want 16", len(evs))
	}
	if evs[len(evs)-1].A != 99 {
		t.Fatalf("newest event A = %d, want 99", evs[len(evs)-1].A)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %v", evs)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvState, 1, 2, 0) // must not panic
	if evs := tr.Events(5); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracer has nonzero length")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Record(EvState, id, id+1, 0)
				}
			}
		}(uint64(i))
	}
	for i := 0; i < 200; i++ {
		for _, ev := range tr.Events(64) {
			if ev.Kind != EvState {
				t.Errorf("torn read: kind=%v", ev.Kind)
			}
			if ev.B != ev.A+1 {
				t.Errorf("torn read: a=%d b=%d", ev.A, ev.B)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestSyncPointRoundTrip(t *testing.T) {
	for _, name := range []string{"exchange-states", "construct", "nonprim", "install", "catch-up"} {
		if got := SyncPointOf(name).String(); got != name {
			t.Fatalf("SyncPointOf(%q).String() = %q", name, got)
		}
	}
	if SyncPointOf("bogus") != SyncOther {
		t.Fatal("unknown point did not map to SyncOther")
	}
}

func TestEventStrings(t *testing.T) {
	// Every kind must render without falling through to the generic form.
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: EvState, A: 1, B: 2}, "state"},
		{Event{Kind: EvInstall, A: 1, B: 2, C: 3}, "install"},
		{Event{Kind: EvConfRegular, A: 1, B: 3}, "conf-reg"},
		{Event{Kind: EvConfTrans, A: 1, B: 3}, "conf-trans"},
		{Event{Kind: EvExchangeStart, A: 4}, "exch-start"},
		{Event{Kind: EvExchangeEnd, A: 4, B: 1}, "quorum"},
		{Event{Kind: EvBatchFlush, A: 9, B: FlushFull}, "reason=full"},
		{Event{Kind: EvAdmissionReject, A: 12}, "admission"},
		{Event{Kind: EvWALSync, A: uint64(SyncConstruct)}, "construct"},
		{Event{Kind: EvDedupHit, A: 2}, "inflight"},
		{Event{Kind: EvViewGather, A: 7}, "evs-gather"},
		{Event{Kind: EvViewFlush, A: 7, B: 3}, "evs-flush"},
		{Event{Kind: EvViewInstall, A: 7, B: 3}, "evs-install"},
		{Event{Kind: EvCatchUp, A: 40}, "catch-up"},
	}
	for _, c := range cases {
		if s := c.ev.String(); !strings.Contains(s, c.want) {
			t.Errorf("%v.String() = %q, want substring %q", c.ev.Kind, s, c.want)
		}
	}
}
