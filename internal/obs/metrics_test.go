package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evsdb_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("evsdb_test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("evsdb_test_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("evsdb_l_total", "h", L("class", "strict"))
	b := r.Counter("evsdb_l_total", "h", L("class", "commutative"))
	if a == b {
		t.Fatal("different labels produced the same counter")
	}
	a.Add(3)
	b.Add(9)
	exp := render(t, r)
	if v, ok := exp.Value("evsdb_l_total", map[string]string{"class": "strict"}); !ok || v != 3 {
		t.Fatalf("strict series = %v,%v", v, ok)
	}
	if v, ok := exp.Value("evsdb_l_total", map[string]string{"class": "commutative"}); !ok || v != 9 {
		t.Fatalf("commutative series = %v,%v", v, ok)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("evsdb_lat_seconds", "h", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // +Inf
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.05 || got > 5.06 {
		t.Fatalf("sum = %v", got)
	}
	exp := render(t, r)
	if v, _ := exp.Value("evsdb_lat_seconds_bucket", map[string]string{"le": "0.001"}); v != 1 {
		t.Fatalf("le=0.001 = %v, want 1", v)
	}
	if v, _ := exp.Value("evsdb_lat_seconds_bucket", map[string]string{"le": "0.1"}); v != 3 {
		t.Fatalf("le=0.1 = %v, want 3 (cumulative)", v)
	}
	if v, _ := exp.Value("evsdb_lat_seconds_bucket", map[string]string{"le": "+Inf"}); v != 4 {
		t.Fatalf("le=+Inf = %v, want 4", v)
	}
}

func TestConcurrentUseRendersValidText(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("evsdb_conc_total", "h")
			h := r.Histogram("evsdb_conc_seconds", "h", nil)
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		render(t, r)
	}
	close(stop)
	wg.Wait()
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("evsdb_http_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if _, err := ParseExposition(rec.Body.String()); err != nil {
		t.Fatalf("served text does not parse: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("evsdb_esc_total", "h", L("path", `a"b\c`+"\n")).Inc()
	exp := render(t, r)
	if v, ok := exp.Value("evsdb_esc_total", map[string]string{"path": `a"b\c` + "\n"}); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v %v", v, ok)
	}
}

func render(t *testing.T, r *Registry) *Exposition {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	exp, err := ParseExposition(b.String())
	if err != nil {
		t.Fatalf("rendered text does not parse: %v\n%s", err, b.String())
	}
	return exp
}
