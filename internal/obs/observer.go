package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
)

// Observer bundles the three observability channels a component needs:
// a metrics registry, an event tracer and a structured logger. Layers
// sharing one replica share one Observer, so /metrics and /debug/events
// show the whole node.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
	Log   *slog.Logger
}

// NewObserver builds an Observer with a fresh registry, a 4096-event
// tracer and a discarding logger. Callers that want real log output
// replace Log (see WithLogger).
func NewObserver() *Observer {
	return &Observer{
		Reg:   NewRegistry(),
		Trace: NewTracer(4096),
		Log:   slog.New(discardHandler{}),
	}
}

// WithLogger returns a copy of o that logs through l.
func (o *Observer) WithLogger(l *slog.Logger) *Observer {
	c := *o
	c.Log = l
	return &c
}

// ServeEvents handles GET /debug/events?n=: the most recent n (default
// 128) traced events as plain text, oldest first.
func (o *Observer) ServeEvents(w http.ResponseWriter, r *http.Request) {
	n := 128
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, ev := range o.Trace.Events(n) {
		fmt.Fprintln(w, ev.String())
	}
}

// discardHandler is a no-op slog.Handler. (slog.DiscardHandler exists
// only from Go 1.24; this repo targets 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
