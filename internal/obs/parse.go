package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a parsed exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Kind    string
	Samples []Sample
}

// Exposition is a fully parsed /metrics payload.
type Exposition struct {
	Families []ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *ParsedFamily {
	return e.byName[name]
}

// Value returns the value of the sample in family name whose label set
// matches labels exactly (nil/empty matches the unlabeled sample), and
// whether such a sample exists.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	f := e.byName[familyOf(name, e)]
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition is a hand-rolled parser for the Prometheus text
// exposition format (version 0.0.4), strict enough to act as a format
// validator in tests and CI: it checks metric-name and label grammar,
// that every sample belongs to a declared family, that histogram
// buckets are cumulative (monotone nondecreasing with le), that the
// +Inf bucket equals _count, and that _sum/_count appear exactly once
// per histogram series.
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{byName: map[string]*ParsedFamily{}}
	var cur *ParsedFamily
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if exp.byName[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
			}
			cur = &ParsedFamily{Name: name, Help: help}
			exp.Families = append(exp.Families, *cur)
			cur = &exp.Families[len(exp.Families)-1]
			exp.byName[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE without kind", lineNo)
			}
			f := exp.byName[name]
			if f == nil {
				return nil, fmt.Errorf("line %d: TYPE for undeclared family %q", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, kind)
			}
			f.Kind = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := exp.byName[familyOf(s.Name, exp)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no family declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for i := range exp.Families {
		f := &exp.Families[i]
		if f.Kind == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", f.Name)
		}
		if f.Kind == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return exp, nil
}

// familyOf maps a sample name to its declaring family, accounting for
// histogram suffixes.
func familyOf(name string, exp *Exposition) string {
	if exp.byName[name] != nil {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && exp.byName[base] != nil && exp.byName[base].Kind == "histogram" {
			return base
		}
	}
	return name
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	valStr, _, _ := strings.Cut(rest, " ") // optional timestamp ignored
	if valStr == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

// findLabelEnd locates the closing brace, honoring quoted values.
func findLabelEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(body) {
		start := i
		for i < len(body) && isNameChar(body[i], i == start) {
			i++
		}
		if i == start {
			return nil, fmt.Errorf("bad label name at %q", body[start:])
		}
		key := body[start:i]
		if i >= len(body) || body[i] != '=' {
			return nil, fmt.Errorf("label %q missing '='", key)
		}
		i++
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", body[i], key)
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		i++ // closing quote
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", key)
			}
			i++
		}
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return true
}

// checkHistogram validates each label-variant of a histogram family:
// buckets cumulative and nondecreasing in le order, terminal +Inf
// bucket present and equal to _count, _sum/_count present exactly once.
func checkHistogram(f *ParsedFamily) error {
	type variant struct {
		buckets map[float64]float64 // le -> cumulative count
		sum     []float64
		count   []float64
	}
	variants := map[string]*variant{}
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *variant {
		k := keyOf(labels)
		if variants[k] == nil {
			variants[k] = &variant{buckets: map[float64]float64{}}
		}
		return variants[k]
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %q: bucket without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("histogram %q: bad le %q", f.Name, le)
			}
			v := get(s.Labels)
			if _, dup := v.buckets[bound]; dup {
				return fmt.Errorf("histogram %q: duplicate bucket le=%q", f.Name, le)
			}
			v.buckets[bound] = s.Value
		case f.Name + "_sum":
			v := get(s.Labels)
			v.sum = append(v.sum, s.Value)
		case f.Name + "_count":
			v := get(s.Labels)
			v.count = append(v.count, s.Value)
		default:
			return fmt.Errorf("histogram %q: unexpected sample %q", f.Name, s.Name)
		}
	}
	for key, v := range variants {
		if len(v.sum) != 1 || len(v.count) != 1 {
			return fmt.Errorf("histogram %q{%s}: want exactly one _sum and _count, got %d/%d",
				f.Name, key, len(v.sum), len(v.count))
		}
		bounds := make([]float64, 0, len(v.buckets))
		for b := range v.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
			return fmt.Errorf("histogram %q{%s}: missing +Inf bucket", f.Name, key)
		}
		prev := -1.0
		for _, b := range bounds {
			if v.buckets[b] < prev {
				return fmt.Errorf("histogram %q{%s}: bucket le=%v count %v < previous %v (not cumulative)",
					f.Name, key, b, v.buckets[b], prev)
			}
			prev = v.buckets[b]
		}
		if inf := v.buckets[math.Inf(1)]; inf != v.count[0] {
			return fmt.Errorf("histogram %q{%s}: +Inf bucket %v != _count %v", f.Name, key, inf, v.count[0])
		}
	}
	return nil
}
