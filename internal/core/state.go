package core

import (
	"time"

	"evsdb/internal/obs"
	"evsdb/internal/types"
)

// onAction handles an action delivery per the current state (paper
// CodeSegments A.1–A.3, A.4, A.6, A.11, A.12).
func (e *Engine) onAction(a types.Action) {
	switch e.st {
	case NonPrim:
		e.markRed(a, true)
	case RegPrim:
		e.markGreen(a)
		if a.GreenLine > e.greenKnown[a.ID.Server] {
			e.greenKnown[a.ID.Server] = a.GreenLine
		}
		e.collectWhite()
	case TransPrim:
		e.markYellow(a)
	case ExchangeStates, ExchangeActions:
		// Live actions sent around the view change surface here. They
		// must NOT enter the red zone yet: members start the exchange
		// with different red cuts, so a live action that overtakes the
		// retransmission of its predecessor would be FIFO-accepted at
		// some members and rejected at others — and a subsequent install
		// would order divergent red sets (a global-order violation found
		// by fault-injection simulation). Buffer it; endOfRetrans folds
		// the buffer in after every member's cut is equalized to the
		// plan's maxRedCut, making acceptance identical everywhere.
		e.liveBuf = append(e.liveBuf, a)
	case Construct, No:
		// Total order makes this consistent: either every server sees the
		// action before its last CPC (red everywhere, greened canonically
		// on install) or after (green in delivery order everywhere).
		e.markRed(a, false)
	case Un:
		// Paper transition 1b: some server installed the primary and
		// already generated a new action. Act as if installing, mark the
		// action yellow, and join that server in TransPrim.
		e.install()
		e.markYellow(a)
		e.setState(TransPrim)
	}
}

// onActionBatch handles delivery of an ActionBatch: the bundle occupies
// one position in the total order, and every server unpacks it and
// processes the inner actions in batch order — so the observable
// expanded sequence is exactly what back-to-back single deliveries would
// have produced, while the red/green bookkeeping and database apply
// amortize over the batch.
func (e *Engine) onActionBatch(acts []types.Action) {
	if len(acts) == 0 {
		return
	}
	switch e.st {
	case NonPrim:
		e.markRedBatch(acts, true)
	case RegPrim:
		e.markRedBatch(acts, false)
		for _, a := range acts {
			if a.GreenLine > e.greenKnown[a.ID.Server] {
				e.greenKnown[a.ID.Server] = a.GreenLine
			}
		}
		e.applyGreenBatch(acts)
		e.collectWhite()
	case TransPrim:
		for _, a := range acts {
			e.markYellow(a)
		}
	case ExchangeStates, ExchangeActions:
		// Same rule as single actions: live traffic buffers until the
		// exchange equalizes red cuts (see onAction).
		e.liveBuf = append(e.liveBuf, acts...)
	case Construct, No:
		e.markRedBatch(acts, false)
	case Un:
		// Paper transition 1b, batch form: install once, then the whole
		// bundle is yellow.
		e.install()
		for _, a := range acts {
			e.markYellow(a)
		}
		e.setState(TransPrim)
	}
}

// onTransConf handles a transitional configuration notification.
func (e *Engine) onTransConf(conf types.Configuration) {
	e.obs.Trace.Record(obs.EvConfTrans, conf.ID.Counter, uint64(len(conf.Members)), 0)
	switch e.st {
	case RegPrim:
		e.setState(TransPrim)
	case NonPrim:
		// Ignored (paper A.1): red actions keep accumulating.
	case ExchangeStates, ExchangeActions:
		// The exchange died: live actions buffered during it settle as
		// plain reds (red-set divergence across components is normal
		// here; the next exchange equalizes it).
		e.flushLiveBuf()
		e.setState(NonPrim)
	case Construct:
		e.setState(No)
	}
}

// onRegConf handles a regular configuration notification.
func (e *Engine) onRegConf(conf types.Configuration) {
	e.obs.Trace.Record(obs.EvConfRegular, conf.ID.Counter, uint64(len(conf.Members)), 0)
	e.conf = conf.Clone()
	switch e.st {
	case TransPrim:
		// The primary was installed and ran; its outcome is fully known
		// and synced by shiftToExchangeStates below.
		e.vuln.Status = false
		e.yellow.Status = true
	case No:
		// No server can have received all CPC messages as safe in the old
		// configuration (§ 4.1 case 3 for the last CPC), so nobody
		// installed: the attempt is void.
		e.vuln.Status = false
	case Un:
		// The dilemma stands: stay vulnerable (paper transition "?").
	}
	e.shiftToExchangeStates()
}

// onStateMsg handles a state message during ExchangeStates (paper A.4).
// Round filtering keeps messages from an exchange round superseded by a
// catch-up restart from polluting the new round's collection.
func (e *Engine) onStateMsg(s stateMsg) {
	if e.st != ExchangeStates || s.Conf != e.conf.ID || s.Round != e.exchRound || e.awaitingSnap {
		return
	}
	e.stateMsgs[s.Server] = s
	for _, m := range e.conf.Members {
		if _, ok := e.stateMsgs[m]; !ok {
			return
		}
	}
	// All state messages delivered: compute the retransmission plan, send
	// this server's share, and move to ExchangeActions.
	e.plan = e.computeRetransPlan()
	if e.plan.greensBlocked() {
		// No live holder can retransmit part of the green gap — a crashed
		// member recovered below the component's white-collection base.
		// Retransmission cannot equalize green states; fall back to a full
		// state transfer (paper § 5.2) and restart the exchange.
		e.startCatchUp()
		return
	}
	e.retransmitShare()
	e.setState(ExchangeActions)
	e.maybeEndRetrans()
}

// startCatchUp initiates the § 5.2 catch-up: the most knowledgeable
// member (highest green count, ties to the lowest id — computed
// identically everywhere from the state messages) multicasts its full
// green snapshot; every member waits for it before restarting the
// exchange in the next round.
func (e *Engine) startCatchUp() {
	var sender types.ServerID
	var best uint64
	for _, m := range e.conf.Members {
		s := e.stateMsgs[m]
		if sender == "" || s.GreenCount > best || (s.GreenCount == best && m < sender) {
			sender = m
			best = s.GreenCount
		}
	}
	e.plan = nil
	e.awaitingSnap = true
	if sender == e.id {
		sm := snapMsg{Server: e.id, Conf: e.conf.ID, Round: e.exchRound, Snap: e.buildJoinSnapshot()}
		_ = multicastMsg(e.gc, engineMsg{Kind: emSnapshot, Snap: &sm})
	}
}

// onSnapshot handles a § 5.2 catch-up snapshot. Safe delivery in an
// unchanged configuration means every member processes it at the same
// point of the total order: all of them — the sender included — adopt
// whatever the snapshot adds, bump the exchange round, and re-send their
// state messages.
func (e *Engine) onSnapshot(m snapMsg) {
	if e.st != ExchangeStates || m.Conf != e.conf.ID || m.Round != e.exchRound || m.Snap == nil {
		return
	}
	e.applyCatchUp(m.Snap)
	e.exchRound++
	e.awaitingSnap = false
	e.stateMsgs = make(map[types.ServerID]stateMsg)
	e.plan = nil
	e.pendingGreen = make(map[uint64]types.Action)
	s := e.buildStateMsg()
	_ = multicastMsg(e.gc, engineMsg{Kind: emState, State: &s})
}

// applyCatchUp adopts a catch-up snapshot: members at or above the
// snapshot's green line only merge knowledge; laggards replace their
// green prefix with the snapshot, preserving every red action the
// snapshot does not already incorporate, and force the new base to disk —
// a crash right after the exchange restarts must not reopen the gap.
func (e *Engine) applyCatchUp(snap *JoinSnapshot) {
	if snap.GreenCount <= e.queue.greenCount() {
		for s, v := range snap.GreenKnown {
			if v > e.greenKnown[s] {
				e.greenKnown[s] = v
			}
		}
		return
	}
	// Red actions beyond the snapshot's per-creator cut survive the
	// restore. Green prefixes are prefix-related (Theorem 1), so the
	// snapshot incorporates every action below that cut and the kept runs
	// stay contiguous from the restored red cut.
	var keep []types.Action
	for _, a := range e.queue.reds() {
		if a.ID.Index > snap.OrderedIdx[a.ID.Server] {
			keep = append(keep, a)
		}
	}
	oldKnown := e.greenKnown
	wasApplied := e.appliedRed
	if err := e.restoreSnapshot(snap); err != nil {
		e.ioFailed = true
		return
	}
	for s, v := range oldKnown {
		if v > e.greenKnown[s] {
			e.greenKnown[s] = v
		}
	}
	e.appendLog(logRecord{T: recCheckpoint, Snap: snap})
	e.appliedRed = make(map[types.ActionID]bool)
	e.eagerApplied = make(map[string]bool)
	for _, a := range keep {
		if !e.markRed(a, false) {
			continue
		}
		if wasApplied[a.ID] {
			if a.Client != "" {
				if kind, _ := e.dedupLookup(a.Client, a.ClientSeq); kind != dedupFresh {
					// The restored snapshot already incorporates this key
					// (a retried copy turned green before the snapshot was
					// cut): redoing the eager apply would double-apply.
					continue
				}
			}
			// Relaxed action already applied and answered while red: redo
			// its effect on the restored database (its green record will
			// skip re-application, as after a replay).
			if len(a.Update) > 0 {
				_ = e.db.Apply(a.Update)
			}
			e.appliedRed[a.ID] = true
			if a.Client != "" {
				e.eagerApplied[eagerKey(a.Client, a.ClientSeq)] = true
			}
		}
	}
	// Locally pending actions incorporated in the snapshot were greened
	// elsewhere; applyGreen will never run for them here, so answer their
	// clients now. The snapshot only bounds the position: report its green
	// count, the latest position the action can occupy.
	for id, chans := range e.pendingReply {
		if id.Index <= snap.OrderedIdx[id.Server] {
			delete(e.pendingReply, id)
			e.observeLatency(id)
			for _, ch := range chans {
				ch <- Reply{GreenSeq: snap.GreenCount}
			}
			e.releaseQueries(id)
		}
	}
	for k, id := range e.inflight {
		if _, pending := e.pendingReply[id]; !pending {
			delete(e.inflight, k)
		}
	}
	for id := range e.ongoing {
		if id.Index <= snap.OrderedIdx[id.Server] {
			delete(e.ongoing, id)
		}
	}
	e.rebuildDirtyOverlay()
	e.obs.Trace.Record(obs.EvCatchUp, e.queue.greenCount(), 0, 0)
	e.persistState()
	e.syncLog("catch-up")
}

// onCPC handles a Create Primary Component message (paper A.9, A.11).
func (e *Engine) onCPC(c cpcMsg) {
	if c.Conf != e.conf.ID {
		return
	}
	switch e.st {
	case ExchangeStates, ExchangeActions:
		// A faster member can finish its retransmissions and send its CPC
		// before this member finishes receiving; total order may deliver
		// that CPC while we are still exchanging. Buffer it — it counts
		// once we reach Construct. (The paper serializes retransmission
		// turns to exclude this; buffering is the equivalent.)
		e.cpcFrom[c.Server] = true
	case Construct:
		e.cpcFrom[c.Server] = true
		if !e.allCPC() {
			return
		}
		// Everyone's CPC arrived as safe in the regular configuration:
		// install. All members reached the same green line.
		for _, m := range e.conf.Members {
			if e.greenKnown[m] < e.queue.greenCount() {
				e.greenKnown[m] = e.queue.greenCount()
			}
		}
		e.install()
		e.setState(RegPrim)
		e.handleBuffered()
		e.processPendingJoins()
		e.regenerateOngoing()
	case No:
		e.cpcFrom[c.Server] = true
		if e.allCPC() {
			// All CPCs arrived, but some only in the transitional
			// configuration: a server may or may not have installed.
			e.setState(Un)
		}
	}
}

func (e *Engine) allCPC() bool {
	for _, m := range e.conf.Members {
		if !e.cpcFrom[m] {
			return false
		}
	}
	return true
}

// shiftToExchangeStates implements the paper's Shift_to_exchange_states:
// force state to disk, clear collected state messages, generate this
// server's state message, and enter ExchangeStates.
func (e *Engine) shiftToExchangeStates() {
	// Actions still buffered from an exchange the view change cut short
	// become reds now, so the state message below accounts for them.
	e.flushLiveBuf()
	e.persistState()
	e.syncLog("exchange-states")
	e.stateMsgs = make(map[types.ServerID]stateMsg)
	e.cpcFrom = make(map[types.ServerID]bool)
	e.plan = nil
	e.pendingGreen = make(map[uint64]types.Action)
	e.exchRound = 0
	e.awaitingSnap = false
	s := e.buildStateMsg()
	_ = multicastMsg(e.gc, engineMsg{Kind: emState, State: &s})
	e.om.exchanges.Inc()
	e.exchStart = time.Now()
	e.obs.Trace.Record(obs.EvExchangeStart, e.om.exchanges.Value(), 0, 0)
	e.setState(ExchangeStates)
}

func (e *Engine) buildStateMsg() stateMsg {
	redCut := make(map[types.ServerID]uint64, len(e.redCut))
	for s, v := range e.redCut {
		redCut[s] = v
	}
	known := make(map[types.ServerID]uint64, len(e.greenKnown))
	for s, v := range e.greenKnown {
		known[s] = v
	}
	return stateMsg{
		Server:        e.id,
		Conf:          e.conf.ID,
		Round:         e.exchRound,
		RedCut:        redCut,
		GreenCount:    e.queue.greenCount(),
		BaseGreen:     e.queue.base,
		GreenSeqKnown: known,
		AttemptIndex:  e.attemptIndex,
		Prim:          e.prim,
		Vuln:          e.vuln,
		Yellow:        e.yellow,
	}
}

// endOfRetrans implements the paper's End_of_retrans: incorporate green
// lines, compute knowledge, and either start constructing the primary
// component or settle into NonPrim.
func (e *Engine) endOfRetrans() {
	// Every member's red cut now equals the plan's maxRedCut, so the
	// buffered live actions — delivered in the same total order to all —
	// are accepted or rejected identically everywhere.
	e.flushLiveBuf()
	for _, s := range e.stateMsgs {
		if s.GreenCount > e.greenKnown[s.Server] {
			e.greenKnown[s.Server] = s.GreenCount
		}
		for srv, v := range s.GreenSeqKnown {
			if v > e.greenKnown[srv] {
				e.greenKnown[srv] = v
			}
		}
	}
	e.computeKnowledge()
	if !e.exchStart.IsZero() {
		e.om.exchDur.ObserveDuration(time.Since(e.exchStart))
		e.exchStart = time.Time{}
	}
	if e.isQuorum() {
		e.obs.Trace.Record(obs.EvExchangeEnd, e.om.exchanges.Value(), 1, 0)
		e.attemptIndex++
		e.vuln = Vulnerable{
			Status:       true,
			PrimIndex:    e.prim.PrimIndex,
			AttemptIndex: e.attemptIndex,
			Set:          append([]types.ServerID(nil), e.conf.Members...),
			Bits:         map[types.ServerID]bool{e.id: true},
		}
		e.persistState()
		e.syncLog("construct")
		c := cpcMsg{Server: e.id, Conf: e.conf.ID}
		_ = multicastMsg(e.gc, engineMsg{Kind: emCPC, CPC: &c})
		e.setState(Construct)
		return
	}
	e.obs.Trace.Record(obs.EvExchangeEnd, e.om.exchanges.Value(), 0, 0)
	e.persistState()
	e.syncLog("nonprim")
	e.setState(NonPrim)
	e.rebuildDirtyOverlay()
	e.handleBuffered()
	e.processPendingJoins()
	e.regenerateOngoing()
	e.collectWhite()
}

// flushLiveBuf moves actions buffered during an exchange into the red
// zone (in their total-order arrival sequence).
func (e *Engine) flushLiveBuf() {
	if len(e.liveBuf) == 0 {
		return
	}
	buf := e.liveBuf
	e.liveBuf = nil
	for _, a := range buf {
		e.markRed(a, true)
	}
}

// regenerateOngoing re-multicasts locally created actions that never
// reached this server's own red cut: their original multicast died with
// an old configuration (membership changed between creation and
// delivery). The ongoing queue exists precisely so such actions are
// never lost (paper A.14); without re-sending them, the client's action
// would sit in limbo until this server next recovers from its log.
func (e *Engine) regenerateOngoing() {
	var acts []types.Action
	for idx := e.redCut[e.id] + 1; ; idx++ {
		a, ok := e.ongoing[types.ActionID{Server: e.id, Index: idx}]
		if !ok {
			break
		}
		acts = append(acts, a)
	}
	max := max(e.maxBatch, 1)
	for len(acts) > 0 {
		n := min(max, len(acts))
		e.generateBatch(acts[:n])
		acts = acts[n:]
	}
}

// install implements the paper's Install procedure: yellow actions turn
// green first (their order was fixed by the previous primary), then the
// remaining red actions in canonical action-id order; the primary
// component counters advance; everything is forced to disk.
func (e *Engine) install() {
	if e.yellow.Status {
		for _, id := range e.yellow.Set {
			if a, ok := e.queue.get(id); ok && !e.queue.isGreen(id) {
				e.applyGreen(a) // OR-1.2
			}
		}
	}
	e.om.installs.Inc()
	e.yellow = Yellow{}
	e.prim.PrimIndex++
	e.prim.AttemptIndex = e.attemptIndex
	e.prim.Servers = append([]types.ServerID(nil), e.vuln.Set...)
	e.attemptIndex = 0
	e.recordInstall(e.prim)
	e.obs.Trace.Record(obs.EvInstall, uint64(e.prim.PrimIndex), uint64(e.prim.AttemptIndex), uint64(len(e.prim.Servers)))
	e.obs.Log.Info("primary installed",
		"server", string(e.id), "conf", e.conf.ID, "state", e.st.String(),
		"prim", e.prim.PrimIndex, "members", len(e.prim.Servers))
	for _, a := range e.queue.redsCanonical() {
		e.applyGreen(a) // OR-2
	}
	e.db.ResetDirty()
	e.persistState()
	e.syncLog("install")
	e.collectWhite()
}

// markRed implements the paper's MarkRed: accept the action if it extends
// the creator's FIFO cut, append it to the red zone, and (optionally)
// track it for dirty reads or apply it eagerly under relaxed semantics.
func (e *Engine) markRed(a types.Action, track bool) bool {
	if e.redCut[a.ID.Server] != a.ID.Index-1 {
		return false // duplicate or out-of-order retransmission
	}
	e.redCut[a.ID.Server] = a.ID.Index
	e.queue.appendRed(a)
	e.appendLog(logRecord{T: recRed, Action: &a})
	if a.ID.Server == e.id {
		// Generated here: the action entered the queue, so the ongoing
		// copy has served its purpose (paper A.14 deletes it).
		delete(e.ongoing, a.ID)
	}
	if track {
		e.trackRed(a)
	}
	return true
}

// markRedBatch accepts a delivered batch into the red zone. The FIFO
// check and bookkeeping run per inner action, but every accepted action
// shares ONE WAL record; tracking (eager apply / dirty overlay) runs
// after logging, in batch order — equivalent to sequential markRed calls
// because trackRed never consults the log. Returns the accepted actions.
func (e *Engine) markRedBatch(acts []types.Action, track bool) []types.Action {
	accepted := make([]types.Action, 0, len(acts))
	for _, a := range acts {
		if e.redCut[a.ID.Server] != a.ID.Index-1 {
			continue // duplicate or out-of-order retransmission
		}
		e.redCut[a.ID.Server] = a.ID.Index
		e.queue.appendRed(a)
		if a.ID.Server == e.id {
			delete(e.ongoing, a.ID)
		}
		accepted = append(accepted, a)
	}
	switch len(accepted) {
	case 0:
	case 1:
		e.appendLog(logRecord{T: recRed, Action: &accepted[0]})
	default:
		e.appendLog(logRecord{T: recRedBatch, Actions: accepted})
	}
	if track {
		for _, a := range accepted {
			e.trackRed(a)
		}
	}
	return accepted
}

// trackRed handles a red action that may stay red for a while: relaxed-
// semantics actions apply eagerly; strict updates feed the dirty overlay.
func (e *Engine) trackRed(a types.Action) {
	if a.Type != types.ActionUpdate && a.Type != types.ActionQuery {
		return
	}
	switch a.Semantics {
	case types.SemCommutative, types.SemTimestamp:
		if a.Client != "" {
			// A keyed relaxed action whose key already applied here — as a
			// recorded green, or eagerly under another action id — answers
			// without a second apply. The copy stays red and resolves at
			// green time through the dedup paths in applyGreen.
			if kind, ent := e.dedupLookup(a.Client, a.ClientSeq); kind != dedupFresh {
				e.om.duplicates.Inc()
				e.obs.Trace.Record(obs.EvDedupHit, 3, 0, 0)
				delete(e.inflight, inflightKey{a.Client, a.ClientSeq})
				e.reply(a.ID, dedupReply(kind, ent))
				return
			}
			if e.eagerApplied[eagerKey(a.Client, a.ClientSeq)] {
				e.om.duplicates.Inc()
				e.obs.Trace.Record(obs.EvDedupHit, 3, 0, 0)
				delete(e.inflight, inflightKey{a.Client, a.ClientSeq})
				e.reply(a.ID, Reply{})
				return
			}
		}
		var errStr string
		if len(a.Update) > 0 {
			if err := e.db.Apply(a.Update); err != nil {
				errStr = err.Error()
			}
		}
		e.appliedRed[a.ID] = true
		if a.Client != "" {
			e.eagerApplied[eagerKey(a.Client, a.ClientSeq)] = true
			delete(e.inflight, inflightKey{a.Client, a.ClientSeq})
		}
		// Relaxed clients get their answer immediately (paper § 6).
		r := Reply{Err: errStr}
		if errStr == "" && len(a.Query) > 0 {
			if res, err := e.db.QueryGreen(a.Query); err == nil {
				r.Result = res
			} else {
				r.Err = err.Error()
			}
		}
		e.reply(a.ID, r)
	default:
		if len(a.Update) > 0 {
			_ = e.db.ApplyDirty(a.Update)
		}
	}
}

// markYellow implements the paper's MarkYellow.
func (e *Engine) markYellow(a types.Action) {
	if !e.markRed(a, false) {
		if !e.queue.has(a.ID) {
			return
		}
	}
	if e.queue.isGreen(a.ID) {
		return
	}
	for _, id := range e.yellow.Set {
		if id == a.ID {
			return
		}
	}
	e.yellow.Set = append(e.yellow.Set, a.ID)
}

// markGreen implements the paper's MarkGreen for live delivery in the
// primary component: the action goes just on top of the last green
// action and is applied.
func (e *Engine) markGreen(a types.Action) {
	if !e.markRed(a, false) && !e.queue.has(a.ID) {
		return // stale duplicate below the red cut with no queue entry
	}
	if e.queue.isGreen(a.ID) {
		return
	}
	e.applyGreen(a)
}

// applyGreen promotes an action to green, applies it to the database,
// logs it, answers the local client, and processes reconfiguration
// actions (paper MarkGreen + CodeSegment 5.1).
func (e *Engine) applyGreen(a types.Action) {
	seq, err := e.queue.promote(a.ID)
	if err != nil {
		return
	}
	e.om.applied.Inc()
	e.appendLog(logRecord{T: recGreen, ID: &a.ID, GreenSeq: seq})
	e.histMu.Lock()
	e.history = append(e.history, a.ID)
	e.histMu.Unlock()
	e.notifyWatchers()
	e.greenKnown[e.id] = e.queue.greenCount()
	if a.ID.Index > e.orderedIdx[a.ID.Server] {
		e.orderedIdx[a.ID.Server] = a.ID.Index
	}

	switch a.Type {
	case types.ActionJoin:
		e.applyJoin(a, seq)
		return
	case types.ActionLeave:
		e.applyLeave(a)
		return
	}

	if a.Client != "" {
		delete(e.inflight, inflightKey{a.Client, a.ClientSeq})
		// Keyed dedup, driven by the green order so it is identical
		// everywhere: a second green copy of the same (client, seq) — a
		// retry that was ordered through another replica — must never
		// apply again. The duplicate still occupies its green position
		// (the total order already fixed that); only its effect is
		// suppressed, and its waiters get the original outcome.
		if kind, ent := e.dedupLookup(a.Client, a.ClientSeq); kind != dedupFresh {
			e.om.duplicates.Inc()
			e.obs.Trace.Record(obs.EvDedupHit, 1, 0, 0)
			delete(e.appliedRed, a.ID) // eager copy resolved by the dup
			e.reply(a.ID, dedupReply(kind, ent))
			e.releaseQueries(a.ID)
			return
		}
	}

	if e.appliedRed[a.ID] {
		// Relaxed action already applied (and answered) while red.
		delete(e.appliedRed, a.ID)
		if a.Client != "" {
			delete(e.eagerApplied, eagerKey(a.Client, a.ClientSeq))
			e.recordDedup(a.Client, a.ClientSeq, DedupEntry{GreenSeq: seq})
		}
		return
	}
	if a.Client != "" && e.eagerApplied[eagerKey(a.Client, a.ClientSeq)] {
		// A different copy of this key (another action id, same retry) was
		// applied eagerly here while red: this green copy fixes the global
		// position but must not re-apply the update.
		delete(e.eagerApplied, eagerKey(a.Client, a.ClientSeq))
		e.recordDedup(a.Client, a.ClientSeq, DedupEntry{GreenSeq: seq})
		e.reply(a.ID, Reply{GreenSeq: seq})
		e.releaseQueries(a.ID)
		return
	}
	var errStr string
	if len(a.Update) > 0 {
		if err := e.db.Apply(a.Update); err != nil {
			errStr = err.Error()
		}
	}
	r := Reply{GreenSeq: seq, Err: errStr}
	if errStr == "" && len(a.Query) > 0 {
		if res, qerr := e.db.QueryGreen(a.Query); qerr == nil {
			r.Result = res
		} else {
			r.Err = qerr.Error()
		}
	}
	if a.Client != "" {
		e.recordDedup(a.Client, a.ClientSeq, DedupEntry{GreenSeq: seq, Err: r.Err, Result: r.Result})
	}
	e.reply(a.ID, r)
	e.releaseQueries(a.ID)
}

// applyGreenBatch promotes a batch of delivered actions to green in
// batch order. Runs of "plain" update actions — no query to answer, no
// eager-applied or deduplicated copy to resolve, no reconfiguration —
// fuse into one applyGreenRun: one WAL record, one db.ApplyBatch under a
// single lock acquisition, replies and dedup entries fanned back out per
// action. Any action needing the full per-action machinery flushes the
// pending run first and goes through applyGreen, so the observable order
// is exactly the sequential one.
func (e *Engine) applyGreenBatch(acts []types.Action) {
	var run []types.Action
	runKeys := make(map[string]bool)
	flush := func() {
		if len(run) == 0 {
			return
		}
		e.applyGreenRun(run)
		run = run[:0]
		clear(runKeys)
	}
	for _, a := range acts {
		if !e.queue.has(a.ID) || e.queue.isGreen(a.ID) {
			continue // stale duplicate below the red cut, or already green
		}
		if e.plainGreen(a, runKeys) {
			if a.Client != "" {
				runKeys[eagerKey(a.Client, a.ClientSeq)] = true
			}
			run = append(run, a)
			continue
		}
		flush()
		e.applyGreen(a)
	}
	flush()
}

// plainGreen reports whether a green promotion of a can take the fused
// path: a pure update whose apply, dedup record, and reply need no state
// from the per-action branches of applyGreen. runKeys excludes a second
// copy of an idempotency key already fused in the current run — it must
// observe the first copy's dedup entry, so it takes the slow path after
// a flush.
func (e *Engine) plainGreen(a types.Action, runKeys map[string]bool) bool {
	if a.Type != types.ActionUpdate || len(a.Update) == 0 || len(a.Query) > 0 {
		return false
	}
	if e.appliedRed[a.ID] {
		return false
	}
	if a.Client != "" {
		k := eagerKey(a.Client, a.ClientSeq)
		if runKeys[k] || e.eagerApplied[k] {
			return false
		}
		if kind, _ := e.dedupLookup(a.Client, a.ClientSeq); kind != dedupFresh {
			return false
		}
	}
	return true
}

// applyGreenRun is the fused form of applyGreen for a run of plain
// updates: promote all, ONE green WAL record, ONE history/watcher pass,
// ONE db.ApplyBatchParallel — the dependency-aware scheduler overlaps
// non-conflicting updates across the worker pool while keeping the
// observable outcome identical to sequential total-order apply — then
// per-action replies, dedup entries, and query releases fan back out.
func (e *Engine) applyGreenRun(run []types.Action) {
	n := 0
	seqs := make([]uint64, len(run))
	updates := make([][]byte, len(run))
	ids := make([]types.ActionID, len(run))
	for _, a := range run {
		seq, err := e.queue.promote(a.ID)
		if err != nil {
			continue
		}
		run[n], seqs[n], updates[n], ids[n] = a, seq, a.Update, a.ID
		n++
	}
	if n == 0 {
		return
	}
	run, seqs, updates, ids = run[:n], seqs[:n], updates[:n], ids[:n]
	e.om.applied.Add(uint64(n))
	if n == 1 {
		e.appendLog(logRecord{T: recGreen, ID: &ids[0], GreenSeq: seqs[0]})
	} else {
		e.appendLog(logRecord{T: recGreenBatch, IDs: ids})
	}
	e.histMu.Lock()
	e.history = append(e.history, ids...)
	e.histMu.Unlock()
	e.notifyWatchers()
	e.greenKnown[e.id] = e.queue.greenCount()
	for _, a := range run {
		if a.ID.Index > e.orderedIdx[a.ID.Server] {
			e.orderedIdx[a.ID.Server] = a.ID.Index
		}
	}
	errs := e.db.ApplyBatchParallel(updates)
	for i, a := range run {
		var errStr string
		if errs[i] != nil {
			errStr = errs[i].Error()
		}
		if a.Client != "" {
			delete(e.inflight, inflightKey{a.Client, a.ClientSeq})
			e.recordDedup(a.Client, a.ClientSeq, DedupEntry{GreenSeq: seqs[i], Err: errStr})
		}
		e.reply(a.ID, Reply{GreenSeq: seqs[i], Err: errStr})
		e.releaseQueries(a.ID)
	}
}

// releaseQueries answers fast-path queries that were waiting for a local
// action to apply, and clears the pending marker when the last local
// action has landed.
func (e *Engine) releaseQueries(id types.ActionID) {
	if id.Server != e.id {
		return
	}
	if waiting, ok := e.queryWait[id]; ok {
		delete(e.queryWait, id)
		for _, req := range waiting {
			e.answerQuery(req)
		}
	}
	if e.lastLocalPending == id {
		e.lastLocalPending = types.ActionID{}
	}
}

// rebuildDirtyOverlay recomputes the dirty view from the current red zone
// (after exchanges change the red set).
func (e *Engine) rebuildDirtyOverlay() {
	e.db.ResetDirty()
	for _, a := range e.queue.reds() {
		if a.Type == types.ActionUpdate && a.Semantics == types.SemStrict && len(a.Update) > 0 {
			if !e.appliedRed[a.ID] {
				_ = e.db.ApplyDirty(a.Update)
			}
		}
	}
}

// collectWhite discards actions known green at every server in the
// replica set (paper: white actions can be discarded).
func (e *Engine) collectWhite() {
	min := e.queue.greenCount()
	for s := range e.serverSet {
		if v := e.greenKnown[s]; v < min {
			min = v
		}
	}
	e.queue.discardWhite(min)
}
