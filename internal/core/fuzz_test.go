package core

import (
	"fmt"
	"math/rand"
	"testing"

	"evsdb/internal/db"
	"evsdb/internal/types"
)

// TestEngineRandomEventSequences drives a single engine with long random
// — but EVS-contract-respecting — event sequences and checks structural
// invariants after every event:
//
//   - the engine never panics and never regresses its green count;
//   - green actions stay FIFO per creator (Theorem 2 locally);
//   - the red cut never runs behind the green knowledge.
//
// The generator models three peers plus the engine itself: regular
// configurations over random subsets (engine always included), a
// transitional configuration before every new regular one, state messages
// for the current configuration from all members, CPC messages, and
// actions with per-creator FIFO indexes.
func TestEngineRandomEventSequences(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			servers := []string{"a", "b", "c", "d"}
			e, gc, _ := testEngine(t, "a", servers...)

			nextIdx := map[string]uint64{}
			confCounter := uint64(0)
			inRegular := false // a regular conf delivered since last trans

			newConf := func() types.Configuration {
				confCounter++
				members := []string{"a"}
				for _, s := range servers[1:] {
					if rng.Intn(2) == 0 {
						members = append(members, s)
					}
				}
				return conf(confCounter, members...)
			}
			cur := newConf()

			deliverStates := func() {
				// The engine's own state message comes back plus peers'.
				var mine *stateMsg
				for _, m := range gc.take() {
					if m.Kind == emState {
						mine = m.State
					}
				}
				if mine != nil {
					e.onStateMsg(*mine)
				}
				for _, m := range cur.Members {
					if m == e.id {
						continue
					}
					e.onStateMsg(stateMsg{
						Server: m, Conf: cur.ID,
						RedCut: map[types.ServerID]uint64{}, Prim: e.prim,
					})
				}
			}

			greenPerCreator := map[types.ServerID]uint64{}
			check := func(step int, what string) {
				t.Helper()
				// Green history FIFO per creator and monotone.
				seen := map[types.ServerID]uint64{}
				for _, id := range e.history {
					if id.Index <= seen[id.Server] {
						t.Fatalf("step %d (%s): green FIFO violated for %s: %d after %d",
							step, what, id.Server, id.Index, seen[id.Server])
					}
					seen[id.Server] = id.Index
				}
				for s, n := range seen {
					if n < greenPerCreator[s] {
						t.Fatalf("step %d (%s): green knowledge regressed for %s", step, what, s)
					}
					greenPerCreator[s] = n
				}
				// The red cut covers everything ordered.
				for s, n := range seen {
					if e.redCut[s] < n {
						t.Fatalf("step %d (%s): redCut[%s]=%d < greens %d",
							step, what, s, e.redCut[s], n)
					}
				}
			}

			e.onRegConf(cur)
			inRegular = true
			deliverStates()

			for step := 0; step < 400; step++ {
				var what string
				switch rng.Intn(10) {
				case 0, 1: // view change: trans conf then a new regular conf
					if inRegular {
						e.onTransConf(transConf(cur, "a"))
						inRegular = false
						what = "trans-conf"
					} else {
						cur = newConf()
						e.onRegConf(cur)
						inRegular = true
						deliverStates()
						what = "reg-conf"
					}
				case 2: // CPC from a random member
					m := cur.Members[rng.Intn(len(cur.Members))]
					e.onCPC(cpcMsg{Server: m, Conf: cur.ID})
					what = "cpc"
				case 3: // client submit
					e.handleSubmit(submitReq{
						action: types.Action{Type: types.ActionUpdate,
							Update: db.EncodeUpdate(db.Set("k", "v"))},
						ch: make(chan Reply, 1),
					})
					what = "submit"
					// Self-generated actions come back through the group;
					// deliver anything the engine multicast.
					for _, m := range gc.take() {
						if m.Kind == emAction {
							e.onAction(*m.Action)
						}
					}
				default: // a peer's action, FIFO per creator
					s := servers[1+rng.Intn(3)]
					nextIdx[s]++
					e.onAction(types.Action{
						ID:   types.ActionID{Server: types.ServerID(s), Index: nextIdx[s]},
						Type: types.ActionUpdate,
						Update: db.EncodeUpdate(
							db.Set(fmt.Sprintf("%s-%d", s, nextIdx[s]), "v")),
					})
					what = "peer-action"
				}
				check(step, what)
			}
		})
	}
}
