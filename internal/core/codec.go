package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"evsdb/internal/evs"
	"evsdb/internal/types"
)

// Engine-message wire format, version 1.
//
// Every frame starts with a three-byte header:
//
//	[0] engineMagic — distinguishes engine frames from foreign traffic
//	[1] codec version — mixed-version frames fail loudly at decode
//	    instead of being mis-parsed
//	[2] message kind
//
// Hot-path kinds (emAction, emBatch, emRetrans — every ordered action
// pays one of these per hop) use a hand-rolled little-endian binary body:
// the JSON codec the engine started with dominated the submit path's CPU
// and allocation profile. Rare kinds (emState, emCPC, emSnapshot — one
// per view change or catch-up) keep JSON bodies behind the same header:
// they carry maps and nested snapshots where JSON's flexibility matters
// more than its cost.
const (
	engineMagic   = 0xEC
	engineCodecV1 = 1
)

// encBufs pools encode buffers for the multicast hot path. Safe because
// every GroupCom implementation copies (or fully consumes) the payload
// before Multicast returns, and decodeAction copies byte slices out of
// the frame rather than aliasing them.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// multicastMsg encodes m into a pooled buffer and multicasts it with
// Safe delivery (every engine message is Safe).
func multicastMsg(gc GroupCom, m engineMsg) error {
	bp := encBufs.Get().(*[]byte)
	buf := appendEngineMsg((*bp)[:0], m)
	err := gc.Multicast(buf, evs.Safe)
	*bp = buf[:0]
	encBufs.Put(bp)
	return err
}

func putU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }
func putU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func putU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func putStr(buf []byte, s string) []byte {
	buf = putU16(buf, uint16(len(s)))
	return append(buf, s...)
}

func getStr(buf []byte) (string, []byte, bool) {
	if len(buf) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, false
	}
	return string(buf[:n]), buf[n:], true
}

// putBlob appends a u32-length-prefixed byte slice (nil and empty both
// encode as length 0 and decode as nil, matching the JSON codec's
// omitempty collapse).
func putBlob(buf []byte, b []byte) []byte {
	buf = putU32(buf, uint32(len(b)))
	return append(buf, b...)
}

// getBlob copies the blob out of the frame: decoded actions outlive the
// (possibly pooled or transport-owned) frame buffer.
func getBlob(buf []byte) ([]byte, []byte, bool) {
	if len(buf) < 4 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return nil, nil, false
	}
	if n == 0 {
		return nil, buf, true
	}
	return append([]byte(nil), buf[:n]...), buf[n:], true
}

// appendAction appends the binary encoding of one action.
func appendAction(buf []byte, a types.Action) []byte {
	buf = putStr(buf, string(a.ID.Server))
	buf = putU64(buf, a.ID.Index)
	buf = append(buf, byte(a.Type), byte(a.Semantics))
	buf = putU64(buf, a.GreenLine)
	buf = putStr(buf, a.Client)
	buf = putU64(buf, a.ClientSeq)
	buf = putBlob(buf, a.Query)
	buf = putBlob(buf, a.Update)
	buf = putStr(buf, string(a.Target))
	return putStr(buf, a.Proc)
}

// actionSize returns the exact encoded size of an action, so batch
// encodes can preallocate once.
func actionSize(a types.Action) int {
	return 2 + len(a.ID.Server) + 8 + 1 + 1 + 8 +
		2 + len(a.Client) + 8 +
		4 + len(a.Query) + 4 + len(a.Update) +
		2 + len(a.Target) + 2 + len(a.Proc)
}

func getAction(buf []byte) (types.Action, []byte, bool) {
	var a types.Action
	var s string
	var ok bool
	if s, buf, ok = getStr(buf); !ok {
		return a, nil, false
	}
	a.ID.Server = types.ServerID(s)
	if len(buf) < 8+1+1+8 {
		return a, nil, false
	}
	a.ID.Index = binary.LittleEndian.Uint64(buf)
	a.Type = types.ActionType(buf[8])
	a.Semantics = types.Semantics(buf[9])
	a.GreenLine = binary.LittleEndian.Uint64(buf[10:])
	buf = buf[18:]
	if a.Client, buf, ok = getStr(buf); !ok {
		return a, nil, false
	}
	if len(buf) < 8 {
		return a, nil, false
	}
	a.ClientSeq = binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if a.Query, buf, ok = getBlob(buf); !ok {
		return a, nil, false
	}
	if a.Update, buf, ok = getBlob(buf); !ok {
		return a, nil, false
	}
	if s, buf, ok = getStr(buf); !ok {
		return a, nil, false
	}
	a.Target = types.ServerID(s)
	if a.Proc, buf, ok = getStr(buf); !ok {
		return a, nil, false
	}
	return a, buf, true
}

// appendEngineMsg appends the full framed encoding of m to buf.
func appendEngineMsg(buf []byte, m engineMsg) []byte {
	buf = append(buf, engineMagic, engineCodecV1, byte(m.Kind))
	switch m.Kind {
	case emAction:
		return appendAction(buf, *m.Action)
	case emBatch:
		buf = putU32(buf, uint32(len(m.Batch)))
		for _, a := range m.Batch {
			buf = appendAction(buf, a)
		}
		return buf
	case emRetrans:
		r := m.Retrans
		var flags byte
		if r.Green {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = putU64(buf, r.GreenSeq)
		return appendAction(buf, r.Action)
	case emState, emCPC, emSnapshot:
		body, err := json.Marshal(m)
		if err != nil {
			panic(fmt.Sprintf("core: marshal engine message: %v", err))
		}
		return append(buf, body...)
	default:
		panic(fmt.Sprintf("core: encode unknown engine message kind %d", int(m.Kind)))
	}
}

// encodeEngineMsg returns the framed encoding of m in a fresh,
// exactly-sized buffer.
func encodeEngineMsg(m engineMsg) []byte {
	size := 3
	switch m.Kind {
	case emAction:
		size += actionSize(*m.Action)
	case emBatch:
		size += 4
		for _, a := range m.Batch {
			size += actionSize(a)
		}
	case emRetrans:
		size += 1 + 8 + actionSize(m.Retrans.Action)
	}
	return appendEngineMsg(make([]byte, 0, size), m)
}

func decodeEngineMsg(buf []byte) (engineMsg, error) {
	if len(buf) < 3 {
		return engineMsg{}, fmt.Errorf("core: engine frame too short (%d bytes)", len(buf))
	}
	if buf[0] != engineMagic {
		return engineMsg{}, fmt.Errorf("core: not an engine frame (magic 0x%02x)", buf[0])
	}
	if buf[1] != engineCodecV1 {
		// Loud, specific failure: a mixed-version cluster must surface the
		// incompatibility instead of mis-parsing the frame.
		return engineMsg{}, fmt.Errorf("core: engine codec version mismatch: frame v%d, this node speaks v%d",
			buf[1], engineCodecV1)
	}
	kind := engineMsgKind(buf[2])
	rest := buf[3:]
	bad := func() (engineMsg, error) {
		return engineMsg{}, fmt.Errorf("core: truncated engine frame (kind %d)", int(kind))
	}
	switch kind {
	case emAction:
		a, rest, ok := getAction(rest)
		if !ok || len(rest) != 0 {
			return bad()
		}
		return engineMsg{Kind: emAction, Action: &a}, nil
	case emBatch:
		if len(rest) < 4 {
			return bad()
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		// The smallest action encodes to 42 bytes; a count beyond that is
		// a corrupt frame, not an allocation request.
		if n > len(rest)/42+1 {
			return bad()
		}
		batch := make([]types.Action, 0, n)
		for i := 0; i < n; i++ {
			var a types.Action
			var ok bool
			if a, rest, ok = getAction(rest); !ok {
				return bad()
			}
			batch = append(batch, a)
		}
		if len(rest) != 0 {
			return bad()
		}
		return engineMsg{Kind: emBatch, Batch: batch}, nil
	case emRetrans:
		if len(rest) < 9 {
			return bad()
		}
		r := retransMsg{Green: rest[0]&1 != 0, GreenSeq: binary.LittleEndian.Uint64(rest[1:])}
		var ok bool
		if r.Action, rest, ok = getAction(rest[9:]); !ok || len(rest) != 0 {
			return bad()
		}
		return engineMsg{Kind: emRetrans, Retrans: &r}, nil
	case emState, emCPC, emSnapshot:
		var m engineMsg
		if err := json.Unmarshal(rest, &m); err != nil {
			return engineMsg{}, fmt.Errorf("core: unmarshal engine message: %w", err)
		}
		m.Kind = kind
		return m, nil
	default:
		return engineMsg{}, fmt.Errorf("core: unknown engine message kind %d", int(kind))
	}
}

// Legacy JSON codec, retained for the micro-benchmarks and the fuzz
// cross-check against the binary path (it was the v0 wire format; new
// frames never use it).
func encodeEngineMsgJSON(m engineMsg) []byte {
	buf, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("core: marshal engine message: %v", err))
	}
	return buf
}

func decodeEngineMsgJSON(buf []byte) (engineMsg, error) {
	var m engineMsg
	if err := json.Unmarshal(buf, &m); err != nil {
		return engineMsg{}, fmt.Errorf("core: unmarshal engine message: %w", err)
	}
	return m, nil
}
