package core

import (
	"testing"
	"time"

	"evsdb/internal/db"
	"evsdb/internal/types"
)

// runToPrimWithActions builds an engine that has ordered n green actions
// in a primary spanning all servers (the peers are simulated).
func runToPrimWithActions(t *testing.T, id string, servers []string, n int) (*Engine, *fakeGC) {
	t.Helper()
	e, gc, _ := testEngine(t, id, servers...)
	exchangeToPrim(t, e, gc, conf(1, servers...), nil)
	for i := 1; i <= n; i++ {
		e.onAction(types.Action{
			ID:   types.ActionID{Server: types.ServerID(id), Index: uint64(i)},
			Type: types.ActionUpdate,
			Update: db.EncodeUpdate(
				db.Set("k", "v")),
		})
	}
	gc.take() // discard install-era traffic
	return e, gc
}

// TestExchangeRetransmitsGreensToStalePeer runs the full exchange flow
// between an up-to-date engine and a stale one: state messages both ways,
// the retransmission share captured from the updated engine and fed to
// the stale one, which must equalize and follow into Construct.
func TestExchangeRetransmitsGreensToStalePeer(t *testing.T) {
	servers := []string{"a", "b"}
	adv, advGC := runToPrimWithActions(t, "a", servers, 5)

	// The stale engine "b" never saw anything; its prim is the bootstrap.
	stale, staleGC, _ := testEngine(t, "b", servers...)

	// Both see the merge configuration.
	c2 := conf(2, "a", "b")
	adv.onRegConf(c2)
	stale.onRegConf(c2)

	var advState, staleState *stateMsg
	for _, m := range advGC.take() {
		if m.Kind == emState {
			advState = m.State
		}
	}
	for _, m := range staleGC.take() {
		if m.Kind == emState {
			staleState = m.State
		}
	}
	if advState == nil || staleState == nil {
		t.Fatal("missing state messages")
	}
	if advState.GreenCount != 5 || staleState.GreenCount != 0 {
		t.Fatalf("green counts: %d vs %d", advState.GreenCount, staleState.GreenCount)
	}

	// Deliver both state messages to both engines (total order).
	for _, e := range []*Engine{adv, stale} {
		e.onStateMsg(*advState)
		e.onStateMsg(*staleState)
	}
	// adv computed the plan and multicast its retransmission share.
	var retrans []retransMsg
	var advCPC *cpcMsg
	for _, m := range advGC.take() {
		switch m.Kind {
		case emRetrans:
			retrans = append(retrans, *m.Retrans)
		case emCPC:
			advCPC = m.CPC
		}
	}
	// The plan covers greens by position AND red ranges by creator index
	// (receivers are idempotent); exactly 5 green-tagged retransmissions
	// must appear, in order.
	var greens []retransMsg
	for _, r := range retrans {
		if r.Green {
			greens = append(greens, r)
		}
	}
	if len(greens) != 5 {
		t.Fatalf("retransmitted %d green actions, want 5 (total %d)", len(greens), len(retrans))
	}
	for i, r := range greens {
		if r.GreenSeq != uint64(i+1) {
			t.Fatalf("green retrans[%d] = %+v", i, r)
		}
	}
	if adv.st != Construct || advCPC == nil {
		t.Fatalf("adv state %v (cpc %v)", adv.st, advCPC)
	}

	// Feed the retransmissions to the stale engine: it equalizes and
	// reaches Construct, emitting its own CPC.
	for _, r := range retrans {
		stale.onRetrans(r)
	}
	if stale.queue.greenCount() != 5 {
		t.Fatalf("stale green count %d", stale.queue.greenCount())
	}
	if stale.st != Construct {
		t.Fatalf("stale state %v", stale.st)
	}
	var staleCPC *cpcMsg
	for _, m := range staleGC.take() {
		if m.Kind == emCPC {
			staleCPC = m.CPC
		}
	}
	if staleCPC == nil {
		t.Fatal("stale engine never sent its CPC")
	}

	// Complete installation at both; their green orders must agree.
	for _, e := range []*Engine{adv, stale} {
		e.onCPC(*advCPC)
		e.onCPC(*staleCPC)
		if e.st != RegPrim {
			t.Fatalf("%s: state %v", e.id, e.st)
		}
	}
	if adv.queue.greenCount() != stale.queue.greenCount() {
		t.Fatalf("green counts diverge: %d vs %d", adv.queue.greenCount(), stale.queue.greenCount())
	}
	for i := uint64(1); i <= adv.queue.greenCount(); i++ {
		x, _ := adv.queue.greenAt(i)
		y, _ := stale.queue.greenAt(i)
		if x.ID != y.ID {
			t.Fatalf("green order diverges at %d: %v vs %v", i, x.ID, y.ID)
		}
	}
}

// TestGreenRetransOutOfOrderIsBuffered delivers green retransmissions out
// of order; the engine must buffer and apply them in sequence.
func TestGreenRetransOutOfOrderIsBuffered(t *testing.T) {
	servers := []string{"a", "b"}
	adv, advGC := runToPrimWithActions(t, "a", servers, 3)
	_ = advGC

	stale, staleGC, _ := testEngine(t, "b", servers...)
	c2 := conf(2, "a", "b")
	stale.onRegConf(c2)
	var staleState *stateMsg
	for _, m := range staleGC.take() {
		if m.Kind == emState {
			staleState = m.State
		}
	}
	advState := adv.buildStateMsg()
	advState.Conf = c2.ID
	stale.onStateMsg(advState)
	stale.onStateMsg(*staleState)

	var msgs []retransMsg
	for i := uint64(1); i <= 3; i++ {
		a, _ := adv.queue.greenAt(i)
		msgs = append(msgs, retransMsg{Action: a, Green: true, GreenSeq: i})
	}
	// Reverse order: 3, 2, 1.
	stale.onRetrans(msgs[2])
	if stale.queue.greenCount() != 0 {
		t.Fatal("future green applied early")
	}
	stale.onRetrans(msgs[1])
	stale.onRetrans(msgs[0])
	if stale.queue.greenCount() != 3 {
		t.Fatalf("green count %d after drain", stale.queue.greenCount())
	}
}

// TestBufferedClientRequestsFlushAfterExchange: requests submitted during
// an exchange are buffered and generated together once the engine settles
// (paper Handle_buff_requests).
func TestBufferedClientRequestsFlushAfterExchange(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	e.onRegConf(c1)
	// Mid-exchange: submissions buffer.
	for i := 0; i < 3; i++ {
		e.handleSubmit(submitReq{
			action: types.Action{Type: types.ActionUpdate, Update: db.EncodeUpdate(db.Set("x", "y"))},
			ch:     make(chan Reply, 1),
		})
	}
	if len(e.buffered) != 3 {
		t.Fatalf("buffered %d", len(e.buffered))
	}
	gc.take()
	// Finish the exchange without quorum (1 of 3 responding... supply all
	// states so it settles to NonPrim is impossible here — with all three
	// states and bootstrap prim {a,b,c}, a 3-member conf has quorum. Use
	// the full path and verify the flush happens on RegPrim entry.
	var mine *stateMsg
	e.onStateMsg(func() stateMsg {
		s := e.buildStateMsg()
		return s
	}())
	for _, peer := range []types.ServerID{"b", "c"} {
		e.onStateMsg(stateMsg{Server: peer, Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	}
	_ = mine
	if e.st != Construct {
		t.Fatalf("state %v", e.st)
	}
	// Requests remain buffered through Construct.
	if len(e.buffered) != 3 {
		t.Fatalf("buffered %d in Construct", len(e.buffered))
	}
	for _, m := range []string{"a", "b", "c"} {
		e.onCPC(cpcMsg{Server: types.ServerID(m), Conf: c1.ID})
	}
	if e.st != RegPrim {
		t.Fatalf("state %v", e.st)
	}
	if len(e.buffered) != 0 {
		t.Fatalf("buffered %d after install", len(e.buffered))
	}
	if e.actionIndex != 3 {
		t.Fatalf("actionIndex %d", e.actionIndex)
	}
	// All three actions went to the ongoing queue awaiting delivery.
	if len(e.ongoing) != 3 {
		t.Fatalf("ongoing %d", len(e.ongoing))
	}
}

// TestJoinLeaveHandlersDirect drives the § 5.1 handlers synchronously.
func TestJoinLeaveHandlersDirect(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	e.onAction(types.Action{ID: types.ActionID{Server: "a", Index: 1}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("seed", "1"))})
	e.actionIndex = 1
	gc.take()

	// Join request: the engine creates a PERSISTENT_JOIN action.
	ch := make(chan joinResp, 1)
	e.handleJoinRequest(joinReq{joiner: "z", ch: ch})
	msgs := gc.take()
	var joinAct *types.Action
	for _, m := range msgs {
		if m.Kind == emAction && m.Action.Type == types.ActionJoin {
			joinAct = m.Action
		}
	}
	if joinAct == nil || joinAct.Target != "z" {
		t.Fatalf("no join action: %+v", msgs)
	}
	// Deliver it (singleton primary: immediately green).
	e.onAction(*joinAct)
	select {
	case resp := <-ch:
		if resp.err != nil {
			t.Fatal(resp.err)
		}
		if resp.snap.GreenCount != 2 {
			t.Fatalf("snapshot green count %d", resp.snap.GreenCount)
		}
		if !containsServer(resp.snap.Servers, "z") || !containsServer(resp.snap.Servers, "a") {
			t.Fatalf("snapshot servers %v", resp.snap.Servers)
		}
	default:
		t.Fatal("join waiter not fulfilled")
	}
	if !e.serverSet["z"] {
		t.Fatal("server set missing joiner")
	}
	// A duplicate join request returns a snapshot immediately.
	ch2 := make(chan joinResp, 1)
	e.handleJoinRequest(joinReq{joiner: "z", ch: ch2})
	select {
	case resp := <-ch2:
		if resp.err != nil || resp.snap == nil {
			t.Fatalf("duplicate join: %+v", resp)
		}
	default:
		t.Fatal("duplicate join not answered immediately")
	}

	// Leave: the engine orders a PERSISTENT_LEAVE for itself.
	errCh := make(chan error, 1)
	e.handleLeave(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	var leaveAct *types.Action
	for _, m := range gc.take() {
		if m.Kind == emAction && m.Action.Type == types.ActionLeave {
			leaveAct = m.Action
		}
	}
	if leaveAct == nil || leaveAct.Target != "a" {
		t.Fatal("no leave action generated")
	}
	e.onAction(*leaveAct)
	if !e.left {
		t.Fatal("engine did not mark itself departed")
	}
	if e.serverSet["a"] {
		t.Fatal("server set still contains the departed replica")
	}
}

func containsServer(ids []types.ServerID, want types.ServerID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// TestQueryFastPath: strict query-only requests in the primary are
// answered without generating an ordered action (§ 6), but only after
// every earlier local action has applied.
func TestQueryFastPath(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	gc.take()

	// No pending local actions: the query answers immediately and sends
	// no group traffic.
	ch := make(chan Reply, 1)
	e.handleSubmit(submitReq{
		action: types.Action{Type: types.ActionQuery, Semantics: types.SemStrict, Query: db.Get("x")},
		ch:     ch,
	})
	select {
	case r := <-ch:
		if r.Err != "" || r.Result.Found {
			t.Fatalf("empty-db query: %+v", r)
		}
	default:
		t.Fatal("fast-path query did not answer immediately")
	}
	if msgs := gc.take(); len(msgs) != 0 {
		t.Fatalf("fast-path query generated traffic: %+v", msgs)
	}

	// With a pending local update, the query waits for it.
	updCh := make(chan Reply, 1)
	e.handleSubmit(submitReq{
		action: types.Action{Type: types.ActionUpdate, Update: db.EncodeUpdate(db.Set("x", "1"))},
		ch:     updCh,
	})
	qCh := make(chan Reply, 1)
	e.handleSubmit(submitReq{
		action: types.Action{Type: types.ActionQuery, Semantics: types.SemStrict, Query: db.Get("x")},
		ch:     qCh,
	})
	select {
	case <-qCh:
		t.Fatal("query answered before the pending update applied")
	default:
	}
	// Deliver the pending update (self-delivery through the group).
	deadline := 0
	for {
		msgs := gc.take()
		done := false
		for _, m := range msgs {
			if m.Kind == emAction {
				e.onAction(*m.Action)
				done = true
			}
		}
		if done {
			break
		}
		if deadline++; deadline > 100 {
			t.Fatal("update never multicast")
		}
		// The multicast happens on the sync writer; give it a moment.
		timeSleep()
	}
	select {
	case r := <-qCh:
		if r.Result.Value != "1" {
			t.Fatalf("query answer %+v does not reflect the earlier update", r)
		}
	default:
		t.Fatal("query not released after the update applied")
	}
}

func timeSleep() { time.Sleep(time.Millisecond) }
