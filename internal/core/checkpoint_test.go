package core

import (
	"encoding/json"
	"testing"

	"evsdb/internal/db"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	cfg := Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	for i := uint64(1); i <= 20; i++ {
		e.onAction(types.Action{
			ID: types.ActionID{Server: "a", Index: i}, Type: types.ActionUpdate,
			Update: db.EncodeUpdate(db.Add("n", 1)),
		})
	}
	e.actionIndex = 20
	before, _ := log.Records()

	if err := e.checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := log.Records()
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the log: %d -> %d", len(before), len(after))
	}

	cfg.GC = newFakeGC()
	r, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.recover(); err != nil {
		t.Fatal(err)
	}
	if r.queue.greenCount() != 20 {
		t.Fatalf("recovered greens %d", r.queue.greenCount())
	}
	if res, _ := r.db.QueryGreen(db.Get("n")); res.Value != "20" {
		t.Fatalf("recovered n=%q", res.Value)
	}
	if r.actionIndex != 20 {
		t.Fatalf("recovered actionIndex %d", r.actionIndex)
	}
	if r.prim.PrimIndex != e.prim.PrimIndex {
		t.Fatalf("recovered prim %+v vs %+v", r.prim, e.prim)
	}
}

func TestCheckpointPreservesRedsAndOngoing(t *testing.T) {
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	cfg := Config{ID: "a", Servers: []types.ServerID{"a", "b", "c"}, GC: gc, Log: log}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// In a minority component: actions stay red.
	e.onRegConf(conf(1, "a"))
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	if e.st != NonPrim {
		t.Fatalf("state %v (1 of 3 must not be primary)", e.st)
	}
	red := types.Action{ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("r", "1"))}
	e.onAction(red)
	// A locally created action that never came back from the group.
	e.handleSubmit(submitReq{
		action: types.Action{Type: types.ActionUpdate, Update: db.EncodeUpdate(db.Set("o", "1"))},
		ch:     make(chan Reply, 1),
	})
	if len(e.ongoing) != 1 {
		t.Fatalf("ongoing queue: %d entries", len(e.ongoing))
	}

	if err := e.checkpoint(); err != nil {
		t.Fatal(err)
	}
	cfg.GC = newFakeGC()
	r, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.recover(); err != nil {
		t.Fatal(err)
	}
	if !r.queue.has(red.ID) || r.queue.isGreen(red.ID) {
		t.Fatal("red action lost by compaction")
	}
	// The ongoing action was re-marked red on recovery (paper A.13).
	ongoingID := types.ActionID{Server: "a", Index: 1}
	if !r.queue.has(ongoingID) {
		t.Fatal("ongoing action lost by compaction")
	}
}

func TestCheckpointRequiresCompactableLog(t *testing.T) {
	gc := newFakeGC()
	log := nonCompactable{storage.NewMemLog(storage.Options{Policy: storage.SyncNone})}
	e, err := newEngine(Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded on a non-compactable log")
	}
}

// nonCompactable exposes only the base Log methods (embedding would
// promote Rewrite and defeat the test).
type nonCompactable struct{ inner *storage.MemLog }

func (n nonCompactable) Append(r []byte) error      { return n.inner.Append(r) }
func (n nonCompactable) Sync() error                { return n.inner.Sync() }
func (n nonCompactable) Records() ([][]byte, error) { return n.inner.Records() }
func (n nonCompactable) Close() error               { return n.inner.Close() }

func TestCheckpointRecordsDecode(t *testing.T) {
	// Guard against record-format drift: a checkpointed log contains only
	// known record types.
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	e, err := newEngine(Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	e.onAction(types.Action{ID: types.ActionID{Server: "a", Index: 1}, Type: types.ActionUpdate})
	if err := e.checkpoint(); err != nil {
		t.Fatal(err)
	}
	recs, _ := log.Records()
	for i, buf := range recs {
		var rec logRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		switch rec.T {
		case recCheckpoint, recRed, recOngoing, recState:
		default:
			t.Fatalf("record %d has unexpected type %q", i, rec.T)
		}
	}
}
