package core

import (
	"bytes"
	"testing"

	"evsdb/internal/types"
)

// FuzzDecodeEngineMsg exercises the engine-message envelope codec: any
// byte string a faulty peer multicasts must decode cleanly or error —
// never panic — valid messages must round-trip through the codec with
// their kind and payload presence intact, and the binary codec must
// agree with the retained JSON codec on every message it accepts.
func FuzzDecodeEngineMsg(f *testing.F) {
	f.Add(encodeEngineMsg(engineMsg{Kind: emAction, Action: &types.Action{
		ID:        types.ActionID{Server: "s00", Index: 3},
		Type:      types.ActionUpdate,
		Semantics: types.SemStrict,
		GreenLine: 7,
		Update:    []byte(`{"ops":[{"kind":"set","key":"a","value":"1"}]}`),
	}}))
	f.Add(encodeEngineMsg(engineMsg{Kind: emState, State: &stateMsg{
		Server: "s01", Conf: types.ConfID{Counter: 4, Proposer: "s00"}, Round: 1,
		RedCut:        map[types.ServerID]uint64{"s00": 2, "s01": 5},
		GreenCount:    9,
		BaseGreen:     3,
		GreenSeqKnown: map[types.ServerID]uint64{"s00": 9},
		AttemptIndex:  2,
		Prim:          PrimComponent{PrimIndex: 6, AttemptIndex: 1, Servers: []types.ServerID{"s00", "s01"}},
		Vuln:          Vulnerable{Status: true, PrimIndex: 6, AttemptIndex: 2, Set: []types.ServerID{"s00"}},
		Yellow:        Yellow{Status: true, Set: []types.ActionID{{Server: "s00", Index: 3}}},
	}}))
	f.Add(encodeEngineMsg(engineMsg{Kind: emCPC, CPC: &cpcMsg{
		Server: "s02", Conf: types.ConfID{Counter: 8, Proposer: "s02"},
	}}))
	f.Add(encodeEngineMsg(engineMsg{Kind: emRetrans, Retrans: &retransMsg{
		Action: types.Action{ID: types.ActionID{Server: "s01", Index: 1}},
		Green:  true, GreenSeq: 4,
	}}))
	f.Add(encodeEngineMsg(engineMsg{Kind: emSnapshot, Snap: &snapMsg{
		Server: "s00", Conf: types.ConfID{Counter: 2, Proposer: "s01"}, Round: 1,
		Snap: &JoinSnapshot{
			Servers:    []types.ServerID{"s00", "s01"},
			GreenCount: 12,
			OrderedIdx: map[types.ServerID]uint64{"s00": 7, "s01": 5},
			GreenKnown: map[types.ServerID]uint64{"s00": 12},
			Prim:       PrimComponent{PrimIndex: 3, Servers: []types.ServerID{"s00", "s01"}},
		},
	}}))
	f.Add(encodeEngineMsg(engineMsg{Kind: emBatch, Batch: []types.Action{
		{
			ID:        types.ActionID{Server: "s00", Index: 4},
			Type:      types.ActionUpdate,
			Semantics: types.SemStrict,
			GreenLine: 7,
			Client:    "c1",
			ClientSeq: 9,
			Update:    []byte(`{"ops":[{"kind":"set","key":"a","value":"1"}]}`),
		},
		{
			ID:        types.ActionID{Server: "s00", Index: 5},
			Type:      types.ActionUpdate,
			Semantics: types.SemCommutative,
			GreenLine: 7,
			Update:    []byte(`{"ops":[{"kind":"set","key":"b","value":"2"}]}`),
			Query:     []byte("b"),
		},
	}}))
	f.Add([]byte(`{"kind":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeEngineMsg(data)
		if err != nil {
			return
		}
		again, err := decodeEngineMsg(encodeEngineMsg(m))
		if err != nil {
			t.Fatalf("re-decode of a valid message failed: %v", err)
		}
		if again.Kind != m.Kind {
			t.Fatalf("kind changed across round-trip: %v -> %v", m.Kind, again.Kind)
		}
		if (m.Action == nil) != (again.Action == nil) ||
			(m.State == nil) != (again.State == nil) ||
			(m.CPC == nil) != (again.CPC == nil) ||
			(m.Retrans == nil) != (again.Retrans == nil) ||
			(m.Snap == nil) != (again.Snap == nil) ||
			len(m.Batch) != len(again.Batch) {
			t.Fatal("payload presence changed across round-trip")
		}

		// Cross-decode: the legacy JSON codec must accept the same message
		// and agree on its contents. This pins the binary codec's semantics
		// to the codec it replaced.
		jm, err := decodeEngineMsgJSON(encodeEngineMsgJSON(m))
		if err != nil {
			t.Fatalf("JSON cross-decode failed: %v", err)
		}
		if jm.Kind != m.Kind {
			t.Fatalf("JSON codec disagrees on kind: %v vs %v", m.Kind, jm.Kind)
		}
		if m.Action != nil {
			requireSameAction(t, *m.Action, *jm.Action)
		}
		if len(m.Batch) > 0 {
			if len(jm.Batch) != len(m.Batch) {
				t.Fatalf("JSON codec disagrees on batch size: %d vs %d", len(m.Batch), len(jm.Batch))
			}
			for i := range m.Batch {
				requireSameAction(t, m.Batch[i], jm.Batch[i])
			}
		}
		if m.Retrans != nil {
			requireSameAction(t, m.Retrans.Action, jm.Retrans.Action)
			if jm.Retrans.Green != m.Retrans.Green || jm.Retrans.GreenSeq != m.Retrans.GreenSeq {
				t.Fatal("JSON codec disagrees on retrans ordering fields")
			}
		}
	})
}

// requireSameAction checks the fields both codecs carry for an action.
func requireSameAction(t *testing.T, a, b types.Action) {
	t.Helper()
	if a.ID != b.ID || a.Type != b.Type || a.Semantics != b.Semantics ||
		a.GreenLine != b.GreenLine || a.Client != b.Client || a.ClientSeq != b.ClientSeq ||
		!bytes.Equal(a.Update, b.Update) || !bytes.Equal(a.Query, b.Query) {
		t.Fatalf("codecs disagree on action contents:\n  bin:  %+v\n  json: %+v", a, b)
	}
}
