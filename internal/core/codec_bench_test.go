package core

import (
	"testing"

	"evsdb/internal/types"
)

// The benchmarks compare the binary engine codec against the legacy JSON
// codec it replaced (kept in codec.go for exactly this comparison and
// the fuzz cross-check). Run with -benchmem to see the allocation win.

func benchBatch(n int) engineMsg {
	batch := make([]types.Action, n)
	for i := range batch {
		batch[i] = types.Action{
			ID:        types.ActionID{Server: "s03", Index: uint64(i + 1)},
			Type:      types.ActionUpdate,
			Semantics: types.SemStrict,
			GreenLine: 99,
			Client:    "client-7",
			ClientSeq: uint64(i),
			Update:    make([]byte, 200),
		}
	}
	return engineMsg{Kind: emBatch, Batch: batch}
}

func BenchmarkEncodeActionBinary(b *testing.B) {
	m := codecSpecimen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeEngineMsg(m)
	}
}

// BenchmarkEncodeActionPooled is the multicast hot path: encode into a
// pooled buffer (steady state: zero allocations).
func BenchmarkEncodeActionPooled(b *testing.B) {
	m := codecSpecimen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp := encBufs.Get().(*[]byte)
		buf := appendEngineMsg((*bp)[:0], m)
		*bp = buf[:0]
		encBufs.Put(bp)
	}
}

func BenchmarkEncodeActionJSON(b *testing.B) {
	m := codecSpecimen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeEngineMsgJSON(m)
	}
}

func BenchmarkDecodeActionBinary(b *testing.B) {
	frame := encodeEngineMsg(codecSpecimen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeEngineMsg(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeActionJSON(b *testing.B) {
	frame := encodeEngineMsgJSON(codecSpecimen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeEngineMsgJSON(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeBatch64 encodes a 64-action bundle — the emBatch frame
// one saturated submit window produces.
func BenchmarkEncodeBatch64(b *testing.B) {
	m := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeEngineMsg(m)
	}
}

func BenchmarkDecodeBatch64(b *testing.B) {
	frame := encodeEngineMsg(benchBatch(64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeEngineMsg(frame); err != nil {
			b.Fatal(err)
		}
	}
}
