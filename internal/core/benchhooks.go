package core

import (
	"testing"

	"evsdb/internal/types"
)

// codecSpecimen is a representative 200-byte keyed update action, the
// shape the submit hot path encodes per hop.
func codecSpecimen() engineMsg {
	return engineMsg{Kind: emAction, Action: &types.Action{
		ID:        types.ActionID{Server: "s03", Index: 4242},
		Type:      types.ActionUpdate,
		Semantics: types.SemStrict,
		GreenLine: 99,
		Client:    "client-7",
		ClientSeq: 41,
		Update:    make([]byte, 200),
	}}
}

// CodecAllocsPerOp measures allocations per encode and per decode of a
// representative action frame, for the binary engine codec (encode via
// the pooled path the multicast hot path uses) and for the legacy JSON
// codec it replaced. cmd/evsbench records the four numbers in its JSON
// output.
func CodecAllocsPerOp() (binEnc, binDec, jsonEnc, jsonDec float64) {
	m := codecSpecimen()
	frame := encodeEngineMsg(m)
	jsonFrame := encodeEngineMsgJSON(m)
	binEnc = testing.AllocsPerRun(200, func() {
		bp := encBufs.Get().(*[]byte)
		buf := appendEngineMsg((*bp)[:0], m)
		*bp = buf[:0]
		encBufs.Put(bp)
	})
	binDec = testing.AllocsPerRun(200, func() {
		if _, err := decodeEngineMsg(frame); err != nil {
			panic(err)
		}
	})
	jsonEnc = testing.AllocsPerRun(200, func() {
		_ = encodeEngineMsgJSON(m)
	})
	jsonDec = testing.AllocsPerRun(200, func() {
		if _, err := decodeEngineMsgJSON(jsonFrame); err != nil {
			panic(err)
		}
	})
	return binEnc, binDec, jsonEnc, jsonDec
}
