package core

import (
	"fmt"

	"evsdb/internal/types"
)

// JoinSnapshot is the state a joining replica restores before it starts
// executing the replication algorithm (paper CodeSegment 5.2): the
// database as of the PERSISTENT_JOIN action's global position, plus the
// engine metadata that position implies.
type JoinSnapshot struct {
	// DB is the database snapshot.
	DB []byte `json:"db"`
	// Servers is the replica set including the joiner.
	Servers []types.ServerID `json:"servers"`
	// GreenCount is the joiner's starting green line: the global position
	// the snapshot corresponds to.
	GreenCount uint64 `json:"greenCount"`
	// OrderedIdx seeds the joiner's red cut: for each creator, the
	// highest action index incorporated in the snapshot. Earlier actions
	// are "inherited" (Theorem 2's dynamic clause), never retransmitted.
	OrderedIdx map[types.ServerID]uint64 `json:"orderedIdx"`
	// GreenKnown seeds the joiner's green-line knowledge.
	GreenKnown map[types.ServerID]uint64 `json:"greenKnown"`
	// Prim is the last primary component known at the snapshot point.
	Prim PrimComponent `json:"prim"`
	// Clients is the replicated dedup table at the snapshot point. Like
	// the database it is a deterministic function of the green prefix, so
	// a restoring server adopts it wholesale.
	Clients map[string]*ClientSession `json:"clients,omitempty"`
}

// buildJoinSnapshot captures the current green state for a joiner.
func (e *Engine) buildJoinSnapshot() *JoinSnapshot {
	servers := make([]types.ServerID, 0, len(e.serverSet))
	for s := range e.serverSet {
		servers = append(servers, s)
	}
	types.SortServerIDs(servers)
	ordered := make(map[types.ServerID]uint64, len(e.orderedIdx))
	for s, v := range e.orderedIdx {
		ordered[s] = v
	}
	known := make(map[types.ServerID]uint64, len(e.greenKnown))
	for s, v := range e.greenKnown {
		known[s] = v
	}
	return &JoinSnapshot{
		DB:         e.db.Snapshot(),
		Servers:    servers,
		GreenCount: e.queue.greenCount(),
		OrderedIdx: ordered,
		GreenKnown: known,
		Prim: PrimComponent{
			PrimIndex:    e.prim.PrimIndex,
			AttemptIndex: e.prim.AttemptIndex,
			Servers:      append([]types.ServerID(nil), e.prim.Servers...),
		},
		Clients: cloneSessions(e.sessions),
	}
}

// restoreSnapshot initializes engine state from a join snapshot (also
// used by checkpoint replay).
func (e *Engine) restoreSnapshot(snap *JoinSnapshot) error {
	if err := e.db.Restore(snap.DB); err != nil {
		return fmt.Errorf("restore database: %w", err)
	}
	e.queue = newActionsQueue()
	e.queue.base = snap.GreenCount
	e.serverSet = make(map[types.ServerID]bool, len(snap.Servers))
	for _, s := range snap.Servers {
		e.serverSet[s] = true
	}
	e.redCut = make(map[types.ServerID]uint64, len(snap.OrderedIdx))
	e.orderedIdx = make(map[types.ServerID]uint64, len(snap.OrderedIdx))
	for s, v := range snap.OrderedIdx {
		e.redCut[s] = v
		e.orderedIdx[s] = v
	}
	e.greenKnown = make(map[types.ServerID]uint64, len(snap.GreenKnown))
	for s, v := range snap.GreenKnown {
		e.greenKnown[s] = v
	}
	e.greenKnown[e.id] = snap.GreenCount
	e.prim = snap.Prim
	e.sessions = make(map[string]*ClientSession, len(snap.Clients))
	for c, s := range snap.Clients {
		e.sessions[c] = s.clone()
	}
	// The green order below the snapshot point is inherited, not recorded:
	// the observable history restarts at the snapshot's green line.
	e.histMu.Lock()
	e.history = nil
	e.histBase = snap.GreenCount
	e.histMu.Unlock()
	return nil
}

// NewFromJoin assembles a replica that joins the running system from a
// snapshot obtained via RequestJoin on an existing member (paper
// CodeSegment 5.2): restore, set the green line to the join position,
// start in NonPrim, and begin executing the algorithm.
func NewFromJoin(cfg Config, snap *JoinSnapshot) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil join snapshot")
	}
	cfg.Recover = false
	if len(cfg.Servers) == 0 {
		cfg.Servers = snap.Servers
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.restoreSnapshot(snap); err != nil {
		return nil, err
	}
	// Persist the bootstrap state so a crash during catch-up recovers.
	e.appendLog(logRecord{T: recCheckpoint, Snap: snap})
	e.persistState()
	e.syncLog("join-bootstrap")
	go e.run()
	return e, nil
}

// applyJoin processes a green PERSISTENT_JOIN action (paper CodeSegment
// 5.1 MarkGreen lines 5–10).
func (e *Engine) applyJoin(a types.Action, seq uint64) {
	target := a.Target
	if target == "" {
		return
	}
	if !e.serverSet[target] {
		e.serverSet[target] = true
		// The joiner's green line is the join action itself: everything
		// before it is incorporated in the transferred database.
		e.greenKnown[target] = seq
	}
	e.reply(a.ID, Reply{GreenSeq: seq})
	e.releaseQueries(a.ID)
	if a.ID.Server == e.id {
		// This server is the joiner's representative: the snapshot is
		// taken exactly at the join action's position (paper line 9–10:
		// "start database transfer to joining site").
		snap := e.buildJoinSnapshot()
		for _, ch := range e.joinWaiters[target] {
			ch <- joinResp{snap: snap}
		}
		delete(e.joinWaiters, target)
	}
}

// applyLeave processes a green PERSISTENT_LEAVE action (paper CodeSegment
// 5.1 lines 11–13).
func (e *Engine) applyLeave(a types.Action) {
	target := a.Target
	if target == "" {
		return
	}
	if e.serverSet[target] {
		delete(e.serverSet, target)
		delete(e.greenKnown, target)
		// The red cut for the departed id is retained: it still guards
		// FIFO acceptance of any stray retransmissions of its actions.
	}
	e.reply(a.ID, Reply{})
	e.releaseQueries(a.ID)
	if target == e.id {
		e.left = true
		// Answer anything still pending; this replica is done.
		for id, chans := range e.pendingReply {
			for _, ch := range chans {
				ch <- Reply{Err: ErrLeft.Error(), Retryable: true}
			}
			delete(e.pendingReply, id)
		}
		e.inflight = make(map[inflightKey]types.ActionID)
	}
}

// handleJoinRequest implements the representative side of a join (paper
// CodeSegment 5.1 lines 16–21).
func (e *Engine) handleJoinRequest(req joinReq) {
	if e.left {
		req.ch <- joinResp{err: ErrLeft}
		return
	}
	switch e.st {
	case RegPrim, NonPrim:
		if e.serverSet[req.joiner] {
			// The join action is already ordered; transfer the current
			// state (any green point at or after the join works: the
			// joiner inherits strictly more).
			req.ch <- joinResp{snap: e.buildJoinSnapshot()}
			return
		}
		e.actionIndex++
		a := types.Action{
			ID:     types.ActionID{Server: e.id, Index: e.actionIndex},
			Type:   types.ActionJoin,
			Target: req.joiner,
		}
		a.GreenLine = e.queue.greenCount()
		e.ongoing[a.ID] = a
		e.appendLog(logRecord{T: recOngoing, Action: &a})
		e.syncLog("join")
		e.joinWaiters[req.joiner] = append(e.joinWaiters[req.joiner], req.ch)
		e.generate(a)
	default:
		e.pendingJoins = append(e.pendingJoins, req)
	}
}

// processPendingJoins retries joins deferred during an exchange.
func (e *Engine) processPendingJoins() {
	if len(e.pendingJoins) == 0 {
		return
	}
	pend := e.pendingJoins
	e.pendingJoins = nil
	for _, req := range pend {
		e.handleJoinRequest(req)
	}
}

// handleLeave starts this replica's permanent departure (paper CodeSegment
// 5.1 lines 22–24).
func (e *Engine) handleLeave(ch chan error) {
	if e.left {
		ch <- ErrLeft
		return
	}
	switch e.st {
	case RegPrim, NonPrim:
		e.actionIndex++
		a := types.Action{
			ID:     types.ActionID{Server: e.id, Index: e.actionIndex},
			Type:   types.ActionLeave,
			Target: e.id,
		}
		a.GreenLine = e.queue.greenCount()
		e.ongoing[a.ID] = a
		e.appendLog(logRecord{T: recOngoing, Action: &a})
		e.syncLog("leave")
		e.generate(a)
		ch <- nil
	default:
		ch <- fmt.Errorf("core: cannot leave during %v; retry", e.st)
	}
}
