package core

import (
	"sync"
	"testing"

	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// fakeGC records engine multicasts; tests drive the engine's handlers
// synchronously (the loop is never started), which makes the Appendix A
// state machine fully deterministic to test.
type fakeGC struct {
	mu   sync.Mutex
	sent []engineMsg
	ch   chan evs.Event
}

func newFakeGC() *fakeGC { return &fakeGC{ch: make(chan evs.Event)} }

func (f *fakeGC) Multicast(payload []byte, _ evs.ServiceLevel) error {
	m, err := decodeEngineMsg(payload)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.sent = append(f.sent, m)
	f.mu.Unlock()
	return nil
}

func (f *fakeGC) Events() <-chan evs.Event { return f.ch }

func (f *fakeGC) take() []engineMsg {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.sent
	f.sent = nil
	return out
}

// testEngine builds an unstarted engine whose handlers tests call
// directly.
func testEngine(t *testing.T, id string, servers ...string) (*Engine, *fakeGC, *storage.MemLog) {
	t.Helper()
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	ids := make([]types.ServerID, len(servers))
	for i, s := range servers {
		ids[i] = types.ServerID(s)
	}
	e, err := newEngine(Config{
		ID:      types.ServerID(id),
		Servers: ids,
		GC:      gc,
		Log:     log,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, gc, log
}

func conf(counter uint64, members ...string) types.Configuration {
	c := types.Configuration{ID: types.ConfID{Counter: counter, Proposer: types.ServerID(members[0])}}
	for _, m := range members {
		c.Members = append(c.Members, types.ServerID(m))
	}
	return c
}

func transConf(c types.Configuration, members ...string) types.Configuration {
	tc := types.Configuration{ID: c.ID, Transitional: true}
	for _, m := range members {
		tc.Members = append(tc.Members, types.ServerID(m))
	}
	return tc
}

// exchangeToPrim walks an engine through a full successful exchange for
// the given configuration, supplying the peers' state/CPC messages. Peer
// state messages are "empty" (no history) unless provided.
func exchangeToPrim(t *testing.T, e *Engine, gc *fakeGC, c types.Configuration, peerStates map[types.ServerID]stateMsg) {
	t.Helper()
	e.onRegConf(c)
	if e.st != ExchangeStates {
		t.Fatalf("after reg conf: %v", e.st)
	}
	// The engine multicast its own state message; feed it back plus peers'.
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	if mine == nil {
		t.Fatal("no state message generated")
	}
	e.onStateMsg(*mine)
	for _, member := range c.Members {
		if member == e.id {
			continue
		}
		s, ok := peerStates[member]
		if !ok {
			s = stateMsg{
				Server: member, Conf: c.ID,
				RedCut: map[types.ServerID]uint64{}, Prim: e.prim,
			}
		}
		e.onStateMsg(s)
	}
	if e.st != Construct {
		t.Fatalf("after states: %v (want Construct)", e.st)
	}
	// CPCs from everyone (regular configuration).
	for _, member := range c.Members {
		e.onCPC(cpcMsg{Server: member, Conf: c.ID})
	}
	if e.st != RegPrim {
		t.Fatalf("after CPCs: %v (want RegPrim)", e.st)
	}
}

func TestSingletonFormsPrimary(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	if e.prim.PrimIndex != 1 || len(e.prim.Servers) != 1 {
		t.Fatalf("prim after install: %+v", e.prim)
	}
	if e.vuln.Status {
		t.Log("vulnerable remains set during RegPrim (by design)")
	}
}

func TestGreenActionAppliesInRegPrim(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	a := types.Action{
		ID:     types.ActionID{Server: "a", Index: 1},
		Type:   types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("k", "v")),
	}
	e.onAction(a)
	if e.queue.greenCount() != 1 {
		t.Fatalf("green count %d", e.queue.greenCount())
	}
	res, err := e.db.QueryGreen(db.Get("k"))
	if err != nil || res.Value != "v" {
		t.Fatalf("db state: %v %+v", err, res)
	}
}

func TestTransPrimMarksYellowAndInstallPromotes(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b")
	c := conf(1, "a", "b")
	exchangeToPrim(t, e, gc, c, nil)

	// Transitional configuration: subsequent actions are yellow.
	e.onTransConf(transConf(c, "a"))
	if e.st != TransPrim {
		t.Fatalf("state %v", e.st)
	}
	a := types.Action{ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("y", "1"))}
	e.onAction(a)
	if len(e.yellow.Set) != 1 || e.yellow.Set[0] != a.ID {
		t.Fatalf("yellow set: %+v", e.yellow)
	}
	if e.queue.isGreen(a.ID) {
		t.Fatal("yellow action already green")
	}

	// New regular configuration (a alone): the exchange reports the
	// yellow set; with quorum (majority of {a,b} fails for {a}!) — so use
	// a 3-member initial set where {a,b} was the primary and {a} cannot
	// re-form. Here instead verify the RegConf transition bookkeeping.
	e.onRegConf(conf(2, "a"))
	if e.st != ExchangeStates {
		t.Fatalf("state %v", e.st)
	}
	if !e.yellow.Status {
		t.Fatal("yellow must be Valid after leaving TransPrim")
	}
	if e.vuln.Status {
		t.Fatal("vulnerable must be Invalid after a completed primary epoch")
	}
}

func TestYellowPromotedFirstOnInstall(t *testing.T) {
	// Two engines that were in the primary's transitional configuration
	// agree on the yellow order; install promotes yellows before reds.
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	exchangeToPrim(t, e, gc, c1, nil)

	e.onTransConf(transConf(c1, "a", "b"))
	y1 := types.Action{ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("order", "yellow-first"))}
	e.onAction(y1)

	// Next regular configuration: {a,b} — a majority of the last primary
	// {a,b,c}. Peer b reports the same yellow set.
	c2 := conf(2, "a", "b")
	e.onRegConf(c2)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	peer := *mine
	peer.Server = "b"
	e.onStateMsg(peer)
	if e.st != Construct {
		t.Fatalf("state %v, want Construct", e.st)
	}
	// A red action arrives from b before the CPCs complete? Not possible
	// in a real run; instead complete installation and check promotion.
	e.onCPC(cpcMsg{Server: "a", Conf: c2.ID})
	e.onCPC(cpcMsg{Server: "b", Conf: c2.ID})
	if e.st != RegPrim {
		t.Fatalf("state %v", e.st)
	}
	if !e.queue.isGreen(y1.ID) {
		t.Fatal("yellow action not green after install")
	}
	res, _ := e.db.QueryGreen(db.Get("order"))
	if res.Value != "yellow-first" {
		t.Fatalf("yellow action not applied: %+v", res)
	}
	if e.prim.PrimIndex != 2 {
		t.Fatalf("prim index %d", e.prim.PrimIndex)
	}
}

func TestConstructInterruptedNoThenRegConfClearsVulnerable(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	e.onRegConf(c1)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	for _, peer := range []types.ServerID{"b", "c"} {
		e.onStateMsg(stateMsg{Server: peer, Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	}
	if e.st != Construct || !e.vuln.Status {
		t.Fatalf("state %v vulnerable %v", e.st, e.vuln.Status)
	}

	// Interruption: transitional configuration before all CPCs.
	e.onCPC(cpcMsg{Server: "a", Conf: c1.ID})
	e.onTransConf(transConf(c1, "a", "b"))
	if e.st != No {
		t.Fatalf("state %v, want No", e.st)
	}
	// The new regular configuration without the remaining CPCs proves
	// nobody installed (§ 4.1 case 3): vulnerability dissolves.
	e.onRegConf(conf(2, "a", "b"))
	if e.vuln.Status {
		t.Fatal("vulnerable survived the No -> RegConf transition")
	}
	if e.st != ExchangeStates {
		t.Fatalf("state %v", e.st)
	}
}

func TestConstructInterruptedUnThenActionInstalls(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	e.onRegConf(c1)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	for _, peer := range []types.ServerID{"b", "c"} {
		e.onStateMsg(stateMsg{Server: peer, Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	}
	primBefore := e.prim.PrimIndex

	// Some CPCs in the regular configuration, the rest after the
	// transitional one: outcome unknown (Un).
	e.onCPC(cpcMsg{Server: "a", Conf: c1.ID})
	e.onTransConf(transConf(c1, "a", "b"))
	e.onCPC(cpcMsg{Server: "b", Conf: c1.ID})
	e.onCPC(cpcMsg{Server: "c", Conf: c1.ID})
	if e.st != Un {
		t.Fatalf("state %v, want Un", e.st)
	}
	if !e.vuln.Status {
		t.Fatal("must stay vulnerable in Un")
	}

	// An action delivered in Un proves some server installed and moved on
	// (paper transition 1b): install and join it in TransPrim.
	a := types.Action{ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate}
	e.onAction(a)
	if e.st != TransPrim {
		t.Fatalf("state %v, want TransPrim", e.st)
	}
	if e.prim.PrimIndex != primBefore+1 {
		t.Fatalf("prim index %d, want %d", e.prim.PrimIndex, primBefore+1)
	}
	if len(e.yellow.Set) != 1 || e.yellow.Set[0] != a.ID {
		t.Fatalf("action not yellow: %+v", e.yellow)
	}
}

func TestUnThenRegConfStaysVulnerable(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	e.onRegConf(c1)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	for _, peer := range []types.ServerID{"b", "c"} {
		e.onStateMsg(stateMsg{Server: peer, Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	}
	e.onCPC(cpcMsg{Server: "a", Conf: c1.ID})
	e.onTransConf(transConf(c1, "a", "b"))
	e.onCPC(cpcMsg{Server: "b", Conf: c1.ID})
	e.onCPC(cpcMsg{Server: "c", Conf: c1.ID})
	// The "?" transition: a regular configuration with no action seen.
	e.onRegConf(conf(2, "a", "b"))
	if !e.vuln.Status {
		t.Fatal("the ? transition must keep the server vulnerable")
	}
}

func TestVulnerablePeerBlocksQuorum(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c1 := conf(1, "a", "b", "c")
	e.onRegConf(c1)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	// Peer b reports a Valid vulnerability for an attempt whose set
	// includes an absent server d: rules 3/4 cannot dissolve it.
	e.onStateMsg(stateMsg{
		Server: "b", Conf: c1.ID, RedCut: map[types.ServerID]uint64{},
		Prim: e.prim,
		Vuln: Vulnerable{
			Status: true, PrimIndex: 0, AttemptIndex: 9,
			Set:  []types.ServerID{"b", "d"},
			Bits: map[types.ServerID]bool{"b": true},
		},
	})
	e.onStateMsg(stateMsg{Server: "c", Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	if e.st != NonPrim {
		t.Fatalf("state %v: vulnerable peer must block the primary", e.st)
	}
}

func TestVulnerabilityDissolvesWhenAttemptSetAccounted(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b")
	c1 := conf(1, "a", "b")
	e.onRegConf(c1)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	// Both a and b are vulnerable to the SAME attempt {a,b}; together
	// they account for the whole set, so the attempt provably failed and
	// the quorum proceeds (rule 4).
	v := Vulnerable{Status: true, PrimIndex: 0, AttemptIndex: 3,
		Set: []types.ServerID{"a", "b"}}
	ms := *mine
	ms.Vuln = v
	ms.Vuln.Bits = map[types.ServerID]bool{"a": true}
	e.vuln = ms.Vuln // align the engine's own record with its state msg
	e.onStateMsg(ms)
	peer := stateMsg{Server: "b", Conf: c1.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim,
		Vuln: Vulnerable{Status: true, PrimIndex: 0, AttemptIndex: 3,
			Set: []types.ServerID{"a", "b"}, Bits: map[types.ServerID]bool{"b": true}}}
	e.onStateMsg(peer)
	if e.st != Construct {
		t.Fatalf("state %v: mutually accounted vulnerability must dissolve", e.st)
	}
}

func TestRetransPlanAssignsHolders(t *testing.T) {
	e, _, _ := testEngine(t, "a", "a", "b", "c")
	e.conf = conf(5, "a", "b", "c")
	e.stateMsgs = map[types.ServerID]stateMsg{
		"a": {Server: "a", GreenCount: 10, BaseGreen: 0,
			RedCut: map[types.ServerID]uint64{"a": 4, "b": 2}},
		"b": {Server: "b", GreenCount: 7, BaseGreen: 0,
			RedCut: map[types.ServerID]uint64{"a": 4, "b": 5}},
		"c": {Server: "c", GreenCount: 10, BaseGreen: 6,
			RedCut: map[types.ServerID]uint64{"a": 1}},
	}
	plan := e.computeRetransPlan()
	if plan.greenTarget != 10 || plan.greensBlocked() {
		t.Fatalf("green target %d blocked=%v", plan.greenTarget, plan.greensBlocked())
	}
	// Positions 8..10: only "a" can serve below c's base+1? a has
	// GreenCount 10 and base 0, c has base 6 so c serves 7..10 too; the
	// max-green then lowest-id rule picks "a" for every position.
	for _, ch := range plan.greenChunks {
		if ch.holder != "a" {
			t.Fatalf("green chunk %+v not held by a", ch)
		}
	}
	// Red ranges: creator a needs 2..4 (holder a, ties to lowest id);
	// creator b needs 3..5 (holder b).
	foundA, foundB := false, false
	for _, rr := range plan.redRanges {
		switch rr.creator {
		case "a":
			foundA = true
			if rr.from != 2 || rr.to != 4 || rr.holder != "a" {
				t.Fatalf("red range for a: %+v", rr)
			}
		case "b":
			foundB = true
			if rr.from != 1 || rr.to != 5 || rr.holder != "b" {
				t.Fatalf("red range for b: %+v", rr)
			}
		}
	}
	if !foundA || !foundB {
		t.Fatalf("missing red ranges: %+v", plan.redRanges)
	}
}

func TestRetransPlanBlockedByWhiteHole(t *testing.T) {
	e, _, _ := testEngine(t, "a", "a", "b")
	e.conf = conf(5, "a", "b")
	// b needs greens 3..10 but every holder white-collected through 6:
	// positions 3..6 are unservable and the plan must refuse to equalize.
	e.stateMsgs = map[types.ServerID]stateMsg{
		"a": {Server: "a", GreenCount: 10, BaseGreen: 6, RedCut: map[types.ServerID]uint64{}},
		"b": {Server: "b", GreenCount: 2, BaseGreen: 0, RedCut: map[types.ServerID]uint64{}},
	}
	plan := e.computeRetransPlan()
	if !plan.greensBlocked() {
		t.Fatalf("plan should be blocked: %+v", plan)
	}
	if plan.greenTarget != 2 {
		t.Fatalf("green target %d, want 2", plan.greenTarget)
	}
}

func TestComputeKnowledgeAdoptsNewestPrimary(t *testing.T) {
	e, _, _ := testEngine(t, "a", "a", "b", "c")
	e.conf = conf(7, "a", "b", "c")
	newer := PrimComponent{PrimIndex: 5, AttemptIndex: 2, Servers: []types.ServerID{"b", "c"}}
	e.stateMsgs = map[types.ServerID]stateMsg{
		"a": {Server: "a", Prim: PrimComponent{PrimIndex: 3, Servers: []types.ServerID{"a", "b", "c"}}},
		"b": {Server: "b", Prim: newer, AttemptIndex: 4,
			Yellow: Yellow{Status: true, Set: []types.ActionID{{Server: "x", Index: 1}, {Server: "x", Index: 2}}}},
		"c": {Server: "c", Prim: newer,
			Yellow: Yellow{Status: true, Set: []types.ActionID{{Server: "x", Index: 2}}}},
	}
	e.computeKnowledge()
	if !e.prim.Equal(newer) {
		t.Fatalf("prim %+v", e.prim)
	}
	if e.attemptIndex != 4 {
		t.Fatalf("attemptIndex %d", e.attemptIndex)
	}
	// Yellow: the intersection of the valid group's sets.
	if !e.yellow.Status || len(e.yellow.Set) != 1 || e.yellow.Set[0] != (types.ActionID{Server: "x", Index: 2}) {
		t.Fatalf("yellow %+v", e.yellow)
	}
}

func TestRecoveryRestoresGreensAndOngoing(t *testing.T) {
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	cfg := Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	for i := uint64(1); i <= 3; i++ {
		e.onAction(types.Action{
			ID: types.ActionID{Server: "a", Index: i}, Type: types.ActionUpdate,
			Update: db.EncodeUpdate(db.Add("n", 1)),
		})
	}
	e.actionIndex = 3
	// A locally created action that never got delivered (crash before the
	// multicast reached anyone): recovery must re-mark it red.
	orphan := types.Action{ID: types.ActionID{Server: "a", Index: 4}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Add("n", 10))}
	e.appendLog(logRecord{T: recOngoing, Action: &orphan})
	e.syncLog("test")

	// Recover into a fresh engine on the same (surviving) log.
	cfg.GC = newFakeGC()
	r, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.recover(); err != nil {
		t.Fatal(err)
	}
	if r.st != NonPrim {
		t.Fatalf("recovered state %v", r.st)
	}
	if r.queue.greenCount() != 3 {
		t.Fatalf("recovered greens %d", r.queue.greenCount())
	}
	if res, _ := r.db.QueryGreen(db.Get("n")); res.Value != "3" {
		t.Fatalf("recovered db n=%q", res.Value)
	}
	if r.actionIndex != 4 {
		t.Fatalf("recovered actionIndex %d", r.actionIndex)
	}
	if !r.queue.has(orphan.ID) || r.queue.isGreen(orphan.ID) {
		t.Fatal("orphan ongoing action not re-marked red")
	}
	if r.prim.PrimIndex != 1 {
		t.Fatalf("recovered prim %+v", r.prim)
	}
}

func TestRecoveryLosesUnsyncedTail(t *testing.T) {
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncForced})
	cfg := Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	// Install synced the state record. A green action applied afterwards
	// without a sync is lost by the crash.
	e.onAction(types.Action{ID: types.ActionID{Server: "a", Index: 1}, Type: types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set("lost", "yes"))})
	log.Crash()

	cfg.GC = newFakeGC()
	r, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.recover(); err != nil {
		t.Fatal(err)
	}
	if r.queue.greenCount() != 0 {
		t.Fatalf("unsynced green survived: %d", r.queue.greenCount())
	}
	// Crucially: the recovered server is still vulnerable (it agreed to
	// the installation attempt and cannot know what it lost).
	if !r.vuln.Status {
		t.Fatal("recovered server must still be vulnerable")
	}
}
