package core

import (
	"fmt"

	"evsdb/internal/db"
	"evsdb/internal/types"
)

// dedupWindow bounds how many outcomes are retained per client. The
// window caps the replicated state at O(clients × window) while letting a
// client keep up to dedupWindow operations in flight concurrently;
// retries of operations that fell below the window are refused (never
// re-applied), so exactly-once degrades to at-most-once — the safe side.
const dedupWindow = 256

// DedupEntry is the recorded outcome of one globally ordered client
// action. A retry of the same (client, seq) returns this reply instead of
// applying the action again.
type DedupEntry struct {
	// GreenSeq is the global order position of the original apply.
	GreenSeq uint64 `json:"greenSeq"`
	// Err is the original deterministic abort, if the action aborted.
	Err string `json:"err,omitempty"`
	// Result is the original query answer, if the action carried a query.
	Result db.Result `json:"result,omitempty"`
}

// ClientSession is the per-client slice of the dedup table. It is part of
// the replicated state: every server derives it deterministically from
// the global green order (applyGreen records entries and prunes the
// window in green order), so sessions never need their own exchange round
// — green retransmission and § 5.2 catch-up snapshots equalize them.
type ClientSession struct {
	// Entries maps a client sequence number to its recorded outcome.
	Entries map[uint64]DedupEntry `json:"entries"`
	// MaxSeq is the highest sequence number ever recorded.
	MaxSeq uint64 `json:"maxSeq"`
	// Floor is the highest sequence number pruned from Entries: outcomes
	// at or below it are forgotten, and submissions at or below it are
	// refused rather than risk a second apply.
	Floor uint64 `json:"floor,omitempty"`
}

func (s *ClientSession) clone() *ClientSession {
	c := &ClientSession{MaxSeq: s.MaxSeq, Floor: s.Floor,
		Entries: make(map[uint64]DedupEntry, len(s.Entries))}
	for seq, e := range s.Entries {
		c.Entries[seq] = e
	}
	return c
}

// dedupKind classifies a keyed submission or green delivery against the
// dedup table.
type dedupKind int

const (
	dedupFresh     dedupKind = iota // never seen: apply normally
	dedupDuplicate                  // outcome recorded: answer with it
	dedupForgotten                  // below the window floor: refuse
)

// dedupLookup classifies (client, seq) against the replicated sessions.
func (e *Engine) dedupLookup(client string, seq uint64) (dedupKind, DedupEntry) {
	sess, ok := e.sessions[client]
	if !ok {
		return dedupFresh, DedupEntry{}
	}
	if ent, ok := sess.Entries[seq]; ok {
		return dedupDuplicate, ent
	}
	if seq <= sess.Floor {
		return dedupForgotten, DedupEntry{}
	}
	return dedupFresh, DedupEntry{}
}

// recordDedup stores the outcome of a freshly applied keyed action and
// prunes the session window. Runs in green order on every server, so the
// resulting sessions — including the pruning — are identical everywhere.
func (e *Engine) recordDedup(client string, seq uint64, ent DedupEntry) {
	sess, ok := e.sessions[client]
	if !ok {
		sess = &ClientSession{Entries: make(map[uint64]DedupEntry)}
		e.sessions[client] = sess
	}
	sess.Entries[seq] = ent
	if seq > sess.MaxSeq {
		sess.MaxSeq = seq
	}
	for len(sess.Entries) > dedupWindow {
		min := ^uint64(0)
		for s := range sess.Entries {
			if s < min {
				min = s
			}
		}
		delete(sess.Entries, min)
		if min > sess.Floor {
			sess.Floor = min
		}
	}
}

// dedupReply converts a dedup classification into the client's answer.
func dedupReply(kind dedupKind, ent DedupEntry) Reply {
	switch kind {
	case dedupDuplicate:
		return Reply{GreenSeq: ent.GreenSeq, Err: ent.Err, Result: ent.Result}
	default: // dedupForgotten
		return Reply{Err: fmt.Sprintf(
			"core: reply forgotten (sequence fell below the %d-entry dedup window); the action was not re-applied", dedupWindow)}
	}
}

// eagerKey names a relaxed-semantics idempotency key applied eagerly
// while red (map key for Engine.eagerApplied).
func eagerKey(client string, seq uint64) string {
	return fmt.Sprintf("%s\x00%d", client, seq)
}

// cloneSessions deep-copies the dedup table (snapshot construction).
func cloneSessions(in map[string]*ClientSession) map[string]*ClientSession {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]*ClientSession, len(in))
	for c, s := range in {
		out[c] = s.clone()
	}
	return out
}

// inflightKey tracks a locally generated, not yet green keyed action so a
// same-node retry attaches to the pending reply instead of generating a
// second action.
type inflightKey struct {
	Client string
	Seq    uint64
}

func (e *Engine) trackInflight(a types.Action, ch chan Reply) {
	e.pendingReply[a.ID] = append(e.pendingReply[a.ID], ch)
	if a.Client != "" {
		e.inflight[inflightKey{a.Client, a.ClientSeq}] = a.ID
	}
}
