package core

import (
	"errors"
	"testing"

	"evsdb/internal/db"
	"evsdb/internal/types"
)

// submitKeyed drives a keyed client submission through the unstarted
// engine and returns its reply channel plus the action the engine
// generated (zero action if none was generated — dedup fast path).
func submitKeyed(e *Engine, client string, seq uint64, update []byte) (chan Reply, types.Action) {
	before := e.actionIndex
	ch := make(chan Reply, 1)
	e.handleSubmit(submitReq{
		action: types.Action{
			Type:      types.ActionUpdate,
			Client:    client,
			ClientSeq: seq,
			Update:    update,
		},
		ch: ch,
	})
	if e.actionIndex == before {
		return ch, types.Action{}
	}
	a, ok := e.ongoing[types.ActionID{Server: e.id, Index: e.actionIndex}]
	if !ok {
		return ch, types.Action{}
	}
	return ch, a
}

func mustReply(t *testing.T, ch chan Reply) Reply {
	t.Helper()
	select {
	case r := <-ch:
		return r
	default:
		t.Fatal("no reply pending")
		return Reply{}
	}
}

// TestKeyedRetryAfterGreenReturnsOriginalReply: a retry of a (client,
// seq) whose action already turned green answers from the dedup table —
// same green position, no second apply, no new action generated.
func TestKeyedRetryAfterGreenReturnsOriginalReply(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	ch, a := submitKeyed(e, "c1", 1, db.EncodeUpdate(db.Add("ctr", 1)))
	if a.ID.Zero() {
		t.Fatal("no action generated for fresh key")
	}
	e.onAction(a)
	first := mustReply(t, ch)
	if first.Err != "" || first.GreenSeq != 1 {
		t.Fatalf("first reply %+v", first)
	}

	ch2, a2 := submitKeyed(e, "c1", 1, db.EncodeUpdate(db.Add("ctr", 1)))
	if !a2.ID.Zero() {
		t.Fatal("retry generated a second action")
	}
	second := mustReply(t, ch2)
	if second.GreenSeq != first.GreenSeq || second.Err != "" {
		t.Fatalf("retry reply %+v != original %+v", second, first)
	}
	if res, err := e.db.QueryGreen(db.Get("ctr")); err != nil || res.Value != "1" {
		t.Fatalf("counter applied %v times (err %v)", res.Value, err)
	}
	if e.metricsSnapshot().Duplicates != 1 {
		t.Fatalf("duplicates metric %d", e.metricsSnapshot().Duplicates)
	}
}

// TestKeyedRetryWhileInFlightAttaches: a same-node retry of an action
// still awaiting its global order attaches to the original's pending
// reply; both channels observe the single outcome.
func TestKeyedRetryWhileInFlightAttaches(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	ch1, a := submitKeyed(e, "c1", 7, db.EncodeUpdate(db.Add("ctr", 1)))
	ch2, a2 := submitKeyed(e, "c1", 7, db.EncodeUpdate(db.Add("ctr", 1)))
	if !a2.ID.Zero() {
		t.Fatal("in-flight retry generated a second action")
	}
	e.onAction(a)
	r1, r2 := mustReply(t, ch1), mustReply(t, ch2)
	if r1.GreenSeq != r2.GreenSeq || r1.GreenSeq != 1 {
		t.Fatalf("replies disagree: %+v vs %+v", r1, r2)
	}
	if res, _ := e.db.QueryGreen(db.Get("ctr")); res.Value != "1" {
		t.Fatalf("counter %q, want 1", res.Value)
	}
}

// TestDuplicateGreenAcrossActionIDs: the same idempotency key arriving as
// two distinct actions (a cross-replica retry after failover) applies
// only once even though both copies enter the green order.
func TestDuplicateGreenAcrossActionIDs(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b")
	c := conf(1, "a", "b")
	exchangeToPrim(t, e, gc, c, nil)

	upd := db.EncodeUpdate(db.Add("ctr", 1))
	e.onAction(types.Action{
		ID: types.ActionID{Server: "a", Index: 1}, Type: types.ActionUpdate,
		Client: "c1", ClientSeq: 3, Update: upd,
	})
	e.onAction(types.Action{
		ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate,
		Client: "c1", ClientSeq: 3, Update: upd,
	})
	if e.queue.greenCount() != 2 {
		t.Fatalf("green count %d", e.queue.greenCount())
	}
	if res, _ := e.db.QueryGreen(db.Get("ctr")); res.Value != "1" {
		t.Fatalf("counter %q, want 1 (duplicate applied)", res.Value)
	}
	if e.metricsSnapshot().Duplicates != 1 {
		t.Fatalf("duplicates metric %d", e.metricsSnapshot().Duplicates)
	}
}

// TestDedupWindowFloor: outcomes pruned past the window are refused
// (dedupForgotten) rather than re-applied; fresh seqs above the floor
// still work, including out-of-order ones within the window.
func TestDedupWindowFloor(t *testing.T) {
	e, _, _ := testEngine(t, "a", "a")
	for seq := uint64(1); seq <= dedupWindow+10; seq++ {
		e.recordDedup("c1", seq, DedupEntry{GreenSeq: seq})
	}
	sess := e.sessions["c1"]
	if len(sess.Entries) != dedupWindow {
		t.Fatalf("window size %d", len(sess.Entries))
	}
	if sess.Floor != 10 {
		t.Fatalf("floor %d, want 10", sess.Floor)
	}
	if kind, _ := e.dedupLookup("c1", 5); kind != dedupForgotten {
		t.Fatalf("pruned seq classified %v", kind)
	}
	if kind, _ := e.dedupLookup("c1", 11); kind != dedupDuplicate {
		t.Fatalf("retained seq classified %v", kind)
	}
	if kind, _ := e.dedupLookup("c1", dedupWindow+1000); kind != dedupFresh {
		t.Fatalf("future seq classified %v", kind)
	}
	r := dedupReply(dedupForgotten, DedupEntry{})
	if r.Err == "" || r.Retryable {
		t.Fatalf("forgotten reply %+v must be a non-retryable error", r)
	}
}

// TestOverloadBudget: once the in-flight budget is exhausted further
// submissions answer immediately with a retryable overload error.
func TestOverloadBudget(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	e.maxInFlight = 2
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	_, a1 := submitKeyed(e, "", 0, db.EncodeUpdate(db.Set("k1", "v")))
	_, a2 := submitKeyed(e, "", 0, db.EncodeUpdate(db.Set("k2", "v")))
	if a1.ID.Zero() || a2.ID.Zero() {
		t.Fatal("first two submissions refused under budget")
	}
	ch3, a3 := submitKeyed(e, "", 0, db.EncodeUpdate(db.Set("k3", "v")))
	if !a3.ID.Zero() {
		t.Fatal("over-budget submission generated an action")
	}
	r := mustReply(t, ch3)
	if !r.Retryable || !errors.Is(r.Failure(), ErrRetryable) {
		t.Fatalf("overload reply %+v not retryable", r)
	}
	if e.metricsSnapshot().Overloads != 1 {
		t.Fatalf("overloads metric %d", e.metricsSnapshot().Overloads)
	}
	// A keyed retry of an in-flight action still attaches over budget:
	// it consumes no new budget.
	_ = ch3
}

// TestReplyFailureTaxonomy: Reply.Failure maps to the typed error
// classes callers branch on.
func TestReplyFailureTaxonomy(t *testing.T) {
	if (Reply{}).Failure() != nil {
		t.Fatal("success reply reported a failure")
	}
	if !errors.Is((Reply{Err: "x", Retryable: true}).Failure(), ErrRetryable) {
		t.Fatal("retryable reply not ErrRetryable")
	}
	abort := (Reply{Err: "x"}).Failure()
	if !errors.Is(abort, ErrAborted) || errors.Is(abort, ErrRetryable) {
		t.Fatalf("abort reply misclassified: %v", abort)
	}
}

// TestSnapshotCarriesSessions: the join snapshot carries the dedup table
// so a joiner (or catch-up laggard) refuses duplicates for keys it never
// saw green itself.
func TestSnapshotCarriesSessions(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)
	ch, a := submitKeyed(e, "c9", 4, db.EncodeUpdate(db.Add("ctr", 1)))
	e.onAction(a)
	orig := mustReply(t, ch)

	snap := e.buildJoinSnapshot()
	if snap.Clients == nil || snap.Clients["c9"] == nil {
		t.Fatal("snapshot missing client sessions")
	}

	e2, _, _ := testEngine(t, "b", "a", "b")
	if err := e2.restoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	kind, ent := e2.dedupLookup("c9", 4)
	if kind != dedupDuplicate || ent.GreenSeq != orig.GreenSeq {
		t.Fatalf("restored lookup %v %+v, want duplicate at %d", kind, ent, orig.GreenSeq)
	}
	// Mutating the restored copy must not alias the source.
	e2.recordDedup("c9", 5, DedupEntry{GreenSeq: 99})
	if _, ok := e.sessions["c9"].Entries[5]; ok {
		t.Fatal("restored sessions alias the snapshot source")
	}
}

// TestRelaxedEagerRetryAcrossIDs: a relaxed-semantics key applied
// eagerly while red under one action id is not re-applied when a second
// copy (different id, same key) arrives, nor when either copy greens.
func TestRelaxedEagerRetryAcrossIDs(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a", "b", "c")
	c := conf(1, "a", "b", "c")
	// Settle in NonPrim: a vulnerable peer blocks the quorum (same setup
	// as TestVulnerablePeerBlocksQuorum), so relaxed actions apply eagerly
	// while red.
	e.onRegConf(c)
	var mine *stateMsg
	for _, m := range gc.take() {
		if m.Kind == emState {
			mine = m.State
		}
	}
	e.onStateMsg(*mine)
	e.onStateMsg(stateMsg{
		Server: "b", Conf: c.ID, RedCut: map[types.ServerID]uint64{},
		Prim: e.prim,
		Vuln: Vulnerable{
			Status: true, PrimIndex: 0, AttemptIndex: 9,
			Set:  []types.ServerID{"b", "d"},
			Bits: map[types.ServerID]bool{"b": true},
		},
	})
	e.onStateMsg(stateMsg{Server: "c", Conf: c.ID, RedCut: map[types.ServerID]uint64{}, Prim: e.prim})
	if e.st != NonPrim {
		t.Fatalf("state %v, want NonPrim", e.st)
	}

	upd := db.EncodeUpdate(db.Add("ctr", 1))
	e.onAction(types.Action{
		ID: types.ActionID{Server: "a", Index: 1}, Type: types.ActionUpdate,
		Semantics: types.SemCommutative, Client: "c1", ClientSeq: 2, Update: upd,
	})
	e.onAction(types.Action{
		ID: types.ActionID{Server: "b", Index: 1}, Type: types.ActionUpdate,
		Semantics: types.SemCommutative, Client: "c1", ClientSeq: 2, Update: upd,
	})
	if res, _ := e.db.QueryDirty(db.Get("ctr")); res.Value != "1" {
		t.Fatalf("eager counter %q, want 1", res.Value)
	}
}
