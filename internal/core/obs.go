package core

import (
	"time"

	"evsdb/internal/obs"
	"evsdb/internal/types"
)

func init() {
	// Teach the obs tracer to render core.State operands by name.
	obs.StateName = func(s uint64) string { return State(s).String() }
}

// submitMeta remembers, per locally created action, what the latency
// histogram needs at reply time: when the client submitted and under
// which semantics class.
type submitMeta struct {
	at  time.Time
	sem types.Semantics
}

// coreObs holds every engine metric pre-registered against the shared
// registry, so the run loop's hot path touches only atomics — no label
// rendering, no map lookups through the registry lock.
type coreObs struct {
	generated     *obs.Counter
	applied       *obs.Counter
	exchanges     *obs.Counter
	installs      *obs.Counter
	retransmitted *obs.Counter
	duplicates    *obs.Counter
	overloads     *obs.Counter

	latency   [3]*obs.Histogram // indexed by types.Semantics
	batchSize *obs.Histogram
	exchDur   *obs.Histogram

	flushFull  *obs.Counter
	flushTimer *obs.Counter
	flushDrain *obs.Counter

	walSync map[string]*obs.Counter

	gState     *obs.Gauge
	gGreen     *obs.Gauge
	gRed       *obs.Gauge
	gWhite     *obs.Gauge
	gInFlight  *obs.Gauge
	gSessions  *obs.Gauge
	gVulnProbe *obs.Gauge
}

func newCoreObs(r *obs.Registry) *coreObs {
	m := &coreObs{
		generated:     r.Counter("evsdb_actions_generated_total", "Actions created at this server."),
		applied:       r.Counter("evsdb_actions_applied_total", "Actions this server marked green."),
		exchanges:     r.Counter("evsdb_exchanges_total", "State-exchange rounds (one per view change)."),
		installs:      r.Counter("evsdb_primaries_installed_total", "Primary components installed by this server."),
		retransmitted: r.Counter("evsdb_actions_retransmitted_total", "Actions re-sent during state exchanges."),
		duplicates:    r.Counter("evsdb_dedup_hits_total", "Keyed submissions answered from the dedup table or an in-flight action."),
		overloads:     r.Counter("evsdb_admission_rejects_total", "Submissions refused because the in-flight budget was exhausted."),
		batchSize:     r.Histogram("evsdb_batch_actions", "Actions per flushed submit batch.", obs.SizeBuckets),
		exchDur:       r.Histogram("evsdb_exchange_round_seconds", "State-exchange round duration, ExchangeStates entry to quorum decision.", nil),
		flushFull:     r.Counter("evsdb_batch_flush_total", "Submit-batch flushes by reason.", obs.L("reason", "full")),
		flushTimer:    r.Counter("evsdb_batch_flush_total", "Submit-batch flushes by reason.", obs.L("reason", "timer")),
		flushDrain:    r.Counter("evsdb_batch_flush_total", "Submit-batch flushes by reason.", obs.L("reason", "drain")),
		walSync:       make(map[string]*obs.Counter),
		gState:        r.Gauge("evsdb_engine_state", "Engine state-machine state (1=NonPrim ... 8=Un, paper Fig. 4)."),
		gGreen:        r.Gauge("evsdb_actions_green", "Actions in the globally agreed green order."),
		gRed:          r.Gauge("evsdb_actions_red", "Actions ordered locally but not yet green."),
		gWhite:        r.Gauge("evsdb_actions_white", "Green actions discarded as white (known green everywhere)."),
		gInFlight:     r.Gauge("evsdb_actions_inflight", "Client actions awaiting an outcome against the admission budget."),
		gSessions:     r.Gauge("evsdb_dedup_sessions", "Clients tracked in the replicated dedup table."),
		gVulnProbe:    r.Gauge("evsdb_vulnerable", "1 while the vulnerable flag is held on stable storage."),
	}
	for i, class := range []string{"strict", "commutative", "timestamp"} {
		m.latency[i] = r.Histogram("evsdb_action_latency_seconds",
			"Submit-to-reply latency by semantics class.", nil, obs.L("class", class))
	}
	for _, p := range []string{"exchange-states", "construct", "nonprim", "install", "catch-up"} {
		m.walSync[p] = r.Counter("evsdb_wal_syncs_total", "Forced log syncs at protocol barriers.", obs.L("point", p))
	}
	return m
}

// observeLatency closes out the latency sample for a locally created
// action, if one is open. Run loop only.
func (e *Engine) observeLatency(id types.ActionID) {
	meta, ok := e.submitMeta[id]
	if !ok {
		return
	}
	delete(e.submitMeta, id)
	sem := meta.sem
	if sem < 0 || int(sem) >= len(e.om.latency) {
		sem = types.SemStrict
	}
	e.om.latency[sem].ObserveDuration(time.Since(meta.at))
}

// dropLatency abandons the latency sample without observing it (error
// replies, departed replicas). Run loop only.
func (e *Engine) dropLatency(id types.ActionID) {
	delete(e.submitMeta, id)
}

// syncGauges publishes run-loop-owned counts to the registry's gauges;
// called once per event-loop iteration so /metrics — served from other
// goroutines — always reads a recent consistent snapshot.
func (e *Engine) syncGauges() {
	e.om.gState.Set(int64(e.st))
	e.om.gGreen.Set(int64(e.queue.greenCount()))
	e.om.gRed.Set(int64(e.queue.redCount()))
	e.om.gWhite.Set(int64(e.queue.base))
	e.om.gInFlight.Set(int64(len(e.pendingReply) + len(e.buffered)))
	e.om.gSessions.Set(int64(len(e.sessions)))
	vuln := int64(0)
	if e.vuln.Status {
		vuln = 1
	}
	e.om.gVulnProbe.Set(vuln)
}

// metricsSnapshot reconstructs the public Metrics struct from the
// registry-backed counters — the single source /status and /metrics
// share, so the two can never disagree.
func (e *Engine) metricsSnapshot() Metrics {
	return Metrics{
		Generated:     e.om.generated.Value(),
		Applied:       e.om.applied.Value(),
		Exchanges:     e.om.exchanges.Value(),
		Installs:      e.om.installs.Value(),
		Retransmitted: e.om.retransmitted.Value(),
		Duplicates:    e.om.duplicates.Value(),
		Overloads:     e.om.overloads.Value(),
	}
}

// Observer exposes the engine's observability bundle: its metrics
// registry, event tracer and logger. Never nil.
func (e *Engine) Observer() *obs.Observer { return e.obs }
