package core

import (
	"fmt"
	"testing"

	"evsdb/internal/db"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// setAction builds a plain strict update action from server "a".
func setAction(idx uint64, key, value string) types.Action {
	return types.Action{
		ID:     types.ActionID{Server: "a", Index: idx},
		Type:   types.ActionUpdate,
		Update: db.EncodeUpdate(db.Set(key, value)),
	}
}

// TestBatchAppliesLikeSequential pins the batching pipeline's core
// contract: delivering a bundle through onActionBatch produces exactly
// the state that back-to-back single deliveries would have.
func TestBatchAppliesLikeSequential(t *testing.T) {
	batched, gcB, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, batched, gcB, conf(1, "a"), nil)
	sequential, gcS, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, sequential, gcS, conf(1, "a"), nil)

	acts := make([]types.Action, 6)
	for i := range acts {
		acts[i] = setAction(uint64(i+1), fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}
	batched.onActionBatch(acts)
	for _, a := range acts {
		sequential.onAction(a)
	}

	if g, s := batched.queue.greenCount(), sequential.queue.greenCount(); g != s || g != uint64(len(acts)) {
		t.Fatalf("green counts diverge: batched %d, sequential %d", g, s)
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		rb, _ := batched.db.QueryGreen(db.Get(key))
		rs, _ := sequential.db.QueryGreen(db.Get(key))
		if rb.Value != rs.Value {
			t.Fatalf("db diverges on %s: batched %q, sequential %q", key, rb.Value, rs.Value)
		}
	}
	if len(batched.history) != len(sequential.history) {
		t.Fatalf("history lengths diverge: %d vs %d", len(batched.history), len(sequential.history))
	}
	for i := range batched.history {
		if batched.history[i] != sequential.history[i] {
			t.Fatalf("history diverges at %d: %v vs %v", i, batched.history[i], sequential.history[i])
		}
	}
}

// TestBatchSameKeyDedupedWithinBatch: two copies of one idempotency key
// inside one bundle. The second copy must observe the first copy's dedup
// entry — apply once, both green.
func TestBatchSameKeyDedupedWithinBatch(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	first := setAction(1, "x", "first")
	first.Client, first.ClientSeq = "c1", 7
	second := setAction(2, "x", "second")
	second.Client, second.ClientSeq = "c1", 7

	e.onActionBatch([]types.Action{first, second})

	if e.queue.greenCount() != 2 {
		t.Fatalf("green count %d, want 2 (duplicate keeps its position)", e.queue.greenCount())
	}
	res, _ := e.db.QueryGreen(db.Get("x"))
	if res.Value != "first" {
		t.Fatalf("duplicate applied: x=%q, want %q", res.Value, "first")
	}
	kind, ent := e.dedupLookup("c1", 7)
	if kind == dedupFresh {
		t.Fatal("no dedup entry recorded for the fused key")
	}
	if ent.GreenSeq != 1 {
		t.Fatalf("dedup entry points at green seq %d, want 1 (the first copy)", ent.GreenSeq)
	}
	if e.metricsSnapshot().Duplicates != 1 {
		t.Fatalf("duplicates metric %d, want 1", e.metricsSnapshot().Duplicates)
	}
}

// TestBatchComplexActionFlushesRun: a non-plain action in the middle of
// a bundle must see every earlier update applied and every later update
// not yet applied — the fused runs flush around it.
func TestBatchComplexActionFlushesRun(t *testing.T) {
	e, gc, _ := testEngine(t, "a", "a")
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	query := types.Action{
		ID:    types.ActionID{Server: "a", Index: 2},
		Type:  types.ActionQuery,
		Query: db.Get("k"),
	}
	done := make(chan Reply, 1)
	e.pendingReply[query.ID] = append(e.pendingReply[query.ID], done)

	e.onActionBatch([]types.Action{
		setAction(1, "k", "before"),
		query,
		setAction(3, "k", "after"),
	})

	if e.queue.greenCount() != 3 {
		t.Fatalf("green count %d, want 3", e.queue.greenCount())
	}
	select {
	case r := <-done:
		if r.Result.Value != "before" {
			t.Fatalf("query reply %+v, want value %q (runs must flush in order)", r, "before")
		}
	default:
		t.Fatal("no reply delivered for the in-batch query")
	}
	res, _ := e.db.QueryGreen(db.Get("k"))
	if res.Value != "after" {
		t.Fatalf("final db state k=%q, want %q", res.Value, "after")
	}
}

// TestBatchNonPrimStaysRed: a bundle delivered outside the primary
// component is accepted red — ordered, logged, not applied.
func TestBatchNonPrimStaysRed(t *testing.T) {
	e, _, _ := testEngine(t, "a", "a", "b")
	if e.st != NonPrim {
		t.Fatalf("fresh engine state %v", e.st)
	}
	acts := []types.Action{setAction(1, "k", "1"), setAction(2, "k", "2")}
	e.onActionBatch(acts)
	if e.queue.greenCount() != 0 {
		t.Fatalf("green count %d in NonPrim", e.queue.greenCount())
	}
	for _, a := range acts {
		if !e.queue.has(a.ID) {
			t.Fatalf("action %v not in the red zone", a.ID)
		}
	}
	if e.redCut["a"] != 2 {
		t.Fatalf("red cut %d, want 2", e.redCut["a"])
	}
}

// TestBatchWALReplay: the batch WAL records (recRedBatch, recGreenBatch,
// recOngoingBatch) must replay to the same state their per-action
// equivalents would.
func TestBatchWALReplay(t *testing.T) {
	gc := newFakeGC()
	log := storage.NewMemLog(storage.Options{Policy: storage.SyncNone})
	cfg := Config{ID: "a", Servers: []types.ServerID{"a"}, GC: gc, Log: log}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeToPrim(t, e, gc, conf(1, "a"), nil)

	// One bundle -> one recRedBatch and one recGreenBatch.
	e.onActionBatch([]types.Action{
		setAction(1, "k", "1"),
		{ID: types.ActionID{Server: "a", Index: 2}, Type: types.ActionUpdate,
			Update: db.EncodeUpdate(db.Add("n", 5))},
		setAction(3, "k", "3"),
	})
	e.actionIndex = 3
	// A batched submission whose multicast never reached anyone: the
	// recOngoingBatch record must re-mark every member red on recovery.
	orphans := []types.Action{
		{ID: types.ActionID{Server: "a", Index: 4}, Type: types.ActionUpdate,
			Update: db.EncodeUpdate(db.Add("n", 100))},
		{ID: types.ActionID{Server: "a", Index: 5}, Type: types.ActionUpdate,
			Update: db.EncodeUpdate(db.Add("n", 100))},
	}
	e.appendLog(logRecord{T: recOngoingBatch, Actions: orphans})
	e.syncLog("test")

	cfg.GC = newFakeGC()
	r, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.recover(); err != nil {
		t.Fatal(err)
	}
	if r.queue.greenCount() != 3 {
		t.Fatalf("recovered greens %d, want 3", r.queue.greenCount())
	}
	if res, _ := r.db.QueryGreen(db.Get("k")); res.Value != "3" {
		t.Fatalf("recovered k=%q, want %q", res.Value, "3")
	}
	if res, _ := r.db.QueryGreen(db.Get("n")); res.Value != "5" {
		t.Fatalf("recovered n=%q, want %q (orphans must not apply)", res.Value, "5")
	}
	if r.actionIndex != 5 {
		t.Fatalf("recovered actionIndex %d, want 5", r.actionIndex)
	}
	for _, o := range orphans {
		if !r.queue.has(o.ID) || r.queue.isGreen(o.ID) {
			t.Fatalf("orphan %v not re-marked red", o.ID)
		}
	}
}
