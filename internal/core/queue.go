package core

import (
	"fmt"
	"sort"

	"evsdb/internal/types"
)

// actionsQueue is the ordered list of actions a server knows about
// (paper, Appendix A "actionsQueue"): a prefix of green actions in their
// global order, followed by red actions in local (component delivery)
// order. White actions — green everywhere — are discarded from memory;
// base counts how many have been discarded so global green sequence
// numbers stay stable.
type actionsQueue struct {
	base   uint64 // discarded white actions; global seq of list[0] is base+1
	list   []types.Action
	greens int // green entries at the head of list
	pos    map[types.ActionID]int
}

func newActionsQueue() *actionsQueue {
	return &actionsQueue{pos: make(map[types.ActionID]int)}
}

// greenCount returns the total number of actions ever marked green here.
func (q *actionsQueue) greenCount() uint64 { return q.base + uint64(q.greens) }

// redCount returns the number of red (and yellow) actions held.
func (q *actionsQueue) redCount() int { return len(q.list) - q.greens }

// has reports whether the action is present (green or red). Discarded
// white actions report false; callers guard with redCut.
func (q *actionsQueue) has(id types.ActionID) bool {
	_, ok := q.pos[id]
	return ok
}

// isGreen reports whether the action is in the green prefix.
func (q *actionsQueue) isGreen(id types.ActionID) bool {
	i, ok := q.pos[id]
	return ok && i < q.greens
}

// appendRed places a new action at the tail (red zone).
func (q *actionsQueue) appendRed(a types.Action) {
	q.pos[a.ID] = len(q.list)
	q.list = append(q.list, a)
}

// get returns the action by id.
func (q *actionsQueue) get(id types.ActionID) (types.Action, bool) {
	i, ok := q.pos[id]
	if !ok {
		return types.Action{}, false
	}
	return q.list[i], true
}

// promote moves the action just on top of the last green action (paper
// MarkGreen) and returns its global green sequence number. Promoting an
// already-green action returns its existing position.
func (q *actionsQueue) promote(id types.ActionID) (uint64, error) {
	i, ok := q.pos[id]
	if !ok {
		return 0, fmt.Errorf("promote %s: not in queue", id)
	}
	if i < q.greens {
		return q.base + uint64(i) + 1, nil
	}
	a := q.list[i]
	// Shift the red prefix [greens, i) right by one, preserving the
	// relative red order of the others.
	copy(q.list[q.greens+1:i+1], q.list[q.greens:i])
	q.list[q.greens] = a
	for j := q.greens + 1; j <= i; j++ {
		q.pos[q.list[j].ID] = j
	}
	q.pos[id] = q.greens
	q.greens++
	return q.base + uint64(q.greens), nil
}

// greenAt returns the green action with global sequence seq, if held.
func (q *actionsQueue) greenAt(seq uint64) (types.Action, bool) {
	if seq <= q.base || seq > q.greenCount() {
		return types.Action{}, false
	}
	return q.list[seq-q.base-1], true
}

// reds returns the red-zone actions in local order (shared backing array;
// callers must not mutate).
func (q *actionsQueue) reds() []types.Action {
	return q.list[q.greens:]
}

// redsCanonical returns the red actions sorted by action id — the
// deterministic order used when a new primary component is installed
// (paper CodeSegment A.10, OR-2).
func (q *actionsQueue) redsCanonical() []types.Action {
	out := append([]types.Action(nil), q.list[q.greens:]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// discardWhite drops green actions with global sequence <= upto. They are
// known green at every server and will never be retransmitted.
func (q *actionsQueue) discardWhite(upto uint64) {
	if upto <= q.base {
		return
	}
	if max := q.greenCount(); upto > max {
		upto = max
	}
	drop := int(upto - q.base)
	for i := 0; i < drop; i++ {
		delete(q.pos, q.list[i].ID)
	}
	q.list = append([]types.Action(nil), q.list[drop:]...)
	q.greens -= drop
	q.base = upto
	for i, a := range q.list {
		q.pos[a.ID] = i
	}
}
