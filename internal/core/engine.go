// Package core implements the replication engine of Amir & Tutu, "From
// Total Order to Database Replication" (CNDS-2001-6 / ICDCS 2002).
//
// The engine turns the Safe-delivery total order of an Extended Virtual
// Synchrony group communication layer into a global persistent consistent
// order of actions across a partitionable set of database replicas,
// without per-action end-to-end acknowledgments: one state-exchange round
// runs per membership change instead.
//
// The state machine (paper Fig. 4, Appendix A) has eight states:
//
//	RegPrim        primary component, steady state: safe-delivered
//	               actions turn green immediately
//	TransPrim      primary's transitional configuration: actions turn
//	               yellow
//	ExchangeStates after a view change: servers exchange state messages
//	ExchangeActions servers retransmit actions to reach the maximal
//	               common state
//	Construct      quorum reached: exchange Create Primary Component
//	               (CPC) messages
//	No             interrupted installation, presumed failed
//	Un             interrupted installation, outcome unknown
//	NonPrim        non-primary component: actions turn red
//
// Action knowledge follows the coloring model (Figs. 1 and 3): red
// (ordered locally), yellow (ordered by a primary's transitional
// configuration), green (global order known), white (green everywhere,
// discardable).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/obs"
	"evsdb/internal/quorum"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// State is the replication engine's state-machine state.
type State int

const (
	// NonPrim: member of a non-primary component.
	NonPrim State = iota + 1
	// RegPrim: member of the primary component, regular configuration.
	RegPrim
	// TransPrim: primary component, transitional configuration.
	TransPrim
	// ExchangeStates: exchanging state messages after a view change.
	ExchangeStates
	// ExchangeActions: retransmitting actions to the maximal common state.
	ExchangeActions
	// Construct: attempting to install a new primary component.
	Construct
	// No: installation interrupted; no server is known to have installed.
	No
	// Un: installation interrupted; some server may have installed.
	Un
)

func (s State) String() string {
	switch s {
	case NonPrim:
		return "NonPrim"
	case RegPrim:
		return "RegPrim"
	case TransPrim:
		return "TransPrim"
	case ExchangeStates:
		return "ExchangeStates"
	case ExchangeActions:
		return "ExchangeActions"
	case Construct:
		return "Construct"
	case No:
		return "No"
	case Un:
		return "Un"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// GroupCom is the group-communication service the engine requires:
// Safe-delivery multicast plus EVS membership events.
type GroupCom interface {
	Multicast(payload []byte, service evs.ServiceLevel) error
	Events() <-chan evs.Event
}

// Errors returned by the public API.
var (
	ErrClosed = errors.New("core: engine closed")
	ErrLeft   = errors.New("core: server has left the replica set")

	// ErrRetryable marks transient failures: the same operation may
	// succeed on another replica or after a delay (overload, storage
	// failure, departed replica). Clients may safely retry — writes carry
	// idempotency keys, so a retry never double-applies.
	ErrRetryable = errors.New("retryable")
	// ErrAborted marks deterministic aborts (failed CAS guard, failed
	// procedure, malformed update, stale idempotency sequence): every
	// replica would answer identically, so retrying is pointless.
	ErrAborted = errors.New("aborted")
	// ErrOverloaded is the retryable failure returned when the engine's
	// in-flight action budget is exhausted.
	ErrOverloaded = fmt.Errorf("%w: core: in-flight action budget exhausted", ErrRetryable)
)

// Reply answers a submitted action once its outcome is known.
type Reply struct {
	// Err is non-empty when the action failed: a deterministic abort
	// (failed CAS guard, failed procedure, malformed update) unless
	// Retryable is set.
	Err string
	// Retryable marks failures that are transient rather than
	// deterministic: overload, storage failure, a departed replica. A
	// client may retry them elsewhere; deterministic aborts it must not.
	Retryable bool
	// Result holds the query part's answer, if the action had one.
	Result db.Result
	// GreenSeq is the action's global order position (0 for relaxed-
	// semantics replies issued before global ordering).
	GreenSeq uint64
}

// Failure returns nil for a successful reply, or an error wrapping
// ErrRetryable or ErrAborted so callers (httpapi, tooling) can map the
// outcome to retry decisions with errors.Is.
func (r Reply) Failure() error {
	if r.Err == "" {
		return nil
	}
	if r.Retryable {
		return fmt.Errorf("%w: %s", ErrRetryable, r.Err)
	}
	return fmt.Errorf("%w: %s", ErrAborted, r.Err)
}

// QueryLevel selects the consistency of a read (paper § 6).
type QueryLevel int

const (
	// QueryStrict orders the query like an action: the answer reflects
	// the global prefix and is only produced in a primary component.
	QueryStrict QueryLevel = iota + 1
	// QueryWeak answers immediately from the consistent but possibly
	// obsolete green state.
	QueryWeak
	// QueryDirty answers immediately from the green state plus the
	// effects of red (locally ordered) actions.
	QueryDirty
)

// Config assembles an engine.
type Config struct {
	// ID is this server's identifier.
	ID types.ServerID
	// Servers is the initial replica set (paper § 2: fixed and known in
	// advance; § 5.1 joins and leaves adjust it at runtime).
	Servers []types.ServerID
	// GC is the group communication endpoint.
	GC GroupCom
	// Log is the stable storage for the engine's sync points.
	Log storage.Log
	// DB is the replicated database; nil means a fresh empty database.
	DB *db.Database
	// Quorum selects the primary component rule; nil means dynamic
	// linear voting with unit weights.
	Quorum quorum.System
	// Recover replays Log before starting (crash recovery).
	Recover bool
	// MaxInFlight bounds how many client actions may be awaiting their
	// outcome at once (pending replies plus requests buffered across an
	// exchange). Submissions beyond the budget are refused immediately
	// with a retryable overload reply instead of queueing without bound.
	// Zero means DefaultMaxInFlight; negative disables the bound.
	MaxInFlight int
	// MaxBatchActions caps how many client submissions the engine
	// coalesces into one ActionBatch — one Safe multicast, one WAL
	// append, one green-apply transaction — before fanning per-action
	// replies and dedup entries back out. Zero means
	// DefaultMaxBatchActions; 1 or negative disables batching.
	MaxBatchActions int
	// MaxBatchDelay bounds how long the event loop lingers on the submit
	// channel after a first submission, collecting more into the same
	// batch. Zero means DefaultMaxBatchDelay; negative disables the wait
	// (coalescing then only captures submissions already queued while the
	// loop was busy).
	MaxBatchDelay time.Duration
	// SyncHook, if set, is invoked on the engine goroutine at every
	// "** sync to disk" barrier, after the forced write completes and
	// before any subsequent protocol message is sent. Returning true
	// halts the engine immediately — mid-handler — emulating a process
	// crash exactly at the barrier. Used by fault-injection harnesses
	// (internal/sim); nil in production.
	SyncHook func(point string) bool
	// Obs is the observability bundle (metrics registry, event tracer,
	// logger) this engine instruments. Nil means a fresh private bundle;
	// a process hosting engine + EVS + transport passes one shared
	// Observer so its /metrics endpoint shows the whole node.
	Obs *obs.Observer
	// ApplyWorkers sets the database's parallel green-apply width
	// (db.Database.SetApplyWorkers): 0 keeps the GOMAXPROCS-derived
	// default, 1 forces sequential apply, and negative also restores
	// the default.
	ApplyWorkers int
}

type submitReq struct {
	action types.Action
	ch     chan Reply
	at     time.Time // submission time, for the latency histograms
}

type joinReq struct {
	joiner types.ServerID
	ch     chan joinResp
}

type joinResp struct {
	snap *JoinSnapshot
	err  error
}

type statusReq struct {
	ch chan Status
}

// Metrics counts engine activity since start.
type Metrics struct {
	// Generated counts actions created at this server.
	Generated uint64
	// Applied counts actions this server marked green.
	Applied uint64
	// Exchanges counts state-exchange rounds (one per view change).
	Exchanges uint64
	// Installs counts primary components this server installed.
	Installs uint64
	// Retransmitted counts actions this server re-sent during exchanges.
	Retransmitted uint64
	// Duplicates counts keyed submissions answered from the dedup table
	// instead of being applied a second time.
	Duplicates uint64
	// Overloads counts submissions refused because the in-flight budget
	// was exhausted.
	Overloads uint64
}

// DefaultMaxInFlight is the in-flight action budget used when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 4096

// DefaultMaxBatchActions is the batch cap used when Config.MaxBatchActions
// is zero. Large enough to amortize the per-message EVS round and the
// forced write across a burst, small enough to keep a batch well under
// the transport's comfortable datagram size.
const DefaultMaxBatchActions = 64

// DefaultMaxBatchDelay is the batch collection window used when
// Config.MaxBatchDelay is zero. A fraction of the typical forced-write
// latency: closed-loop clients submitting in the same round coalesce,
// while a lone client's latency barely moves.
const DefaultMaxBatchDelay = 200 * time.Microsecond

// Status is a snapshot of the engine's externally observable state.
type Status struct {
	State      State
	Conf       types.Configuration
	GreenCount uint64
	RedCount   int
	WhiteBase  uint64 // greens discarded as white
	Prim       PrimComponent
	Vulnerable bool
	ServerSet  []types.ServerID
	Metrics    Metrics
	// InFlight is the number of client actions currently awaiting an
	// outcome (pending replies plus buffered requests) against the
	// admission budget.
	InFlight int
	// Sessions is the number of clients tracked in the replicated dedup
	// table.
	Sessions int
}

// Engine is one replication server.
type Engine struct {
	id     types.ServerID
	gc     GroupCom
	log    storage.Log
	db     *db.Database
	quo    quorum.System
	syncer *storage.AsyncSyncer

	submitCh     chan submitReq
	joinCh       chan joinReq
	statusCh     chan statusReq
	leaveCh      chan chan error
	checkpointCh chan chan error

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	syncHook func(point string) bool

	// Observability state readable from any goroutine — including after
	// the engine stopped or crashed — under its own locks. The run loop
	// is the only writer.
	histMu   sync.Mutex
	history  []types.ActionID // full green order known here (Theorem 1 checks)
	histBase uint64           // greens preceding history[0] (snapshot bootstrap)

	installMu sync.Mutex
	installs  []PrimComponent // every primary component installed here, in order

	watchMu  sync.Mutex
	watchers map[chan struct{}]struct{}

	// Everything below is owned by the run loop (paper Appendix A
	// variables keep their names where practical).
	st           State
	conf         types.Configuration // current regular configuration
	actionIndex  uint64
	attemptIndex uint64
	prim         PrimComponent
	vuln         Vulnerable
	yellow       Yellow
	queue        *actionsQueue
	ongoing      map[types.ActionID]types.Action // created here, not yet delivered (paper ongoingQueue)
	redCut       map[types.ServerID]uint64
	orderedIdx   map[types.ServerID]uint64 // highest green index per creator
	greenKnown   map[types.ServerID]uint64 // paper's greenLines, as counts
	serverSet    map[types.ServerID]bool
	stateMsgs    map[types.ServerID]stateMsg
	cpcFrom      map[types.ServerID]bool
	plan         *retransPlan
	pendingGreen map[uint64]types.Action // out-of-order green retransmissions
	buffered     []submitReq             // client requests held outside Prim/NonPrim
	pendingReply map[types.ActionID][]chan Reply
	appliedRed   map[types.ActionID]bool // relaxed actions applied eagerly
	// Exactly-once machinery: sessions is the replicated dedup table
	// (driven by green order, see session.go); eagerApplied marks
	// idempotency keys whose relaxed action was applied eagerly while red
	// under a *different* action id (a cross-component retry), so the
	// green copy skips re-application; inflight routes a same-node retry
	// of a not-yet-green action to the original's reply.
	sessions     map[string]*ClientSession
	eagerApplied map[string]bool
	inflight     map[inflightKey]types.ActionID
	maxInFlight  int
	maxBatch     int           // batching cap (1 = batching disabled)
	batchDelay   time.Duration // batch collection window (0 = opportunistic only)
	// Query fast path (§ 6): strict query-only requests in the primary
	// are answered from the green state once every earlier local action
	// has applied, without generating an ordered action message.
	lastLocalPending types.ActionID
	queryWait        map[types.ActionID][]submitReq
	joinWaiters      map[types.ServerID][]chan joinResp
	pendingJoins     []joinReq
	left             bool
	vulnByServer     map[types.ServerID]Vulnerable // post-ComputeKnowledge view
	exchRound        uint64                        // state-exchange round within this conf (catch-up restarts it)
	awaitingSnap     bool                          // waiting for a § 5.2 catch-up snapshot
	liveBuf          []types.Action                // live actions held back during an exchange (see onAction)
	replaying        bool                          // suppress logging/replies during recovery
	ioFailed         bool                          // stable storage failed; refuse new work
	obs              *obs.Observer
	om               *coreObs
	submitMeta       map[types.ActionID]submitMeta // open latency samples for locally created actions
	exchStart        time.Time                     // when the current exchange round entered ExchangeStates
}

// New assembles an engine, optionally recovers it from its log, and
// starts its event loop.
func New(cfg Config) (*Engine, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Recover {
		if err := e.recover(); err != nil {
			return nil, fmt.Errorf("recover: %w", err)
		}
	}
	go e.run()
	return e, nil
}

// newEngine builds an engine without starting its loop.
func newEngine(cfg Config) (*Engine, error) {
	if cfg.ID == "" {
		return nil, errors.New("core: config needs an ID")
	}
	if cfg.GC == nil {
		return nil, errors.New("core: config needs a group communication endpoint")
	}
	if cfg.Log == nil {
		return nil, errors.New("core: config needs a stable-storage log")
	}
	if len(cfg.Servers) == 0 {
		return nil, errors.New("core: config needs the initial server set")
	}
	database := cfg.DB
	if database == nil {
		database = db.New()
	}
	quo := cfg.Quorum
	if quo == nil {
		quo = quorum.DynamicLinear{}
	}
	e := &Engine{
		id:           cfg.ID,
		gc:           cfg.GC,
		log:          cfg.Log,
		db:           database,
		quo:          quo,
		submitCh:     make(chan submitReq),
		joinCh:       make(chan joinReq),
		statusCh:     make(chan statusReq),
		leaveCh:      make(chan chan error),
		checkpointCh: make(chan chan error),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		st:           NonPrim,
		queue:        newActionsQueue(),
		ongoing:      make(map[types.ActionID]types.Action),
		redCut:       make(map[types.ServerID]uint64),
		orderedIdx:   make(map[types.ServerID]uint64),
		greenKnown:   make(map[types.ServerID]uint64),
		serverSet:    make(map[types.ServerID]bool),
		pendingGreen: make(map[uint64]types.Action),
		pendingReply: make(map[types.ActionID][]chan Reply),
		appliedRed:   make(map[types.ActionID]bool),
		sessions:     make(map[string]*ClientSession),
		eagerApplied: make(map[string]bool),
		inflight:     make(map[inflightKey]types.ActionID),
		queryWait:    make(map[types.ActionID][]submitReq),
		joinWaiters:  make(map[types.ServerID][]chan joinResp),
		watchers:     make(map[chan struct{}]struct{}),
		syncHook:     cfg.SyncHook,
		maxInFlight:  cfg.MaxInFlight,
		obs:          cfg.Obs,
		submitMeta:   make(map[types.ActionID]submitMeta),
	}
	if e.obs == nil {
		e.obs = obs.NewObserver()
	}
	e.om = newCoreObs(e.obs.Reg)
	database.Instrument(e.obs.Reg)
	if cfg.ApplyWorkers != 0 {
		database.SetApplyWorkers(cfg.ApplyWorkers)
	}
	if e.maxInFlight == 0 {
		e.maxInFlight = DefaultMaxInFlight
	}
	switch {
	case cfg.MaxBatchActions == 0:
		e.maxBatch = DefaultMaxBatchActions
	case cfg.MaxBatchActions < 0:
		e.maxBatch = 1
	default:
		e.maxBatch = cfg.MaxBatchActions
	}
	switch {
	case cfg.MaxBatchDelay == 0:
		e.batchDelay = DefaultMaxBatchDelay
	case cfg.MaxBatchDelay < 0:
		e.batchDelay = 0
	default:
		e.batchDelay = cfg.MaxBatchDelay
	}
	for _, s := range cfg.Servers {
		e.serverSet[s] = true
	}
	e.syncer = storage.NewAsyncSyncer(e.log)
	// Bootstrap quorum rule: before any primary exists, the component
	// must hold a majority of the full initial set.
	e.prim = PrimComponent{Servers: append([]types.ServerID(nil), cfg.Servers...)}
	return e, nil
}

// DB exposes the underlying database (for registering procedures and for
// examples' direct weak reads).
func (e *Engine) DB() *db.Database { return e.db }

// ID returns the server identifier.
func (e *Engine) ID() types.ServerID { return e.id }

// Close stops the engine loop. It does not close the group communication
// endpoint or the log; the caller owns those.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
	e.syncer.Close()
}

// Submit injects a client action and waits for its reply: for strict
// semantics, when the action turns green; for relaxed semantics, as soon
// as it is applied locally. Blocks across partitions until the action can
// be globally ordered or ctx expires.
func (e *Engine) Submit(ctx context.Context, update []byte, query []byte, sem types.Semantics) (Reply, error) {
	return e.SubmitKeyed(ctx, "", 0, update, query, sem)
}

// SubmitKeyed is Submit with an idempotency key: the engine applies at
// most one green action per (client, seq) pair, so the caller may retry
// the same operation — including through a different replica after a
// failover — and receive the original outcome instead of a second apply.
// An empty client submits unkeyed.
func (e *Engine) SubmitKeyed(ctx context.Context, client string, seq uint64, update []byte, query []byte, sem types.Semantics) (Reply, error) {
	ch, err := e.SubmitKeyedAsync(client, seq, update, query, sem)
	if err != nil {
		return Reply{}, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		return Reply{}, ctx.Err()
	case <-e.stop:
		return Reply{}, ErrClosed
	}
}

// SubmitAsync injects a client action and returns the reply channel.
func (e *Engine) SubmitAsync(update []byte, query []byte, sem types.Semantics) (<-chan Reply, error) {
	return e.SubmitKeyedAsync("", 0, update, query, sem)
}

// SubmitKeyedAsync is SubmitKeyed returning the reply channel.
func (e *Engine) SubmitKeyedAsync(client string, seq uint64, update []byte, query []byte, sem types.Semantics) (<-chan Reply, error) {
	if client != "" && seq == 0 {
		return nil, errors.New("core: keyed submission needs a sequence number >= 1")
	}
	a := types.Action{
		Type:      types.ActionUpdate,
		Semantics: sem,
		Client:    client,
		ClientSeq: seq,
		Update:    update,
		Query:     query,
	}
	if len(update) == 0 && len(query) > 0 {
		a.Type = types.ActionQuery
	}
	req := submitReq{action: a, ch: make(chan Reply, 1), at: time.Now()}
	select {
	case e.submitCh <- req:
		return req.ch, nil
	case <-e.stop:
		return nil, ErrClosed
	}
}

// Query reads at the requested consistency level. Strict queries are
// ordered like actions; weak and dirty queries answer immediately from
// local state (paper § 6).
func (e *Engine) Query(ctx context.Context, query []byte, level QueryLevel) (db.Result, error) {
	switch level {
	case QueryWeak:
		return e.db.QueryGreen(query)
	case QueryDirty:
		return e.db.QueryDirty(query)
	default:
		r, err := e.Submit(ctx, nil, query, types.SemStrict)
		if err != nil {
			return db.Result{}, err
		}
		if r.Err != "" {
			return db.Result{}, errors.New(r.Err)
		}
		return r.Result, nil
	}
}

// Checkpoint compacts the engine's log: the current state replaces the
// record history, bounding recovery time and disk usage. Requires a log
// implementing storage.Compactable.
func (e *Engine) Checkpoint(ctx context.Context) error {
	ch := make(chan error, 1)
	select {
	case e.checkpointCh <- ch:
	case <-e.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-ch:
		return err
	case <-e.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// GreenHistory returns the green order recorded by this server and the
// global sequence number of its first entry, consistently snapshotted —
// the input to order-invariant checks (Theorems 1 and 2). Safe to call
// from any goroutine, including after the engine stopped or crashed
// (fault-injection checkers read post-mortem histories).
func (e *Engine) GreenHistory() ([]types.ActionID, uint64) {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	return append([]types.ActionID(nil), e.history...), e.histBase + 1
}

// InstallHistory returns every primary component this server installed,
// in order. Safe to call from any goroutine, including post-mortem.
func (e *Engine) InstallHistory() []PrimComponent {
	e.installMu.Lock()
	defer e.installMu.Unlock()
	out := make([]PrimComponent, len(e.installs))
	for i, p := range e.installs {
		out[i] = PrimComponent{
			PrimIndex:    p.PrimIndex,
			AttemptIndex: p.AttemptIndex,
			Servers:      append([]types.ServerID(nil), p.Servers...),
		}
	}
	return out
}

// recordInstall snapshots an installed primary component (run loop only).
func (e *Engine) recordInstall(p PrimComponent) {
	e.installMu.Lock()
	e.installs = append(e.installs, PrimComponent{
		PrimIndex:    p.PrimIndex,
		AttemptIndex: p.AttemptIndex,
		Servers:      append([]types.ServerID(nil), p.Servers...),
	})
	e.installMu.Unlock()
}

// Watch registers interest in the engine's observable state: the channel
// receives a (coalesced) signal whenever the state machine transitions or
// an action turns green. The returned cancel func releases the watcher.
// Event-driven test waits use this instead of polling.
func (e *Engine) Watch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	e.watchMu.Lock()
	e.watchers[ch] = struct{}{}
	e.watchMu.Unlock()
	return ch, func() {
		e.watchMu.Lock()
		delete(e.watchers, ch)
		e.watchMu.Unlock()
	}
}

// notifyWatchers pokes every watcher without blocking.
func (e *Engine) notifyWatchers() {
	e.watchMu.Lock()
	for ch := range e.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	e.watchMu.Unlock()
}

// setState transitions the state machine and wakes watchers.
func (e *Engine) setState(s State) {
	if e.st == s {
		return
	}
	e.obs.Trace.Record(obs.EvState, uint64(e.st), uint64(s), 0)
	e.obs.Log.Info("state transition",
		"server", string(e.id), "conf", e.conf.ID, "from", e.st.String(), "state", s.String())
	e.st = s
	e.om.gState.Set(int64(s))
	e.notifyWatchers()
}

// Status reports the engine's current state (tests and tooling).
func (e *Engine) Status() Status {
	req := statusReq{ch: make(chan Status, 1)}
	select {
	case e.statusCh <- req:
		return <-req.ch
	case <-e.stop:
		return Status{}
	case <-e.done:
		return Status{}
	}
}

// RequestJoin admits a new replica: this server acts as its
// representative, creating a PERSISTENT_JOIN action; when the action
// turns green here, the returned snapshot captures the state the joiner
// must restore before running (paper § 5.1). Blocks until then.
func (e *Engine) RequestJoin(ctx context.Context, joiner types.ServerID) (*JoinSnapshot, error) {
	req := joinReq{joiner: joiner, ch: make(chan joinResp, 1)}
	select {
	case e.joinCh <- req:
	case <-e.stop:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.ch:
		return resp.snap, resp.err
	case <-e.stop:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Leave permanently removes this server from the replica set by ordering
// a PERSISTENT_LEAVE action. The call returns once the request is issued.
func (e *Engine) Leave(ctx context.Context) error {
	ch := make(chan error, 1)
	select {
	case e.leaveCh <- ch:
	case <-e.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-ch:
		return err
	case <-e.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the engine event loop: one goroutine owns all protocol state.
func (e *Engine) run() {
	defer close(e.done)
	defer func() {
		// An injected crash at a sync barrier unwinds the loop mid-handler
		// via a sentinel panic: the engine dies exactly at the barrier, as
		// a power failure would. Anything else is a real bug.
		if r := recover(); r != nil && r != errCrashPoint {
			panic(r)
		}
	}()
	events := e.gc.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			e.handleEvent(ev)
		case req := <-e.submitCh:
			e.handleSubmitBatch(e.collectSubmits(req))
		case req := <-e.joinCh:
			e.handleJoinRequest(req)
		case ch := <-e.leaveCh:
			e.handleLeave(ch)
		case req := <-e.statusCh:
			req.ch <- e.statusLocked()
		case ch := <-e.checkpointCh:
			ch <- e.checkpoint()
		case <-e.stop:
			return
		}
		// Publish run-loop-owned counts to the registry after every event,
		// so /metrics — served from other goroutines — stays current.
		e.syncGauges()
	}
}

func (e *Engine) statusLocked() Status {
	set := make([]types.ServerID, 0, len(e.serverSet))
	for s := range e.serverSet {
		set = append(set, s)
	}
	types.SortServerIDs(set)
	return Status{
		State:      e.st,
		Conf:       e.conf.Clone(),
		GreenCount: e.queue.greenCount(),
		RedCount:   e.queue.redCount(),
		WhiteBase:  e.queue.base,
		Prim:       e.prim,
		Vulnerable: e.vuln.Status,
		ServerSet:  set,
		Metrics:    e.metricsSnapshot(),
		InFlight:   len(e.pendingReply) + len(e.buffered),
		Sessions:   len(e.sessions),
	}
}

func (e *Engine) handleEvent(ev evs.Event) {
	switch t := ev.(type) {
	case evs.ViewChange:
		if t.Config.Transitional {
			e.onTransConf(t.Config)
		} else {
			e.onRegConf(t.Config)
		}
	case evs.Delivery:
		m, err := decodeEngineMsg(t.Payload)
		if err != nil {
			return // foreign traffic on the group; ignore
		}
		switch m.Kind {
		case emAction:
			if m.Action != nil {
				e.onAction(*m.Action)
			}
		case emBatch:
			e.onActionBatch(m.Batch)
		case emState:
			if m.State != nil {
				e.onStateMsg(*m.State)
			}
		case emCPC:
			if m.CPC != nil {
				e.onCPC(*m.CPC)
			}
		case emRetrans:
			if m.Retrans != nil {
				e.onRetrans(*m.Retrans)
			}
		case emSnapshot:
			if m.Snap != nil {
				e.onSnapshot(*m.Snap)
			}
		}
	}
}

// generate multicasts an action with Safe delivery (paper "generate
// action"). Runs on the sync writer as well as the loop; the multicast is
// thread-safe and the metrics counter is bumped at creation instead.
func (e *Engine) generate(a types.Action) {
	_ = multicastMsg(e.gc, engineMsg{Kind: emAction, Action: &a})
}

// generateBatch multicasts a bundle of freshly created actions once their
// records are durable: one Safe multicast — one position in the total
// order — for the whole bundle. Runs on the sync writer as well as the
// loop.
func (e *Engine) generateBatch(acts []types.Action) {
	if len(acts) == 1 {
		e.generate(acts[0])
		return
	}
	_ = multicastMsg(e.gc, engineMsg{Kind: emBatch, Batch: acts})
}

// collectSubmits assembles a submission batch around the request that
// woke the loop: first an opportunistic drain of whatever queued while
// the loop was busy, then — if a collection window is configured — a
// short bounded wait for closed-loop clients submitting in the same
// round. The cap keeps a batch one comfortable multicast.
func (e *Engine) collectSubmits(first submitReq) []submitReq {
	reqs := []submitReq{first}
	if e.maxBatch <= 1 {
		return reqs
	}
	for len(reqs) < e.maxBatch {
		select {
		case req := <-e.submitCh:
			reqs = append(reqs, req)
			continue
		default:
		}
		break
	}
	if e.batchDelay <= 0 || len(reqs) >= e.maxBatch {
		return e.noteFlush(reqs, obs.FlushDrain)
	}
	timer := time.NewTimer(e.batchDelay)
	defer timer.Stop()
	for len(reqs) < e.maxBatch {
		select {
		case req := <-e.submitCh:
			reqs = append(reqs, req)
		case <-timer.C:
			return e.noteFlush(reqs, obs.FlushTimer)
		case <-e.stop:
			return e.noteFlush(reqs, obs.FlushDrain)
		}
	}
	return e.noteFlush(reqs, obs.FlushFull)
}

// noteFlush records why and how large a submit batch flushed.
func (e *Engine) noteFlush(reqs []submitReq, reason int) []submitReq {
	if len(reqs) >= e.maxBatch {
		reason = obs.FlushFull
	}
	switch reason {
	case obs.FlushFull:
		e.om.flushFull.Inc()
	case obs.FlushTimer:
		e.om.flushTimer.Inc()
	default:
		e.om.flushDrain.Inc()
	}
	e.om.batchSize.Observe(float64(len(reqs)))
	e.obs.Trace.Record(obs.EvBatchFlush, uint64(len(reqs)), uint64(reason), 0)
	return reqs
}

// handleSubmit implements the Client req event for a single request (the
// batch pipeline with a batch of one).
func (e *Engine) handleSubmit(req submitReq) {
	e.handleSubmitBatch([]submitReq{req})
}

// handleSubmitBatch runs admission for each collected submission in
// order, then commits every action the batch created with ONE WAL append
// and ONE multicast: the per-action forced write and EVS round — the two
// dominant costs of the submit path — amortize over the batch, while
// dedup, admission control, and the query fast path keep their exact
// sequential semantics.
func (e *Engine) handleSubmitBatch(reqs []submitReq) {
	var acts []types.Action
	for _, req := range reqs {
		if a, created := e.admitSubmit(req); created {
			acts = append(acts, a)
		}
	}
	if len(acts) == 0 {
		return
	}
	e.logActions(acts)
	e.syncer.After(func() { e.generateBatch(acts) })
}

// admitSubmit vets one submission — dedup, admission control, the § 6
// query fast path, buffering outside Prim/NonPrim — and creates an
// action for it when one is due. The caller owns logging and multicast.
func (e *Engine) admitSubmit(req submitReq) (types.Action, bool) {
	if e.left {
		req.ch <- Reply{Err: ErrLeft.Error(), Retryable: true}
		return types.Action{}, false
	}
	if e.ioFailed {
		req.ch <- Reply{Err: "core: stable storage failed; refusing new actions", Retryable: true}
		return types.Action{}, false
	}
	if req.action.Client != "" {
		// Fast-path dedup: an already ordered (client, seq) answers from
		// the replicated session table; a retry of an action this server
		// generated but has not seen green yet attaches to the original's
		// pending reply instead of generating a second action.
		kind, ent := e.dedupLookup(req.action.Client, req.action.ClientSeq)
		if kind != dedupFresh {
			e.om.duplicates.Inc()
			e.obs.Trace.Record(obs.EvDedupHit, 1, 0, 0)
			req.ch <- dedupReply(kind, ent)
			return types.Action{}, false
		}
		if id, ok := e.inflight[inflightKey{req.action.Client, req.action.ClientSeq}]; ok {
			if _, pending := e.pendingReply[id]; pending {
				e.om.duplicates.Inc()
				e.obs.Trace.Record(obs.EvDedupHit, 2, 0, 0)
				e.pendingReply[id] = append(e.pendingReply[id], req.ch)
				return types.Action{}, false
			}
		}
	}
	if e.maxInFlight > 0 && len(e.pendingReply)+len(e.buffered) >= e.maxInFlight {
		e.om.overloads.Inc()
		e.obs.Trace.Record(obs.EvAdmissionReject, uint64(len(e.pendingReply)+len(e.buffered)), 0, 0)
		req.ch <- Reply{Err: ErrOverloaded.Error(), Retryable: true}
		return types.Action{}, false
	}
	// § 6 query optimization: a strict query-only request in the primary
	// component needs no ordered action message — it is answered from the
	// consistent green state as soon as every earlier action generated at
	// this server has applied.
	if e.st == RegPrim && req.action.Type == types.ActionQuery &&
		req.action.Semantics == types.SemStrict && len(req.action.Update) == 0 {
		if e.lastLocalPending.Zero() {
			e.answerQuery(req)
		} else {
			e.queryWait[e.lastLocalPending] = append(e.queryWait[e.lastLocalPending], req)
		}
		return types.Action{}, false
	}
	switch e.st {
	case RegPrim, NonPrim:
		return e.createAction(req), true
	default:
		e.buffered = append(e.buffered, req)
		return types.Action{}, false
	}
}

// answerQuery runs a query-only request against the green state.
func (e *Engine) answerQuery(req submitReq) {
	r := Reply{GreenSeq: e.queue.greenCount()}
	if res, err := e.db.QueryGreen(req.action.Query); err == nil {
		r.Result = res
	} else {
		r.Err = err.Error()
	}
	if !req.at.IsZero() {
		e.om.latency[types.SemStrict].ObserveDuration(time.Since(req.at))
	}
	req.ch <- r
}

// createAndGenerate assigns the next action index, writes the action to
// the ongoing queue, and multicasts it once the record is durable (the
// engine's one forced write per action). The forced write happens on the
// group-commit writer so the protocol loop never blocks on the disk.
func (e *Engine) createAndGenerate(req submitReq) {
	a := e.createAction(req)
	e.appendLog(logRecord{T: recOngoing, Action: &a})
	e.syncer.After(func() { e.generate(a) })
}

// createAction assigns the next action index and enters the action into
// the ongoing queue and reply/inflight routing. The caller owns the WAL
// append (possibly shared with other actions of a batch) and the
// multicast.
func (e *Engine) createAction(req submitReq) types.Action {
	e.actionIndex++
	a := req.action
	a.ID = types.ActionID{Server: e.id, Index: e.actionIndex}
	a.GreenLine = e.queue.greenCount()
	e.ongoing[a.ID] = a
	e.om.generated.Inc()
	if !req.at.IsZero() {
		e.submitMeta[a.ID] = submitMeta{at: req.at, sem: a.Semantics}
	}
	e.trackInflight(a, req.ch)
	e.lastLocalPending = a.ID
	return a
}

// logActions appends the ongoing records for freshly created actions:
// several actions of one batch share a single record (and, downstream,
// a single forced write).
func (e *Engine) logActions(acts []types.Action) {
	switch len(acts) {
	case 0:
	case 1:
		e.appendLog(logRecord{T: recOngoing, Action: &acts[0]})
	default:
		e.appendLog(logRecord{T: recOngoingBatch, Actions: acts})
	}
}

// handleBuffered drains requests buffered during exchange and
// construction (paper Handle_buff_requests): one forced write covers the
// batch, and the multicasts go out in MaxBatchActions-sized bundles.
func (e *Engine) handleBuffered() {
	if len(e.buffered) == 0 {
		return
	}
	batch := e.buffered
	e.buffered = nil
	acts := make([]types.Action, 0, len(batch))
	for _, req := range batch {
		acts = append(acts, e.createAction(req))
	}
	e.logActions(acts)
	max := max(e.maxBatch, 1)
	e.syncer.After(func() {
		for len(acts) > 0 {
			n := min(max, len(acts))
			e.generateBatch(acts[:n])
			acts = acts[n:]
		}
	})
}

// reply delivers the outcome to every locally pending waiter — the
// original submitter plus any same-node retries that attached while the
// action was in flight.
func (e *Engine) reply(id types.ActionID, r Reply) {
	chans, ok := e.pendingReply[id]
	if !ok {
		return
	}
	if r.Err == "" {
		e.observeLatency(id)
	} else {
		e.dropLatency(id)
	}
	delete(e.pendingReply, id)
	for _, ch := range chans {
		ch <- r
	}
}
