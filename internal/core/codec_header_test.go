package core

import (
	"strings"
	"testing"

	"evsdb/internal/types"
)

// The engine frame opens with [magic][version][kind]; these tests pin
// the header bytes and the loud rejection of mixed-version peers.

func TestEngineCodecFrameHeader(t *testing.T) {
	frame := encodeEngineMsg(engineMsg{Kind: emCPC, CPC: &cpcMsg{
		Server: "s00", Conf: types.ConfID{Counter: 1, Proposer: "s00"},
	}})
	if len(frame) < 3 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	if frame[0] != engineMagic {
		t.Fatalf("frame[0] = %#x, want magic %#x", frame[0], engineMagic)
	}
	if frame[1] != engineCodecV1 {
		t.Fatalf("frame[1] = %d, want version %d", frame[1], engineCodecV1)
	}
	if frame[2] != byte(emCPC) {
		t.Fatalf("frame[2] = %d, want kind %d", frame[2], emCPC)
	}
}

func TestEngineCodecVersionMismatchIsLoud(t *testing.T) {
	frame := encodeEngineMsg(engineMsg{Kind: emCPC, CPC: &cpcMsg{Server: "s00"}})
	frame[1] = engineCodecV1 + 1
	_, err := decodeEngineMsg(frame)
	if err == nil {
		t.Fatal("decode accepted a future-version frame")
	}
	if !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("version error not loud enough: %v", err)
	}
}

func TestEngineCodecRejectsWrongMagic(t *testing.T) {
	frame := encodeEngineMsg(engineMsg{Kind: emCPC, CPC: &cpcMsg{Server: "s00"}})
	frame[0] ^= 0xFF
	if _, err := decodeEngineMsg(frame); err == nil {
		t.Fatal("decode accepted a frame with the wrong magic byte")
	}
}
