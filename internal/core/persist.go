package core

import (
	"encoding/json"
	"fmt"

	"evsdb/internal/obs"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// Log record types. The engine appends records continuously (page-cache
// speed) and forces them at the paper's "** sync to disk" points plus
// once per locally generated action.
const (
	recRed        = "red"        // an action entered the queue
	recGreen      = "green"      // an action was promoted to green
	recOngoing    = "ongoing"    // a locally generated action (paper ongoingQueue)
	recState      = "state"      // engine metadata snapshot at a sync point
	recCheckpoint = "checkpoint" // full base state (join bootstrap / compaction)
	// Batch records: several actions of one ActionBatch sharing a single
	// append (and forced write). Replay expands them in stored order, so a
	// batch record is exactly equivalent to its per-action records.
	recRedBatch     = "redBatch"     // a delivered batch entered the queue
	recGreenBatch   = "greenBatch"   // a fused run was promoted to green
	recOngoingBatch = "ongoingBatch" // a locally created submission batch
)

type logRecord struct {
	T        string           `json:"t"`
	Action   *types.Action    `json:"action,omitempty"`
	Actions  []types.Action   `json:"actions,omitempty"` // recRedBatch / recOngoingBatch
	ID       *types.ActionID  `json:"id,omitempty"`
	IDs      []types.ActionID `json:"ids,omitempty"` // recGreenBatch
	GreenSeq uint64           `json:"greenSeq,omitempty"`
	State    *persistState    `json:"state,omitempty"`
	Snap     *JoinSnapshot    `json:"snap,omitempty"`
}

// persistState is the engine metadata written at sync points.
type persistState struct {
	ActionIndex  uint64                    `json:"actionIndex"`
	AttemptIndex uint64                    `json:"attemptIndex"`
	Prim         PrimComponent             `json:"prim"`
	Vuln         Vulnerable                `json:"vuln"`
	Yellow       Yellow                    `json:"yellow"`
	GreenKnown   map[types.ServerID]uint64 `json:"greenKnown"`
	Servers      []types.ServerID          `json:"servers"`
}

// appendLog writes one record to the log tail (not yet durable).
func (e *Engine) appendLog(rec logRecord) {
	if e.replaying {
		return
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("core: marshal log record: %v", err))
	}
	if err := e.log.Append(buf); err != nil {
		e.ioFailed = true
	}
}

// errCrashPoint is the sentinel panic used to halt the engine goroutine
// exactly at a "** sync to disk" barrier when a test hook injects a crash.
var errCrashPoint = fmt.Errorf("core: crash injected at sync barrier")

// syncLog forces the log (a paper "** sync to disk" point). The point
// name identifies which barrier this is; when a SyncHook is installed and
// asks for a crash, the engine unwinds via errCrashPoint and never
// executes the protocol step that follows the barrier — exactly the
// window the paper's vulnerable/yellow machinery exists to cover.
func (e *Engine) syncLog(point string) {
	if e.replaying {
		return
	}
	if err := e.log.Sync(); err != nil {
		e.ioFailed = true
		e.obs.Log.Error("stable storage failed at sync barrier",
			"server", string(e.id), "conf", e.conf.ID, "state", e.st.String(), "point", point, "err", err)
	}
	if c := e.om.walSync[point]; c != nil {
		c.Inc()
	}
	e.obs.Trace.Record(obs.EvWALSync, uint64(obs.SyncPointOf(point)), 0, 0)
	if e.syncHook != nil && e.syncHook(point) {
		panic(errCrashPoint)
	}
}

// persistState appends the metadata snapshot record.
func (e *Engine) persistState() {
	if e.replaying {
		return
	}
	servers := make([]types.ServerID, 0, len(e.serverSet))
	for s := range e.serverSet {
		servers = append(servers, s)
	}
	types.SortServerIDs(servers)
	known := make(map[types.ServerID]uint64, len(e.greenKnown))
	for s, v := range e.greenKnown {
		known[s] = v
	}
	e.appendLog(logRecord{T: recState, State: &persistState{
		ActionIndex:  e.actionIndex,
		AttemptIndex: e.attemptIndex,
		Prim:         e.prim,
		Vuln:         e.vuln,
		Yellow:       e.yellow,
		GreenKnown:   known,
		Servers:      servers,
	}})
}

// checkpoint compacts the log: the engine's full current state — a
// snapshot plus the red zone and metadata — replaces the record history.
// Recovery replays from the checkpoint instead of from genesis.
func (e *Engine) checkpoint() error {
	compactable, ok := e.log.(storage.Compactable)
	if !ok {
		return fmt.Errorf("core: log does not support compaction")
	}
	snap := e.buildJoinSnapshot()
	records := make([][]byte, 0, e.queue.redCount()+2)
	mustMarshal := func(rec logRecord) []byte {
		buf, err := json.Marshal(rec)
		if err != nil {
			panic(fmt.Sprintf("core: marshal checkpoint record: %v", err))
		}
		return buf
	}
	records = append(records, mustMarshal(logRecord{T: recCheckpoint, Snap: snap}))
	for _, a := range e.queue.reds() {
		a := a
		records = append(records, mustMarshal(logRecord{T: recRed, Action: &a}))
	}
	// Locally created actions that have not entered the queue yet must
	// survive compaction: they may never have left this machine.
	for _, a := range e.ongoing {
		a := a
		records = append(records, mustMarshal(logRecord{T: recOngoing, Action: &a}))
	}
	servers := make([]types.ServerID, 0, len(e.serverSet))
	for s := range e.serverSet {
		servers = append(servers, s)
	}
	types.SortServerIDs(servers)
	records = append(records, mustMarshal(logRecord{T: recState, State: &persistState{
		ActionIndex:  e.actionIndex,
		AttemptIndex: e.attemptIndex,
		Prim:         e.prim,
		Vuln:         e.vuln,
		Yellow:       e.yellow,
		GreenKnown:   e.greenKnown,
		Servers:      servers,
	}}))
	if err := compactable.Rewrite(records); err != nil {
		e.ioFailed = true
		return fmt.Errorf("compact log: %w", err)
	}
	return nil
}

// recover rebuilds engine state from the durable log (paper CodeSegment
// A.13): replay every record, then re-mark as red any locally generated
// action that survived in the ongoing queue but had not entered the
// queue. The server restarts in NonPrim; its vulnerable record — if it
// crashed while vulnerable — survives and keeps it from presenting itself
// as knowledgeable until an exchange resolves the attempt.
func (e *Engine) recover() error {
	records, err := e.log.Records()
	if err != nil {
		return fmt.Errorf("read log: %w", err)
	}
	e.replaying = true
	defer func() { e.replaying = false }()

	ongoing := make(map[types.ActionID]types.Action)
	for i, buf := range records {
		var rec logRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			return fmt.Errorf("decode log record %d: %w", i, err)
		}
		switch rec.T {
		case recCheckpoint:
			if rec.Snap != nil {
				if err := e.restoreSnapshot(rec.Snap); err != nil {
					return fmt.Errorf("record %d: %w", i, err)
				}
			}
		case recRed:
			if rec.Action != nil {
				a := *rec.Action
				if e.markRed(a, false) {
					e.replayTrackRed(a)
				}
			}
		case recRedBatch:
			for _, a := range rec.Actions {
				if e.markRed(a, false) {
					e.replayTrackRed(a)
				}
			}
		case recGreen:
			if rec.ID != nil {
				if a, ok := e.queue.get(*rec.ID); ok && !e.queue.isGreen(a.ID) {
					e.applyGreen(a)
				}
			}
		case recGreenBatch:
			for _, id := range rec.IDs {
				if a, ok := e.queue.get(id); ok && !e.queue.isGreen(a.ID) {
					e.applyGreen(a)
				}
			}
		case recOngoing:
			if rec.Action != nil {
				ongoing[rec.Action.ID] = *rec.Action
				e.ongoing[rec.Action.ID] = *rec.Action
				if rec.Action.ID.Index > e.actionIndex {
					e.actionIndex = rec.Action.ID.Index
				}
			}
		case recOngoingBatch:
			for i := range rec.Actions {
				a := rec.Actions[i]
				ongoing[a.ID] = a
				e.ongoing[a.ID] = a
				if a.ID.Index > e.actionIndex {
					e.actionIndex = a.ID.Index
				}
			}
		case recState:
			if rec.State != nil {
				e.restoreState(rec.State)
			}
		}
	}
	// Ongoing actions that never reached the queue become red again; the
	// next exchange propagates them (they are never lost, paper § A.13).
	for idx := e.redCut[e.id] + 1; ; idx++ {
		a, ok := ongoing[types.ActionID{Server: e.id, Index: idx}]
		if !ok {
			break
		}
		e.markRed(a, false)
	}
	e.st = NonPrim
	e.rebuildDirtyOverlay()
	return nil
}

// replayTrackRed redoes the eager application of relaxed-semantics
// actions during replay (their green records will skip re-application).
func (e *Engine) replayTrackRed(a types.Action) {
	if a.Type != types.ActionUpdate && a.Type != types.ActionQuery {
		return
	}
	if a.Semantics.Relaxed() {
		if a.Client != "" {
			if kind, _ := e.dedupLookup(a.Client, a.ClientSeq); kind != dedupFresh {
				// A checkpoint earlier in the log already incorporates
				// this idempotency key: re-applying would double-apply.
				return
			}
		}
		if len(a.Update) > 0 {
			_ = e.db.Apply(a.Update)
		}
		e.appliedRed[a.ID] = true
		if a.Client != "" {
			e.eagerApplied[eagerKey(a.Client, a.ClientSeq)] = true
		}
	}
}

// restoreState loads a metadata snapshot record.
func (e *Engine) restoreState(ps *persistState) {
	if ps.ActionIndex > e.actionIndex {
		e.actionIndex = ps.ActionIndex
	}
	e.attemptIndex = ps.AttemptIndex
	e.prim = ps.Prim
	e.vuln = ps.Vuln
	e.yellow = ps.Yellow
	for s, v := range ps.GreenKnown {
		if v > e.greenKnown[s] {
			e.greenKnown[s] = v
		}
	}
	if len(ps.Servers) > 0 {
		e.serverSet = make(map[types.ServerID]bool, len(ps.Servers))
		for _, s := range ps.Servers {
			e.serverSet[s] = true
		}
	}
}
