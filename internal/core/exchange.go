package core

import (
	"evsdb/internal/types"
)

// retransPlan is the deterministic assignment of retransmission work
// computed identically by every member from the full set of state
// messages (paper A.4/A.6 "Retrans" and "turn to retransmit").
type retransPlan struct {
	// greenTarget is the green count every member should reach.
	greenTarget uint64
	// maxGreen is the highest green count reported; if greenTarget is
	// lower, some green positions have no live holder (white-collected at
	// every knowledgeable member present) and the components' green
	// states cannot be equalized here — quorum is refused.
	maxGreen uint64
	// greenChunks assigns contiguous green ranges to retransmitters.
	greenChunks []greenChunk
	// redRanges assigns per-creator red retransmission.
	redRanges []redRange
	// maxRedCut is the union red cut every member should reach.
	maxRedCut map[types.ServerID]uint64
}

type greenChunk struct {
	from, to uint64 // green sequence numbers, inclusive
	holder   types.ServerID
}

type redRange struct {
	creator  types.ServerID
	from, to uint64 // action indexes, inclusive
	holder   types.ServerID
}

func (p *retransPlan) greensBlocked() bool { return p.greenTarget < p.maxGreen }

// computeRetransPlan derives the retransmission plan from the collected
// state messages.
func (e *Engine) computeRetransPlan() *retransPlan {
	plan := &retransPlan{maxRedCut: make(map[types.ServerID]uint64)}

	minGreen := ^uint64(0)
	for _, s := range e.stateMsgs {
		if s.GreenCount < minGreen {
			minGreen = s.GreenCount
		}
		if s.GreenCount > plan.maxGreen {
			plan.maxGreen = s.GreenCount
		}
	}
	// Assign a holder per green position: the member with the largest
	// green count whose white-collection base is below the position;
	// ties break to the lowest id. Runs of equal holders form chunks.
	plan.greenTarget = plan.maxGreen
	var cur *greenChunk
	for p := minGreen + 1; p <= plan.maxGreen; p++ {
		holder, ok := e.greenHolder(p)
		if !ok {
			// Unservable hole: equalization stops just below it.
			plan.greenTarget = p - 1
			break
		}
		if cur != nil && cur.holder == holder && cur.to == p-1 {
			cur.to = p
			continue
		}
		plan.greenChunks = append(plan.greenChunks, greenChunk{from: p, to: p, holder: holder})
		cur = &plan.greenChunks[len(plan.greenChunks)-1]
	}

	// Red ranges: per creator, from the minimum to the maximum red cut,
	// retransmitted by the member holding the most (ties to lowest id).
	creators := make(map[types.ServerID]bool)
	for _, s := range e.stateMsgs {
		for c := range s.RedCut {
			creators[c] = true
		}
	}
	for c := range creators {
		minCut := ^uint64(0)
		var maxCut uint64
		for _, m := range e.conf.Members {
			cut := e.stateMsgs[m].RedCut[c]
			if cut < minCut {
				minCut = cut
			}
			if cut > maxCut {
				maxCut = cut
			}
		}
		var holder types.ServerID
		for _, m := range e.conf.Members {
			if e.stateMsgs[m].RedCut[c] == maxCut && (holder == "" || m < holder) {
				holder = m
			}
		}
		plan.maxRedCut[c] = maxCut
		if maxCut > minCut {
			plan.redRanges = append(plan.redRanges, redRange{
				creator: c,
				from:    minCut + 1,
				to:      maxCut,
				holder:  holder,
			})
		}
	}
	return plan
}

// greenHolder picks the retransmitter for one green position.
func (e *Engine) greenHolder(p uint64) (types.ServerID, bool) {
	var holder types.ServerID
	var holderCount uint64
	for _, m := range e.conf.Members {
		s := e.stateMsgs[m]
		if s.GreenCount < p || s.BaseGreen >= p {
			continue
		}
		if holder == "" || s.GreenCount > holderCount ||
			(s.GreenCount == holderCount && m < holder) {
			holder = m
			holderCount = s.GreenCount
		}
	}
	return holder, holder != ""
}

// retransmitShare multicasts this member's assigned green chunks and red
// ranges (paper Retrans()).
func (e *Engine) retransmitShare() {
	for _, ch := range e.plan.greenChunks {
		if ch.holder != e.id {
			continue
		}
		for p := ch.from; p <= ch.to; p++ {
			a, ok := e.queue.greenAt(p)
			if !ok {
				continue // collected white under us; every member has it
			}
			e.sendRetrans(retransMsg{Action: a, Green: true, GreenSeq: p})
		}
	}
	for _, rr := range e.plan.redRanges {
		if rr.holder != e.id {
			continue
		}
		for idx := rr.from; idx <= rr.to; idx++ {
			a, ok := e.queue.get(types.ActionID{Server: rr.creator, Index: idx})
			if !ok {
				continue
			}
			e.sendRetrans(retransMsg{Action: a})
		}
	}
}

func (e *Engine) sendRetrans(r retransMsg) {
	e.om.retransmitted.Inc()
	_ = multicastMsg(e.gc, engineMsg{Kind: emRetrans, Retrans: &r})
}

// onRetrans handles a retransmitted action (paper A.6, OR-3): the
// envelope says whether the action is green (with its exact global
// position) or red.
func (e *Engine) onRetrans(r retransMsg) {
	if e.st != ExchangeStates && e.st != ExchangeActions && e.st != NonPrim {
		// Stale retransmission from a previous exchange; marking red is
		// always safe if it extends the FIFO cut.
		e.markRed(r.Action, false)
		return
	}
	if r.Green {
		e.acceptGreenRetrans(r)
	} else {
		e.markRed(r.Action, false)
	}
	e.maybeEndRetrans()
}

// acceptGreenRetrans applies green retransmissions strictly in global
// order, buffering out-of-order arrivals (chunks from different holders
// may interleave).
func (e *Engine) acceptGreenRetrans(r retransMsg) {
	have := e.queue.greenCount()
	switch {
	case r.GreenSeq <= have:
		return // already known green
	case r.GreenSeq == have+1:
		e.applyGreenRetrans(r.Action)
		// Drain any buffered successors.
		for {
			next, ok := e.pendingGreen[e.queue.greenCount()+1]
			if !ok {
				break
			}
			delete(e.pendingGreen, e.queue.greenCount()+1)
			e.applyGreenRetrans(next)
		}
	default:
		e.pendingGreen[r.GreenSeq] = r.Action
	}
}

func (e *Engine) applyGreenRetrans(a types.Action) {
	if !e.markRed(a, false) && !e.queue.has(a.ID) {
		return // cannot extend the FIFO cut: drop (will be re-requested)
	}
	if e.queue.isGreen(a.ID) {
		return
	}
	e.applyGreen(a)
}

// maybeEndRetrans checks whether this member holds everything the plan
// promises and, if so, runs End_of_retrans.
func (e *Engine) maybeEndRetrans() {
	if e.st != ExchangeActions || e.plan == nil {
		return
	}
	if e.queue.greenCount() < e.plan.greenTarget {
		return
	}
	for c, cut := range e.plan.maxRedCut {
		if e.redCut[c] < cut {
			return
		}
	}
	e.endOfRetrans()
}

// computeKnowledge implements the paper's ComputeKnowledge procedure.
func (e *Engine) computeKnowledge() {
	// 1. Adopt the most recent primary component; find the updated group.
	var best PrimComponent
	first := true
	for _, s := range e.stateMsgs {
		if first || best.Less(s.Prim) {
			best = s.Prim
			first = false
		}
	}
	var updated []types.ServerID
	for _, m := range e.conf.Members {
		if s, ok := e.stateMsgs[m]; ok && s.Prim.Equal(best) {
			updated = append(updated, m)
		}
	}
	e.prim = PrimComponent{
		PrimIndex:    best.PrimIndex,
		AttemptIndex: best.AttemptIndex,
		Servers:      append([]types.ServerID(nil), best.Servers...),
	}
	var attempt uint64
	var valid []types.ServerID
	for _, m := range updated {
		s := e.stateMsgs[m]
		if s.AttemptIndex > attempt {
			attempt = s.AttemptIndex
		}
		if s.Yellow.Status {
			valid = append(valid, m)
		}
	}
	e.attemptIndex = attempt

	// 2. Yellow knowledge: the intersection of the valid group's yellow
	// sets, preserving the (shared) order.
	if len(valid) > 0 {
		inAll := func(id types.ActionID) bool {
			for _, m := range valid {
				found := false
				for _, x := range e.stateMsgs[m].Yellow.Set {
					if x == id {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		var set []types.ActionID
		for _, id := range e.stateMsgs[valid[0]].Yellow.Set {
			if inAll(id) {
				set = append(set, id)
			}
		}
		e.yellow = Yellow{Status: true, Set: set}
	} else {
		e.yellow = Yellow{}
	}

	// 3. Invalidate vulnerability that is provably moot: the server is
	// outside the newest primary's membership, or some member of its
	// attempt set reports a non-identical vulnerable record.
	vulnMap := make(map[types.ServerID]Vulnerable, len(e.stateMsgs))
	for id, s := range e.stateMsgs {
		v := s.Vuln
		v.Set = append([]types.ServerID(nil), s.Vuln.Set...)
		v.Bits = make(map[types.ServerID]bool, len(s.Vuln.Bits))
		for b, set := range s.Vuln.Bits {
			v.Bits[b] = set
		}
		vulnMap[id] = v
	}
	primSet := make(map[types.ServerID]bool, len(e.prim.Servers))
	for _, s := range e.prim.Servers {
		primSet[s] = true
	}
	for id, v := range vulnMap {
		if !v.Status {
			continue
		}
		if !primSet[id] {
			v.Status = false
			vulnMap[id] = v
			continue
		}
		for _, q := range v.Set {
			qv, ok := vulnMap[q]
			if !ok {
				continue // q did not report; cannot conclude anything
			}
			if !qv.Status || !qv.sameAttempt(v) {
				v.Status = false
				vulnMap[id] = v
				break
			}
		}
	}

	// 4. Union the bits of servers vulnerable to the same attempt (each
	// reporter proves it did not install); when every member of the
	// attempt set is accounted for, the attempt provably failed
	// everywhere and the vulnerability dissolves. Unions are computed
	// against a pre-pass snapshot so the outcome is independent of map
	// iteration order.
	snapshot := make(map[types.ServerID]Vulnerable, len(vulnMap))
	for id, v := range vulnMap {
		snapshot[id] = v
	}
	for id, v := range vulnMap {
		if !v.Status {
			continue
		}
		union := make(map[types.ServerID]bool, len(v.Set))
		for b, set := range v.Bits {
			if set {
				union[b] = true
			}
		}
		for q, qv := range snapshot {
			if qv.Status && qv.sameAttempt(v) {
				union[q] = true
				for b, set := range qv.Bits {
					if set {
						union[b] = true
					}
				}
			}
		}
		v.Bits = union
		all := true
		for _, m := range v.Set {
			if !union[m] {
				all = false
				break
			}
		}
		if all {
			v.Status = false
		}
		vulnMap[id] = v
	}

	e.vulnByServer = vulnMap
	if mine, ok := vulnMap[e.id]; ok {
		e.vuln = mine
	}
}

// isQuorum implements the paper's IsQuorum check, extended with the green
// equalization requirement (a primary must not install while members'
// green states differ).
func (e *Engine) isQuorum() bool {
	if e.plan != nil && e.plan.greensBlocked() {
		return false
	}
	for _, m := range e.conf.Members {
		if v, ok := e.vulnByServer[m]; ok && v.Status {
			return false
		}
	}
	return e.quo.IsQuorum(e.conf.Members, e.prim.Servers)
}
