package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"evsdb/internal/types"
)

func mkAction(server string, idx uint64) types.Action {
	return types.Action{ID: types.ActionID{Server: types.ServerID(server), Index: idx}}
}

func TestQueueAppendAndColor(t *testing.T) {
	q := newActionsQueue()
	a := mkAction("s1", 1)
	q.appendRed(a)
	if !q.has(a.ID) || q.isGreen(a.ID) {
		t.Fatal("fresh action should be red")
	}
	if q.redCount() != 1 || q.greenCount() != 0 {
		t.Fatalf("counts: red=%d green=%d", q.redCount(), q.greenCount())
	}
	seq, err := q.promote(a.ID)
	if err != nil || seq != 1 {
		t.Fatalf("promote: %d %v", seq, err)
	}
	if !q.isGreen(a.ID) || q.greenCount() != 1 || q.redCount() != 0 {
		t.Fatal("promotion bookkeeping wrong")
	}
}

func TestQueuePromotePreservesRedOrder(t *testing.T) {
	q := newActionsQueue()
	var reds []types.Action
	for i := uint64(1); i <= 5; i++ {
		a := mkAction("s1", i)
		q.appendRed(a)
		reds = append(reds, a)
	}
	// Promote the middle action: remaining reds keep their relative order.
	if _, err := q.promote(reds[2].ID); err != nil {
		t.Fatal(err)
	}
	got := q.reds()
	want := []uint64{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("red count %d", len(got))
	}
	for i, w := range want {
		if got[i].ID.Index != w {
			t.Fatalf("red[%d] = %v, want index %d", i, got[i].ID, w)
		}
	}
}

func TestQueuePromoteIdempotent(t *testing.T) {
	q := newActionsQueue()
	a := mkAction("s1", 1)
	q.appendRed(a)
	s1, _ := q.promote(a.ID)
	s2, err := q.promote(a.ID)
	if err != nil || s1 != s2 {
		t.Fatalf("re-promotion: %d vs %d (%v)", s1, s2, err)
	}
	if q.greenCount() != 1 {
		t.Fatalf("green count %d", q.greenCount())
	}
}

func TestQueueGreenAt(t *testing.T) {
	q := newActionsQueue()
	for i := uint64(1); i <= 3; i++ {
		a := mkAction("s1", i)
		q.appendRed(a)
		q.promote(a.ID)
	}
	for i := uint64(1); i <= 3; i++ {
		a, ok := q.greenAt(i)
		if !ok || a.ID.Index != i {
			t.Fatalf("greenAt(%d) = %v %v", i, a, ok)
		}
	}
	if _, ok := q.greenAt(0); ok {
		t.Fatal("greenAt(0) succeeded")
	}
	if _, ok := q.greenAt(4); ok {
		t.Fatal("greenAt beyond count succeeded")
	}
}

func TestQueueDiscardWhite(t *testing.T) {
	q := newActionsQueue()
	for i := uint64(1); i <= 10; i++ {
		a := mkAction("s1", i)
		q.appendRed(a)
		q.promote(a.ID)
	}
	q.appendRed(mkAction("s2", 1)) // one red survivor
	q.discardWhite(7)
	if q.base != 7 || q.greenCount() != 10 {
		t.Fatalf("base=%d greenCount=%d", q.base, q.greenCount())
	}
	if _, ok := q.greenAt(7); ok {
		t.Fatal("discarded green still accessible")
	}
	if a, ok := q.greenAt(8); !ok || a.ID.Index != 8 {
		t.Fatalf("greenAt(8) after discard: %v %v", a, ok)
	}
	if q.redCount() != 1 {
		t.Fatalf("red count %d after discard", q.redCount())
	}
	// Promotion still assigns globally consistent sequence numbers.
	seq, err := q.promote(types.ActionID{Server: "s2", Index: 1})
	if err != nil || seq != 11 {
		t.Fatalf("promote after discard: %d %v", seq, err)
	}
}

func TestQueueDiscardClampsToGreens(t *testing.T) {
	q := newActionsQueue()
	a := mkAction("s1", 1)
	q.appendRed(a)
	q.promote(a.ID)
	q.discardWhite(99)
	if q.base != 1 {
		t.Fatalf("base=%d, want clamp to 1", q.base)
	}
}

func TestQueueRedsCanonicalOrder(t *testing.T) {
	q := newActionsQueue()
	q.appendRed(mkAction("s2", 1))
	q.appendRed(mkAction("s1", 2))
	q.appendRed(mkAction("s1", 1))
	// Delivery (local red) order differs from canonical action-id order.
	// Note appendRed is used directly here; the engine's FIFO cut
	// normally prevents s1:2 arriving before s1:1.
	got := q.redsCanonical()
	want := []types.ActionID{
		{Server: "s1", Index: 1}, {Server: "s1", Index: 2}, {Server: "s2", Index: 1},
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("canonical[%d] = %v, want %v", i, got[i].ID, want[i])
		}
	}
}

// TestQueuePromotionSequencesMatch is the Theorem 1 micro-property: two
// queues that promote the same ids in the same order produce identical
// green sequences, regardless of red arrival interleavings.
func TestQueuePromotionSequencesMatch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var acts []types.Action
		for s := 0; s < 3; s++ {
			for i := uint64(1); i <= 5; i++ {
				acts = append(acts, mkAction(fmt.Sprintf("s%d", s), i))
			}
		}
		q1, q2 := newActionsQueue(), newActionsQueue()
		// Different arrival (red) orders, FIFO per creator.
		insertShuffled := func(q *actionsQueue) {
			next := map[types.ServerID]uint64{}
			pending := append([]types.Action(nil), acts...)
			for len(pending) > 0 {
				i := rng.Intn(len(pending))
				a := pending[i]
				if next[a.ID.Server]+1 == a.ID.Index {
					q.appendRed(a)
					next[a.ID.Server] = a.ID.Index
					pending = append(pending[:i], pending[i+1:]...)
				}
			}
		}
		insertShuffled(q1)
		insertShuffled(q2)
		// Same promotion order (the canonical one).
		order := q1.redsCanonical()
		for _, a := range order {
			s1, err1 := q1.promote(a.ID)
			s2, err2 := q2.promote(a.ID)
			if err1 != nil || err2 != nil || s1 != s2 {
				return false
			}
		}
		for i := uint64(1); i <= uint64(len(acts)); i++ {
			a1, ok1 := q1.greenAt(i)
			a2, ok2 := q2.greenAt(i)
			if !ok1 || !ok2 || a1.ID != a2.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
