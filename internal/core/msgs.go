package core

import (
	"evsdb/internal/types"
)

// PrimComponent identifies the last primary component a server knows of
// (paper, Appendix A "primComponent").
type PrimComponent struct {
	// PrimIndex counts installed primary components.
	PrimIndex uint64 `json:"primIndex"`
	// AttemptIndex is the attempt by which the primary was installed.
	AttemptIndex uint64 `json:"attemptIndex"`
	// Servers is the membership of that primary component.
	Servers []types.ServerID `json:"servers"`
}

// Equal reports record identity (used by updatedGroup computation).
func (p PrimComponent) Equal(o PrimComponent) bool {
	return p.PrimIndex == o.PrimIndex &&
		p.AttemptIndex == o.AttemptIndex &&
		types.EqualMembers(p.Servers, o.Servers)
}

// Less orders primary components by recency.
func (p PrimComponent) Less(o PrimComponent) bool {
	if p.PrimIndex != o.PrimIndex {
		return p.PrimIndex < o.PrimIndex
	}
	return p.AttemptIndex < o.AttemptIndex
}

// Vulnerable records the status of the last installation attempt this
// server agreed to (paper § 5, Appendix A "vulnerable"). A server that
// generated a CPC message is vulnerable — it does not know how the
// attempt ended — until it has complete knowledge on persistent storage.
type Vulnerable struct {
	Status       bool                    `json:"status"` // true = Valid
	PrimIndex    uint64                  `json:"primIndex"`
	AttemptIndex uint64                  `json:"attemptIndex"`
	Set          []types.ServerID        `json:"set"`
	Bits         map[types.ServerID]bool `json:"bits"`
}

// sameAttempt reports whether two records describe the same attempt.
func (v Vulnerable) sameAttempt(o Vulnerable) bool {
	return v.PrimIndex == o.PrimIndex && v.AttemptIndex == o.AttemptIndex
}

// Yellow is the set of actions delivered in a transitional configuration
// of a primary component (paper Fig. 3): their order is known unless the
// installation failed everywhere.
type Yellow struct {
	Status bool             `json:"status"` // true = Valid
	Set    []types.ActionID `json:"set"`    // ordered
}

type engineMsgKind int

const (
	emAction engineMsgKind = iota + 1
	emState
	emCPC
	emRetrans
	emSnapshot
	// emBatch carries an ActionBatch: several actions created at one
	// server, coalesced into a single Safe multicast. The batch occupies
	// one position in the total order; receivers unpack it and process
	// the inner actions in batch order, so every server observes the same
	// expanded sequence (see onActionBatch).
	emBatch
)

// stateMsg is the end-to-end state exchanged once per view change
// (paper, Appendix A "State message"). This single round replaces the
// per-action acknowledgments of 2PC and COReL.
type stateMsg struct {
	Server types.ServerID `json:"server"`
	Conf   types.ConfID   `json:"conf"`
	// Round numbers the exchange within this configuration: a § 5.2
	// catch-up snapshot restarts the exchange in round+1, and stale state
	// messages from the superseded round are discarded.
	Round uint64 `json:"round,omitempty"`

	// RedCut[s] is the index of the last action created by s this server
	// holds.
	RedCut map[types.ServerID]uint64 `json:"redCut"`
	// GreenCount is the number of actions this server has marked green.
	GreenCount uint64 `json:"greenCount"`
	// BaseGreen counts greens discarded as white; the server can only
	// retransmit green positions in (BaseGreen, GreenCount].
	BaseGreen uint64 `json:"baseGreen"`
	// GreenSeqKnown[s] is the highest green count known reached at s
	// (the paper's greenLines, carried as counts).
	GreenSeqKnown map[types.ServerID]uint64 `json:"greenSeqKnown"`

	AttemptIndex uint64        `json:"attemptIndex"`
	Prim         PrimComponent `json:"prim"`
	Vuln         Vulnerable    `json:"vuln"`
	Yellow       Yellow        `json:"yellow"`
}

// cpcMsg is the Create Primary Component message (paper § 3.1).
type cpcMsg struct {
	Server types.ServerID `json:"server"`
	Conf   types.ConfID   `json:"conf"`
}

// snapMsg carries a § 5.2 catch-up snapshot: when the exchange discovers
// a green gap with no live holder (a member recovered below the
// component's white-collection base), the most knowledgeable member
// transfers its full green state and the exchange restarts one round
// later.
type snapMsg struct {
	Server types.ServerID `json:"server"`
	Conf   types.ConfID   `json:"conf"`
	Round  uint64         `json:"round"`
	Snap   *JoinSnapshot  `json:"snap"`
}

// retransMsg carries one action retransmitted during the exchange phase,
// tagged with the knowledge level the receiver must assign (paper OR-3).
type retransMsg struct {
	Action types.Action `json:"action"`
	// Green marks an action retransmitted from the green prefix;
	// GreenSeq is its global green sequence number.
	Green    bool   `json:"green,omitempty"`
	GreenSeq uint64 `json:"greenSeq,omitempty"`
}

// engineMsg is the envelope for all replication-engine traffic. Every
// engine message is multicast with Safe delivery. Encoding and decoding
// live in codec.go (versioned binary frames for the hot kinds, JSON
// bodies for the rare membership/exchange kinds).
type engineMsg struct {
	Kind    engineMsgKind  `json:"kind"`
	Action  *types.Action  `json:"action,omitempty"`
	Batch   []types.Action `json:"batch,omitempty"`
	State   *stateMsg      `json:"state,omitempty"`
	CPC     *cpcMsg        `json:"cpc,omitempty"`
	Retrans *retransMsg    `json:"retrans,omitempty"`
	Snap    *snapMsg       `json:"snap,omitempty"`
}
