package bench

import (
	"strings"
	"testing"
	"time"
)

func TestRunEachSystem(t *testing.T) {
	for _, sys := range []System{Engine, EngineDelayed, COReL, TwoPC} {
		t.Run(sys.String(), func(t *testing.T) {
			res, err := Run(Config{
				System:           sys,
				Replicas:         3,
				Clients:          2,
				ActionsPerClient: 4,
				SyncLatency:      200 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Actions != 8 {
				t.Fatalf("actions = %d", res.Actions)
			}
			if res.Throughput <= 0 || res.AvgLatency <= 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			if !strings.Contains(res.String(), sys.String()) {
				t.Fatalf("result string %q misses system name", res.String())
			}
		})
	}
}

func TestSeriesProducesOneRowPerPoint(t *testing.T) {
	rows, err := Series(Engine, 3, []int{1, 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Clients != 1 || rows[1].Clients != 2 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestCostModelShape(t *testing.T) {
	rows, err := CostModel(3, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// The paper's claims, as inequalities robust to protocol overhead:
	// only the engine's generator forces; both baselines force at every
	// replica.
	if byName["engine"].AllSyncsPer > 1.5 {
		t.Fatalf("engine forces too much: %+v", byName["engine"])
	}
	if byName["corel"].AllSyncsPer < 2.5 || byName["2pc"].AllSyncsPer < 2.5 {
		t.Fatalf("baselines force too little: %+v %+v", byName["corel"], byName["2pc"])
	}
	// 2PC is unicast-only; the group-communication systems multicast.
	if byName["2pc"].MulticastsPer != 0 {
		t.Fatalf("2pc multicast: %+v", byName["2pc"])
	}
	if byName["engine"].MulticastsPer <= 0 || byName["corel"].MulticastsPer <= byName["engine"].MulticastsPer {
		t.Fatalf("multicast ordering wrong: engine %+v corel %+v",
			byName["engine"], byName["corel"])
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	if _, err := Run(Config{System: System(99), Replicas: 1, Clients: 1, ActionsPerClient: 1}); err == nil {
		t.Fatal("unknown system accepted")
	}
}
