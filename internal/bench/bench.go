// Package bench is the experiment harness that regenerates the paper's
// evaluation (§ 7): throughput versus number of clients for the
// replication engine, COReL and two-phase commit (Fig. 5a), the impact of
// forced versus delayed disk writes (Fig. 5b), and the single-client
// latency comparison.
//
// Absolute numbers depend on the simulated fsync latency and the host;
// the *shape* — engine > COReL > 2PC, delayed >> forced, 2PC latency ≈ 2×
// the others — is the reproduction target.
package bench

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"evsdb/internal/baseline/corel"
	"evsdb/internal/baseline/twopc"
	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

// System selects the protocol under test.
type System int

const (
	// Engine is the paper's replication engine with forced writes.
	Engine System = iota + 1
	// EngineDelayed is the engine with asynchronous (delayed) writes.
	EngineDelayed
	// COReL is the total-order + per-action end-to-end ack baseline.
	COReL
	// TwoPC is the two-phase commit baseline.
	TwoPC
)

func (s System) String() string {
	switch s {
	case Engine:
		return "engine"
	case EngineDelayed:
		return "engine-delayed"
	case COReL:
		return "corel"
	case TwoPC:
		return "2pc"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Config parameterizes one run.
type Config struct {
	System   System
	Replicas int
	Clients  int
	// ActionsPerClient is the closed-loop depth per client.
	ActionsPerClient int
	// SyncLatency simulates the forced-write cost (the paper's runs are
	// disk-bound; this is the knob that stands in for their disks).
	SyncLatency time.Duration
	// PayloadBytes pads each action (paper: 200-byte actions).
	PayloadBytes int
	// EVSTick tunes the group-communication tick.
	EVSTick time.Duration
	// MaxBatch caps the engines' submission batching (see
	// core.Config.MaxBatchActions): 0 keeps the engine default, 1
	// disables batching (the pre-batching pipeline).
	MaxBatch int
	// BatchDelay sets the engines' batch collection window (see
	// core.Config.MaxBatchDelay).
	BatchDelay time.Duration
	// CaptureMetrics renders replica 0's metrics registry (Prometheus
	// text) into Result.Metrics after the run, before teardown. Engine
	// systems only; the baselines are not instrumented.
	CaptureMetrics bool
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 14
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.ActionsPerClient == 0 {
		c.ActionsPerClient = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 200
	}
	if c.EVSTick == 0 {
		c.EVSTick = 500 * time.Microsecond
	}
	return c
}

// Result reports one run's measurements.
type Result struct {
	System     string
	Replicas   int
	Clients    int
	Actions    int
	Elapsed    time.Duration
	Throughput float64 // actions per second
	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	// Metrics is replica 0's Prometheus text exposition, captured at the
	// end of the run when Config.CaptureMetrics is set.
	Metrics string
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s replicas=%2d clients=%2d actions=%5d  %8.1f actions/s  avg latency %8.3fms  p50 %8.3fms  p99 %8.3fms",
		r.System, r.Replicas, r.Clients, r.Actions,
		r.Throughput, float64(r.AvgLatency)/float64(time.Millisecond),
		float64(r.P50Latency)/float64(time.Millisecond),
		float64(r.P99Latency)/float64(time.Millisecond))
}

// submitter abstracts one replica's blocking submit path.
type submitter func(ctx context.Context, payload []byte) error

// Runner is a ready-to-drive protocol stack: one submit entry point per
// replica. It separates setup cost from the measured region (used by the
// testing.B benchmarks).
type Runner struct {
	cfg     Config
	subs    []submitter
	engines []*core.Engine // engine systems only
	cleanup func()
}

// NewRunner builds and settles the protocol stack for cfg.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	subs, engines, cleanup, err := buildSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, subs: subs, engines: engines, cleanup: cleanup}, nil
}

// Engine returns the i-th replica's engine (nil for baseline systems),
// for benchmarks that exercise engine-specific APIs.
func (r *Runner) Engine(i int) *core.Engine {
	if len(r.engines) == 0 {
		return nil
	}
	return r.engines[i%len(r.engines)]
}

// Payload builds the standard padded action payload.
func (r *Runner) Payload() []byte {
	return db.EncodeUpdate(db.Noop(strings.Repeat("x", r.cfg.PayloadBytes)))
}

// Submit drives one blocking action via the client's home replica.
func (r *Runner) Submit(ctx context.Context, client int, payload []byte) error {
	return r.subs[client%len(r.subs)](ctx, payload)
}

// Close tears the stack down.
func (r *Runner) Close() { r.cleanup() }

// Run executes one benchmark configuration and reports throughput and
// mean latency. Clients are closed-loop: each submits its next action as
// soon as the previous one is globally ordered (paper § 7).
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	runner, err := NewRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	defer runner.Close()
	subs := runner.subs
	_ = runner.engines

	payload := db.EncodeUpdate(db.Noop(strings.Repeat("x", cfg.PayloadBytes)))
	total := cfg.Clients * cfg.ActionsPerClient

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]time.Duration, 0, total)
		runErr  error
		started = time.Now()
	)
	for i := 0; i < cfg.Clients; i++ {
		sub := subs[i%len(subs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, cfg.ActionsPerClient)
			for j := 0; j < cfg.ActionsPerClient; j++ {
				t0 := time.Now()
				if err := sub(ctx, payload); err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(started)
	if runErr != nil {
		return Result{}, runErr
	}
	var metrics string
	if cfg.CaptureMetrics {
		if eng := runner.Engine(0); eng != nil {
			var b strings.Builder
			if err := eng.Observer().Reg.WriteText(&b); err != nil {
				return Result{}, fmt.Errorf("metrics render: %w", err)
			}
			metrics = b.String()
		}
	}
	var lat time.Duration
	for _, d := range lats {
		lat += d
	}
	slices.Sort(lats)
	return Result{
		System:     cfg.System.String(),
		Replicas:   cfg.Replicas,
		Clients:    cfg.Clients,
		Actions:    total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		AvgLatency: lat / time.Duration(total),
		P50Latency: percentile(lats, 50),
		P99Latency: percentile(lats, 99),
		Metrics:    metrics,
	}, nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// buildSystem assembles the protocol stack and returns one submitter per
// replica (clients attach round-robin), plus the engines for
// engine-based systems.
func buildSystem(cfg Config) ([]submitter, []*core.Engine, func(), error) {
	switch cfg.System {
	case Engine, EngineDelayed:
		policy := storage.SyncForced
		if cfg.System == EngineDelayed {
			policy = storage.SyncDelayed
		}
		c, err := cluster.New(cfg.Replicas,
			cluster.WithSyncPolicy(policy),
			cluster.WithSyncLatency(cfg.SyncLatency),
			cluster.WithEVSTick(cfg.EVSTick),
			cluster.WithMaxBatch(cfg.MaxBatch),
			cluster.WithBatchDelay(cfg.BatchDelay),
		)
		if err != nil {
			return nil, nil, nil, err
		}
		ids := c.IDs()
		if err := c.WaitPrimary(30*time.Second, ids...); err != nil {
			c.Close()
			return nil, nil, nil, err
		}
		subs := make([]submitter, 0, len(ids))
		engines := make([]*core.Engine, 0, len(ids))
		for _, id := range ids {
			eng := c.Replica(id).Engine
			engines = append(engines, eng)
			subs = append(subs, func(ctx context.Context, payload []byte) error {
				r, err := eng.Submit(ctx, payload, nil, types.SemStrict)
				if err != nil {
					return err
				}
				if r.Err != "" {
					return fmt.Errorf("action aborted: %s", r.Err)
				}
				return nil
			})
		}
		return subs, engines, c.Close, nil

	case COReL:
		net := memnet.New()
		var reps []*corel.Replica
		var nodes []*evs.Node
		for i := 0; i < cfg.Replicas; i++ {
			id := cluster.ServerID(i)
			ep, err := net.Attach(id)
			if err != nil {
				return nil, nil, nil, err
			}
			node := evs.NewNode(ep, evs.WithTick(cfg.EVSTick))
			nodes = append(nodes, node)
			log := storage.NewMemLog(storage.Options{
				Policy:      storage.SyncForced,
				SyncLatency: cfg.SyncLatency,
			})
			reps = append(reps, corel.New(id, node, log))
		}
		cleanup := func() {
			for _, r := range reps {
				r.Close()
			}
			for _, n := range nodes {
				n.Close()
			}
		}
		// Let the initial configuration settle.
		time.Sleep(200 * time.Millisecond)
		subs := make([]submitter, len(reps))
		for i, r := range reps {
			r := r
			subs[i] = func(ctx context.Context, payload []byte) error {
				return r.Submit(ctx, payload)
			}
		}
		return subs, nil, cleanup, nil

	case TwoPC:
		net := memnet.New()
		var ids []types.ServerID
		for i := 0; i < cfg.Replicas; i++ {
			ids = append(ids, cluster.ServerID(i))
		}
		var reps []*twopc.Replica
		for _, id := range ids {
			ep, err := net.Attach(id)
			if err != nil {
				return nil, nil, nil, err
			}
			log := storage.NewMemLog(storage.Options{
				Policy:      storage.SyncForced,
				SyncLatency: cfg.SyncLatency,
			})
			reps = append(reps, twopc.New(id, ep, log, ids))
		}
		cleanup := func() {
			for _, r := range reps {
				r.Close()
			}
		}
		subs := make([]submitter, len(reps))
		for i, r := range reps {
			r := r
			subs[i] = func(ctx context.Context, payload []byte) error {
				return r.Submit(ctx, payload)
			}
		}
		return subs, nil, cleanup, nil
	}
	return nil, nil, nil, fmt.Errorf("bench: unknown system %v", cfg.System)
}

// Series runs one system across a range of client counts (a Fig. 5 curve).
func Series(sys System, replicas int, clients []int, actionsPerClient int, syncLatency time.Duration) ([]Result, error) {
	var out []Result
	for _, n := range clients {
		r, err := Run(Config{
			System:           sys,
			Replicas:         replicas,
			Clients:          n,
			ActionsPerClient: actionsPerClient,
			SyncLatency:      syncLatency,
		})
		if err != nil {
			return nil, fmt.Errorf("%v clients=%d: %w", sys, n, err)
		}
		out = append(out, r)
	}
	return out, nil
}
