package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"evsdb/internal/baseline/corel"
	"evsdb/internal/baseline/twopc"
	"evsdb/internal/cluster"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

// CostRow reports the measured per-action costs for one system — the
// empirical counterpart of the paper's § 7 accounting ("our algorithm
// only requires one forced disk write and one multicast message per
// action").
type CostRow struct {
	System        string
	Actions       int
	MulticastsPer float64 // network multicast operations per action
	UnicastsPer   float64 // network unicast operations per action
	GenSyncsPer   float64 // forced writes per action at the generator
	AllSyncsPer   float64 // forced writes per action summed over replicas
}

func (r CostRow) String() string {
	return fmt.Sprintf("%-8s actions=%4d  multicast/action=%6.2f  unicast/action=%6.2f  gen syncs/action=%5.2f  total syncs/action=%5.2f",
		r.System, r.Actions, r.MulticastsPer, r.UnicastsPer, r.GenSyncsPer, r.AllSyncsPer)
}

// CostModel measures message and forced-write counts per action for each
// system: sequential actions from one client so per-action costs are not
// hidden by batching.
func CostModel(replicas, actions int, syncLatency time.Duration) ([]CostRow, error) {
	var rows []CostRow
	payload := db.EncodeUpdate(db.Noop(strings.Repeat("x", 180)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Engine.
	{
		c, err := cluster.New(replicas,
			cluster.WithSyncPolicy(storage.SyncForced),
			cluster.WithSyncLatency(syncLatency))
		if err != nil {
			return nil, err
		}
		ids := c.IDs()
		if err := c.WaitPrimary(30*time.Second, ids...); err != nil {
			c.Close()
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
		before := c.Net.Stats()
		var syncBefore, genBefore uint64
		for i, id := range ids {
			n := c.Replica(id).Log.SyncCount()
			syncBefore += n
			if i == 0 {
				genBefore = n
			}
		}
		eng := c.Replica(ids[0]).Engine
		for i := 0; i < actions; i++ {
			if _, err := eng.Submit(ctx, payload, nil, types.SemStrict); err != nil {
				c.Close()
				return nil, err
			}
		}
		after := c.Net.Stats()
		var syncAfter, genAfter uint64
		for i, id := range ids {
			n := c.Replica(id).Log.SyncCount()
			syncAfter += n
			if i == 0 {
				genAfter = n
			}
		}
		rows = append(rows, CostRow{
			System:        "engine",
			Actions:       actions,
			MulticastsPer: float64(after.MulticastOps-before.MulticastOps) / float64(actions),
			UnicastsPer:   float64(after.UnicastOps-before.UnicastOps) / float64(actions),
			GenSyncsPer:   float64(genAfter-genBefore) / float64(actions),
			AllSyncsPer:   float64(syncAfter-syncBefore) / float64(actions),
		})
		c.Close()
	}

	// COReL.
	{
		net := memnet.New()
		var nodes []*evs.Node
		var reps []*corel.Replica
		var logs []*storage.MemLog
		for i := 0; i < replicas; i++ {
			id := cluster.ServerID(i)
			ep, err := net.Attach(id)
			if err != nil {
				return nil, err
			}
			node := evs.NewNode(ep, evs.WithTick(500*time.Microsecond))
			log := storage.NewMemLog(storage.Options{Policy: storage.SyncForced, SyncLatency: syncLatency})
			nodes = append(nodes, node)
			logs = append(logs, log)
			reps = append(reps, corel.New(id, node, log))
		}
		time.Sleep(300 * time.Millisecond)
		before := net.Stats()
		var syncBefore uint64
		for _, l := range logs {
			syncBefore += l.SyncCount()
		}
		for i := 0; i < actions; i++ {
			if err := reps[0].Submit(ctx, payload); err != nil {
				return nil, err
			}
		}
		after := net.Stats()
		var syncAfter uint64
		for _, l := range logs {
			syncAfter += l.SyncCount()
		}
		rows = append(rows, CostRow{
			System:        "corel",
			Actions:       actions,
			MulticastsPer: float64(after.MulticastOps-before.MulticastOps) / float64(actions),
			UnicastsPer:   float64(after.UnicastOps-before.UnicastOps) / float64(actions),
			GenSyncsPer:   float64(logs[0].SyncCount()) / float64(actions), // every replica forces; generator shown for comparison
			AllSyncsPer:   float64(syncAfter-syncBefore) / float64(actions),
		})
		for _, r := range reps {
			r.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	}

	// 2PC.
	{
		net := memnet.New()
		var ids []types.ServerID
		for i := 0; i < replicas; i++ {
			ids = append(ids, cluster.ServerID(i))
		}
		var reps []*twopc.Replica
		var logs []*storage.MemLog
		for _, id := range ids {
			ep, err := net.Attach(id)
			if err != nil {
				return nil, err
			}
			log := storage.NewMemLog(storage.Options{Policy: storage.SyncForced, SyncLatency: syncLatency})
			logs = append(logs, log)
			reps = append(reps, twopc.New(id, ep, log, ids))
		}
		before := net.Stats()
		var syncBefore uint64
		for _, l := range logs {
			syncBefore += l.SyncCount()
		}
		for i := 0; i < actions; i++ {
			if err := reps[0].Submit(ctx, payload); err != nil {
				return nil, err
			}
		}
		after := net.Stats()
		var syncAfter uint64
		for _, l := range logs {
			syncAfter += l.SyncCount()
		}
		rows = append(rows, CostRow{
			System:        "2pc",
			Actions:       actions,
			MulticastsPer: float64(after.MulticastOps-before.MulticastOps) / float64(actions),
			UnicastsPer:   float64(after.UnicastOps-before.UnicastOps) / float64(actions),
			GenSyncsPer:   float64(logs[0].SyncCount()-0) / float64(actions),
			AllSyncsPer:   float64(syncAfter-syncBefore) / float64(actions),
		})
		for _, r := range reps {
			r.Close()
		}
	}
	return rows, nil
}
