// Package db implements the deterministic in-memory database that sits
// behind the replication engine.
//
// The engine is deliberately decoupled from the database (paper § 1: "a
// generic replication engine which runs outside the database"); it only
// requires deterministic application of ordered actions plus snapshot and
// restore for online join transfers (§ 5.1). This package provides:
//
//   - a key-value store with a small deterministic command language
//     covering the paper's § 6 semantics: plain updates, commutative
//     increments, timestamped writes, active (procedure) actions, and
//     check-and-apply for interactive transactions;
//   - snapshot/restore for state transfer to joining replicas;
//   - a dirty overlay holding the effects of red actions, serving dirty
//     queries in non-primary components.
package db

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Op is one deterministic database operation.
type Op struct {
	// Kind is one of "set", "del", "add", "tsset", "cas", "proc".
	Kind string `json:"kind"`
	// Key is the target key for set/del/add/tsset.
	Key string `json:"key,omitempty"`
	// Value is the new value for set, the delta for add, the candidate
	// for tsset.
	Value string `json:"value,omitempty"`
	// TS orders tsset writes: the highest timestamp wins regardless of
	// arrival order (paper § 6 "timestamp update semantics").
	TS int64 `json:"ts,omitempty"`
	// Expect guards cas: all listed key/value pairs must match the
	// current state or the whole update aborts deterministically
	// (paper § 6 "interactive transactions").
	Expect map[string]string `json:"expect,omitempty"`
	// Ops is the body applied by cas when the guard holds.
	Ops []Op `json:"ops,omitempty"`
	// Proc names a registered procedure for proc; Args is its input.
	Proc string `json:"proc,omitempty"`
	Args []byte `json:"args,omitempty"`
}

// Update is the encoded update part of an action.
type Update struct {
	Ops []Op `json:"ops"`
}

// EncodeUpdate serializes ops into an action update payload.
func EncodeUpdate(ops ...Op) []byte {
	buf, err := json.Marshal(Update{Ops: ops})
	if err != nil {
		panic(fmt.Sprintf("db: marshal update: %v", err))
	}
	return buf
}

// Set returns a plain write op.
func Set(key, value string) Op { return Op{Kind: "set", Key: key, Value: value} }

// Del returns a delete op.
func Del(key string) Op { return Op{Kind: "del", Key: key} }

// Add returns a commutative integer increment op.
func Add(key string, delta int64) Op {
	return Op{Kind: "add", Key: key, Value: strconv.FormatInt(delta, 10)}
}

// TSSet returns a timestamped write: applied only if ts exceeds the
// stored timestamp for the key.
func TSSet(key, value string, ts int64) Op {
	return Op{Kind: "tsset", Key: key, Value: value, TS: ts}
}

// CAS returns a guarded update: body applies only if every expected
// key/value matches, mimicking an interactive transaction's validity
// check.
func CAS(expect map[string]string, body ...Op) Op {
	return Op{Kind: "cas", Expect: expect, Ops: body}
}

// Proc returns an active action invoking a registered procedure.
func Proc(name string, args []byte) Op { return Op{Kind: "proc", Proc: name, Args: args} }

// Noop returns an op that carries padding bytes but has no effect,
// for engine-only benchmarking.
func Noop(padding string) Op { return Op{Kind: "noop", Value: padding} }

// Query is the encoded query part of an action.
type Query struct {
	// Kind is "get" or "prefix".
	Kind string `json:"kind"`
	Key  string `json:"key"`
}

// EncodeQuery serializes a query payload.
func EncodeQuery(q Query) []byte {
	buf, err := json.Marshal(q)
	if err != nil {
		panic(fmt.Sprintf("db: marshal query: %v", err))
	}
	return buf
}

// Get returns a point-lookup query payload.
func Get(key string) []byte { return EncodeQuery(Query{Kind: "get", Key: key}) }

// Prefix returns a range query payload over keys with the given prefix.
func Prefix(p string) []byte { return EncodeQuery(Query{Kind: "prefix", Key: p}) }

// Result is a query answer.
type Result struct {
	Found  bool              `json:"found"`
	Value  string            `json:"value,omitempty"`
	Values map[string]string `json:"values,omitempty"`
	// Version is the number of green actions applied to the state the
	// answer was computed from.
	Version uint64 `json:"version"`
	// Dirty marks answers computed from a state that includes red
	// (not globally ordered) actions.
	Dirty bool `json:"dirty"`
}

// Procedure is a deterministic routine invoked at ordering time (§ 6
// "active transactions"). It must depend only on the transaction view and
// its arguments.
type Procedure func(tx *Tx, args []byte) error

// Tx gives a procedure deterministic read/write access.
type Tx struct {
	read  func(key string) (string, bool)
	write map[string]*string // nil value pointer = delete
}

// Get reads a key, observing earlier writes in the same transaction.
func (tx *Tx) Get(key string) (string, bool) {
	if v, ok := tx.write[key]; ok {
		if v == nil {
			return "", false
		}
		return *v, true
	}
	return tx.read(key)
}

// Set writes a key.
func (tx *Tx) Set(key, value string) {
	v := value
	tx.write[key] = &v
}

// Del deletes a key.
func (tx *Tx) Del(key string) { tx.write[key] = nil }

// Database is a deterministic replicated key-value store.
//
// Lock order: applyMu -> mu -> dirtyMu. Green mutators (Apply,
// ApplyBatch, ApplyBatchParallel, Restore) serialize on applyMu and
// touch green state under mu; the dirty overlay lives behind its own
// dirtyMu so red applies and degraded reads only need mu read-side and
// never contend with a green apply in progress.
type Database struct {
	applyMu sync.Mutex // serializes green mutators and oracle mirroring
	mu      sync.RWMutex
	data    map[string]string
	ts      map[string]int64
	version uint64
	procs   map[string]Procedure

	// dirty overlays the green state with red effects for dirty queries.
	dirtyMu      sync.RWMutex
	dirty        map[string]*string
	dirtyTS      map[string]int64
	dirtyApplied uint64

	// workers is the configured parallel-apply width (parallel.go);
	// 0 means the GOMAXPROCS-derived default.
	workers int
	// met holds optional instruments (obs.go).
	met *applyObs
	// oracle is the optional shadow sequential database (oracle.go).
	oracle    *Database
	oracleErr error
}

// New returns an empty database.
func New() *Database {
	return &Database{
		data:  make(map[string]string),
		ts:    make(map[string]int64),
		procs: make(map[string]Procedure),
		dirty: make(map[string]*string),
	}
}

// RegisterProc registers a deterministic procedure. Every replica must
// register the same procedures before applying actions that invoke them.
func (d *Database) RegisterProc(name string, p Procedure) {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	d.mu.Lock()
	d.procs[name] = p
	d.mu.Unlock()
	if d.oracle != nil {
		d.oracle.RegisterProc(name, p)
	}
}

// Version returns the number of updates applied to the green state.
func (d *Database) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// Apply applies an encoded update to the green (consistent) state. A
// deterministic semantic failure (bad encoding, failed CAS guard, failed
// procedure) is an abort: the state advances past the action without
// effects, identically at every replica, and the abort is reported.
func (d *Database) Apply(update []byte) error {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	d.mu.Lock()
	d.version++
	err := applyUpdate(update, d.data, d.ts, d.procs)
	d.mu.Unlock()
	d.mirrorOne(update, err)
	return err
}

// ApplyBatch applies a run of encoded updates under ONE lock acquisition,
// returning each update's outcome. Equivalent to calling Apply in order —
// the version advances once per update, so a replica that applied the
// same actions singly reports the same version — but the per-update
// locking cost amortizes over the batch (the engine's fused green apply).
// For dependency-aware concurrent application see ApplyBatchParallel.
func (d *Database) ApplyBatch(updates [][]byte) []error {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	errs := d.applyBatchSeq(updates)
	d.mirrorBatch(updates, errs, false)
	return errs
}

// applyBatchSeq is the sequential apply loop; callers hold applyMu.
func (d *Database) applyBatchSeq(updates [][]byte) []error {
	errs := make([]error, len(updates))
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, u := range updates {
		d.version++
		errs[i] = applyUpdate(u, d.data, d.ts, d.procs)
	}
	return errs
}

// ApplyDirty applies an encoded update to the dirty overlay only; the
// green state is untouched (paper § 6 "dirty query" support). The
// update is evaluated against the layered green+overlay view (no green
// state copy) and its staged effects fold into the overlay atomically:
// a deterministic abort leaves the overlay unchanged. Only mu's read
// side is taken, so red applies never block green queries and only
// wait out the parallel applier's short merge windows.
func (d *Database) ApplyDirty(update []byte) error {
	an := analyzeUpdate(update)
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.dirtyMu.Lock()
	defer d.dirtyMu.Unlock()
	d.dirtyApplied++
	if an.decErr != nil {
		return an.decErr
	}
	readOverlay := func(k string) (string, bool) {
		if v, ok := d.dirty[k]; ok {
			if v == nil {
				return "", false
			}
			return *v, true
		}
		v, ok := d.data[k]
		return v, ok
	}
	readOverlayTS := func(k string) int64 {
		if v, ok := d.dirtyTS[k]; ok {
			return v
		}
		return d.ts[k]
	}
	effs, err := evalOps(an.ops, stateView{readData: readOverlay, readTS: readOverlayTS}, d.procs)
	if err != nil {
		return err
	}
	// Fold effects into the overlay in order, normalizing entries that
	// land back on the green value.
	setK := func(k, v string) {
		if cur, ok := d.data[k]; ok && cur == v {
			delete(d.dirty, k)
		} else {
			val := v
			d.dirty[k] = &val
		}
	}
	for _, e := range effs {
		switch e.kind {
		case effSet:
			setK(e.key, e.val)
		case effDel:
			if _, ok := d.data[e.key]; ok {
				d.dirty[e.key] = nil
			} else {
				delete(d.dirty, e.key)
			}
		case effAdd:
			curStr, _ := readOverlay(e.key)
			cur, _ := strconv.ParseInt(curStr, 10, 64)
			setK(e.key, strconv.FormatInt(cur+e.delta, 10))
		case effTS:
			if e.ts > readOverlayTS(e.key) {
				if d.dirtyTS == nil {
					d.dirtyTS = make(map[string]int64)
				}
				if d.ts[e.key] == e.ts {
					delete(d.dirtyTS, e.key)
				} else {
					d.dirtyTS[e.key] = e.ts
				}
				setK(e.key, e.val)
			}
		}
	}
	return nil
}

// ResetDirty discards the dirty overlay (on rejoining a primary
// component, once red actions obtain their true global order).
func (d *Database) ResetDirty() {
	d.dirtyMu.Lock()
	defer d.dirtyMu.Unlock()
	d.dirty = make(map[string]*string)
	d.dirtyTS = nil
	d.dirtyApplied = 0
}

// QueryGreen answers a query from the consistent green state.
func (d *Database) QueryGreen(query []byte) (Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	res, err := runQuery(query, func(k string) (string, bool) {
		v, ok := d.data[k]
		return v, ok
	}, func() []string { return sortedKeys(d.data) })
	if err != nil {
		return Result{}, err
	}
	res.Version = d.version
	return res, nil
}

// QueryDirty answers a query from the green state plus the red overlay.
func (d *Database) QueryDirty(query []byte) (Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.dirtyMu.RLock()
	defer d.dirtyMu.RUnlock()
	read := func(k string) (string, bool) {
		if v, ok := d.dirty[k]; ok {
			if v == nil {
				return "", false
			}
			return *v, true
		}
		v, ok := d.data[k]
		return v, ok
	}
	keys := func() []string {
		set := make(map[string]bool, len(d.data)+len(d.dirty))
		for k := range d.data {
			set[k] = true
		}
		for k, v := range d.dirty {
			if v == nil {
				delete(set, k)
			} else {
				set[k] = true
			}
		}
		out := make([]string, 0, len(set))
		for k := range set {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	res, err := runQuery(query, read, keys)
	if err != nil {
		return Result{}, err
	}
	res.Version = d.version
	res.Dirty = d.dirtyApplied > 0
	return res, nil
}

// snapshot is the serialized database state.
type snapshot struct {
	Data    map[string]string `json:"data"`
	TS      map[string]int64  `json:"ts"`
	Version uint64            `json:"version"`
}

// Snapshot serializes the green state for transfer to a joining replica.
func (d *Database) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	buf, err := json.Marshal(snapshot{Data: d.data, TS: d.ts, Version: d.version})
	if err != nil {
		panic(fmt.Sprintf("db: marshal snapshot: %v", err))
	}
	return buf
}

// Restore replaces the green state with a snapshot.
func (d *Database) Restore(buf []byte) error {
	var s snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return fmt.Errorf("restore snapshot: %w", err)
	}
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	d.mu.Lock()
	d.data = s.Data
	if d.data == nil {
		d.data = make(map[string]string)
	}
	d.ts = s.TS
	if d.ts == nil {
		d.ts = make(map[string]int64)
	}
	d.version = s.Version
	d.mu.Unlock()
	d.dirtyMu.Lock()
	d.dirty = make(map[string]*string)
	d.dirtyTS = nil
	d.dirtyApplied = 0
	d.dirtyMu.Unlock()
	d.mirrorRestore(buf)
	return nil
}

// Len returns the number of keys in the green state.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

// applyUpdate runs the ops against the given mutable maps.
func applyUpdate(update []byte, data map[string]string, ts map[string]int64, procs map[string]Procedure) error {
	var u Update
	if err := json.Unmarshal(update, &u); err != nil {
		return fmt.Errorf("decode update: %w", err)
	}
	return applyOps(u.Ops, data, ts, procs)
}

func applyOps(ops []Op, data map[string]string, ts map[string]int64, procs map[string]Procedure) error {
	for _, op := range ops {
		switch op.Kind {
		case "noop":
			// Carries payload without touching state; used by benchmarks
			// that measure the replication engine without DB interaction
			// (paper § 7 does exactly this).
		case "set":
			data[op.Key] = op.Value
		case "del":
			delete(data, op.Key)
		case "add":
			delta, err := strconv.ParseInt(op.Value, 10, 64)
			if err != nil {
				return fmt.Errorf("add %q: bad delta %q", op.Key, op.Value)
			}
			cur, _ := strconv.ParseInt(data[op.Key], 10, 64)
			data[op.Key] = strconv.FormatInt(cur+delta, 10)
		case "tsset":
			if op.TS > ts[op.Key] {
				ts[op.Key] = op.TS
				data[op.Key] = op.Value
			}
		case "cas":
			ok := true
			for k, want := range op.Expect {
				if got, found := data[k]; !found || got != want {
					ok = false
					break
				}
			}
			if !ok {
				return fmt.Errorf("cas aborted: guard mismatch")
			}
			if err := applyOps(op.Ops, data, ts, procs); err != nil {
				return err
			}
		case "proc":
			p, ok := procs[op.Proc]
			if !ok {
				return fmt.Errorf("proc %q not registered", op.Proc)
			}
			tx := &Tx{
				read: func(k string) (string, bool) {
					v, ok := data[k]
					return v, ok
				},
				write: make(map[string]*string),
			}
			if err := p(tx, op.Args); err != nil {
				return fmt.Errorf("proc %q: %w", op.Proc, err)
			}
			for k, v := range tx.write {
				if v == nil {
					delete(data, k)
				} else {
					data[k] = *v
				}
			}
		default:
			return fmt.Errorf("unknown op kind %q", op.Kind)
		}
	}
	return nil
}

func runQuery(query []byte, read func(string) (string, bool), keys func() []string) (Result, error) {
	var q Query
	if err := json.Unmarshal(query, &q); err != nil {
		return Result{}, fmt.Errorf("decode query: %w", err)
	}
	switch q.Kind {
	case "get":
		v, ok := read(q.Key)
		return Result{Found: ok, Value: v}, nil
	case "prefix":
		out := make(map[string]string)
		for _, k := range keys() {
			if len(k) >= len(q.Key) && k[:len(q.Key)] == q.Key {
				if v, ok := read(k); ok {
					out[k] = v
				}
			}
		}
		return Result{Found: len(out) > 0, Values: out}, nil
	default:
		return Result{}, fmt.Errorf("unknown query kind %q", q.Kind)
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
