package db

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func apply(t *testing.T, d *Database, ops ...Op) {
	t.Helper()
	if err := d.Apply(EncodeUpdate(ops...)); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

func get(t *testing.T, d *Database, key string) (string, bool) {
	t.Helper()
	res, err := d.QueryGreen(Get(key))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	return res.Value, res.Found
}

func TestSetDelGet(t *testing.T) {
	d := New()
	apply(t, d, Set("a", "1"), Set("b", "2"))
	if v, ok := get(t, d, "a"); !ok || v != "1" {
		t.Fatalf("a = %q %v", v, ok)
	}
	apply(t, d, Del("a"))
	if _, ok := get(t, d, "a"); ok {
		t.Fatal("a survived delete")
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestAddAccumulates(t *testing.T) {
	d := New()
	apply(t, d, Add("n", 5))
	apply(t, d, Add("n", -2))
	apply(t, d, Add("n", 10))
	if v, _ := get(t, d, "n"); v != "13" {
		t.Fatalf("n = %q", v)
	}
}

// TestAddCommutes is the property that justifies SemCommutative: any
// permutation of add operations yields the same final state.
func TestAddCommutes(t *testing.T) {
	prop := func(deltas []int16, seed int64) bool {
		d1, d2 := New(), New()
		for _, x := range deltas {
			if err := d1.Apply(EncodeUpdate(Add("k", int64(x)))); err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(deltas))
		for _, i := range perm {
			if err := d2.Apply(EncodeUpdate(Add("k", int64(deltas[i])))); err != nil {
				return false
			}
		}
		v1, _ := d1.QueryGreen(Get("k"))
		v2, _ := d2.QueryGreen(Get("k"))
		return v1.Value == v2.Value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTSSetConverges: any permutation of timestamped writes converges to
// the highest timestamp (paper § 6 timestamp semantics).
func TestTSSetConverges(t *testing.T) {
	prop := func(vals []uint8, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		write := func(d *Database, order []int) bool {
			for _, i := range order {
				op := TSSet("k", fmt.Sprintf("v%d", vals[i]), int64(vals[i]))
				if err := d.Apply(EncodeUpdate(op)); err != nil {
					return false
				}
			}
			return true
		}
		fwd := make([]int, len(vals))
		for i := range fwd {
			fwd[i] = i
		}
		d1, d2 := New(), New()
		if !write(d1, fwd) {
			return false
		}
		if !write(d2, rand.New(rand.NewSource(seed)).Perm(len(vals))) {
			return false
		}
		v1, _ := d1.QueryGreen(Get("k"))
		v2, _ := d2.QueryGreen(Get("k"))
		return v1.Value == v2.Value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTSSetIdempotent(t *testing.T) {
	d := New()
	apply(t, d, TSSet("k", "new", 10))
	apply(t, d, TSSet("k", "old", 5))  // lower timestamp loses
	apply(t, d, TSSet("k", "new", 10)) // replay is a no-op
	if v, _ := get(t, d, "k"); v != "new" {
		t.Fatalf("k = %q", v)
	}
}

func TestCASGuard(t *testing.T) {
	d := New()
	apply(t, d, Set("bal", "100"))
	err := d.Apply(EncodeUpdate(CAS(map[string]string{"bal": "50"}, Set("bal", "0"))))
	if err == nil {
		t.Fatal("mismatched CAS applied")
	}
	if v, _ := get(t, d, "bal"); v != "100" {
		t.Fatalf("bal changed on failed CAS: %q", v)
	}
	apply(t, d, CAS(map[string]string{"bal": "100"}, Set("bal", "0")))
	if v, _ := get(t, d, "bal"); v != "0" {
		t.Fatalf("bal = %q after CAS", v)
	}
}

func TestCASVersionStillAdvancesOnAbort(t *testing.T) {
	// Deterministic aborts must advance the version identically at every
	// replica so the green state stays aligned with the global order.
	d := New()
	before := d.Version()
	_ = d.Apply(EncodeUpdate(CAS(map[string]string{"missing": "x"}, Set("k", "v"))))
	if d.Version() != before+1 {
		t.Fatalf("version did not advance on abort: %d -> %d", before, d.Version())
	}
}

func TestProcRegisteredAndUnregistered(t *testing.T) {
	d := New()
	d.RegisterProc("incr-all", func(tx *Tx, _ []byte) error {
		v, _ := tx.Get("x")
		n, _ := strconv.Atoi(v)
		tx.Set("x", strconv.Itoa(n+1))
		return nil
	})
	apply(t, d, Proc("incr-all", nil))
	apply(t, d, Proc("incr-all", nil))
	if v, _ := get(t, d, "x"); v != "2" {
		t.Fatalf("x = %q", v)
	}
	if err := d.Apply(EncodeUpdate(Proc("nope", nil))); err == nil {
		t.Fatal("unregistered proc applied")
	}
}

func TestProcTxReadsOwnWritesAndDeletes(t *testing.T) {
	d := New()
	d.RegisterProc("rw", func(tx *Tx, _ []byte) error {
		tx.Set("a", "1")
		if v, ok := tx.Get("a"); !ok || v != "1" {
			return errors.New("did not read own write")
		}
		tx.Del("a")
		if _, ok := tx.Get("a"); ok {
			return errors.New("read deleted key")
		}
		tx.Set("b", "kept")
		return nil
	})
	apply(t, d, Proc("rw", nil))
	if _, ok := get(t, d, "a"); ok {
		t.Fatal("a leaked")
	}
	if v, _ := get(t, d, "b"); v != "kept" {
		t.Fatalf("b = %q", v)
	}
}

func TestPrefixQuery(t *testing.T) {
	d := New()
	apply(t, d, Set("user/1", "a"), Set("user/2", "b"), Set("other", "c"))
	res, err := d.QueryGreen(Prefix("user/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 || res.Values["user/1"] != "a" {
		t.Fatalf("prefix result: %+v", res)
	}
}

func TestDirtyOverlay(t *testing.T) {
	d := New()
	apply(t, d, Set("k", "green"))

	if err := d.ApplyDirty(EncodeUpdate(Set("k", "red"), Set("extra", "x"), Del("gone"))); err != nil {
		t.Fatal(err)
	}
	green, _ := d.QueryGreen(Get("k"))
	if green.Value != "green" || green.Dirty {
		t.Fatalf("green read polluted: %+v", green)
	}
	dirty, _ := d.QueryDirty(Get("k"))
	if dirty.Value != "red" || !dirty.Dirty {
		t.Fatalf("dirty read wrong: %+v", dirty)
	}
	if res, _ := d.QueryDirty(Get("extra")); res.Value != "x" {
		t.Fatalf("dirty extra: %+v", res)
	}

	d.ResetDirty()
	after, _ := d.QueryDirty(Get("k"))
	if after.Value != "green" || after.Dirty {
		t.Fatalf("overlay survived reset: %+v", after)
	}
}

func TestDirtyDeleteShadowsGreen(t *testing.T) {
	d := New()
	apply(t, d, Set("k", "v"))
	if err := d.ApplyDirty(EncodeUpdate(Del("k"))); err != nil {
		t.Fatal(err)
	}
	res, _ := d.QueryDirty(Get("k"))
	if res.Found {
		t.Fatalf("dirty read found deleted key: %+v", res)
	}
	if res, _ := d.QueryDirty(Prefix("k")); res.Found {
		t.Fatalf("dirty prefix found deleted key: %+v", res)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := New()
	apply(t, d, Set("a", "1"), TSSet("t", "v", 9))
	snap := d.Snapshot()

	d2 := New()
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := get(t, d2, "a"); v != "1" {
		t.Fatalf("a = %q after restore", v)
	}
	if d2.Version() != d.Version() {
		t.Fatalf("version mismatch: %d vs %d", d2.Version(), d.Version())
	}
	// Timestamps travel: a stale tsset after restore must lose.
	apply(t, d2, TSSet("t", "stale", 5))
	if v, _ := get(t, d2, "t"); v != "v" {
		t.Fatalf("t = %q", v)
	}
}

func TestApplyDeterminism(t *testing.T) {
	// The same update sequence yields byte-identical snapshots —
	// the foundation of the state machine approach.
	ops := [][]Op{
		{Set("a", "1")},
		{Add("n", 3), Set("b", "x")},
		{TSSet("t", "new", 2)},
		{CAS(map[string]string{"a": "1"}, Del("b"))},
	}
	d1, d2 := New(), New()
	for _, o := range ops {
		_ = d1.Apply(EncodeUpdate(o...))
		_ = d2.Apply(EncodeUpdate(o...))
	}
	if string(d1.Snapshot()) != string(d2.Snapshot()) {
		t.Fatal("same inputs produced different snapshots")
	}
}

func TestBadInputsAbortCleanly(t *testing.T) {
	d := New()
	if err := d.Apply([]byte("not json")); err == nil {
		t.Fatal("garbage update applied")
	}
	if err := d.Apply(EncodeUpdate(Op{Kind: "wat"})); err == nil {
		t.Fatal("unknown op applied")
	}
	if err := d.Apply(EncodeUpdate(Op{Kind: "add", Key: "k", Value: "NaN"})); err == nil {
		t.Fatal("bad add delta applied")
	}
	if _, err := d.QueryGreen([]byte("junk")); err == nil {
		t.Fatal("garbage query answered")
	}
	if _, err := d.QueryGreen(EncodeQuery(Query{Kind: "wat"})); err == nil {
		t.Fatal("unknown query answered")
	}
}

func TestNoopCarriesNoEffect(t *testing.T) {
	d := New()
	apply(t, d, Noop("padding-padding"))
	if d.Len() != 0 {
		t.Fatalf("noop mutated state: %d keys", d.Len())
	}
}
