package db

import (
	"bytes"
	"fmt"
)

// The determinism oracle cross-checks the parallel applier against the
// paper's ground truth: one total order, one sequential applier. When
// enabled, the database keeps a shadow Database that re-applies every
// green mutation strictly sequentially; per-update abort errors must
// match exactly, and after every parallel-scheduled batch the two
// states must serialize to identical bytes. The simulator enables the
// oracle on every replica and asserts it in the finale, so the entire
// fault corpus doubles as an equivalence proof for the scheduler.
//
// Red-side state (the dirty overlay) is intentionally outside the
// oracle: it never feeds back into green state and is discarded on
// primary rejoin.

// EnableOracle attaches a fresh shadow sequential database seeded from
// the current green state. Must be called before concurrent use.
func (d *Database) EnableOracle() {
	snap := d.Snapshot()
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	d.oracle = New()
	d.oracle.SetApplyWorkers(1)
	if err := d.oracle.Restore(snap); err != nil {
		panic(fmt.Sprintf("db: oracle seed: %v", err))
	}
	d.mu.RLock()
	for name, p := range d.procs {
		d.oracle.procs[name] = p
	}
	d.mu.RUnlock()
}

// CheckOracle reports the first recorded divergence between the
// parallel applier and the shadow sequential applier, or performs a
// final byte-level state comparison if none was recorded. It returns
// nil when the oracle is disabled.
func (d *Database) CheckOracle() error {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	if d.oracle == nil {
		return nil
	}
	if d.oracleErr != nil {
		return d.oracleErr
	}
	d.compareOracleState("finale")
	return d.oracleErr
}

// recordOracleDivergence keeps only the first divergence; later ones
// are cascading noise.
func (d *Database) recordOracleDivergence(format string, args ...any) {
	if d.oracleErr == nil {
		d.oracleErr = fmt.Errorf("determinism oracle: "+format, args...)
	}
}

// errStr normalizes errors for comparison.
func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// mirrorOne replays a single green update on the shadow database and
// compares the abort outcome. Caller holds applyMu.
func (d *Database) mirrorOne(update []byte, got error) {
	if d.oracle == nil {
		return
	}
	want := d.oracle.Apply(update)
	if errStr(got) != errStr(want) {
		d.recordOracleDivergence("apply error mismatch: parallel=%q sequential=%q", errStr(got), errStr(want))
	}
}

// mirrorBatch replays a batch sequentially on the shadow database,
// compares every abort outcome, and — when the batch went through the
// parallel scheduler — the serialized states. Caller holds applyMu.
func (d *Database) mirrorBatch(updates [][]byte, got []error, parallel bool) {
	if d.oracle == nil {
		return
	}
	want := d.oracle.ApplyBatch(updates)
	for i := range updates {
		if errStr(got[i]) != errStr(want[i]) {
			d.recordOracleDivergence("batch update %d error mismatch: parallel=%q sequential=%q",
				i, errStr(got[i]), errStr(want[i]))
			return
		}
	}
	if parallel {
		d.compareOracleState("parallel batch")
	}
}

// mirrorRestore resets the shadow database alongside the real one.
// Caller holds applyMu.
func (d *Database) mirrorRestore(buf []byte) {
	if d.oracle == nil {
		return
	}
	if err := d.oracle.Restore(buf); err != nil {
		d.recordOracleDivergence("shadow restore failed: %v", err)
	}
}

// compareOracleState asserts byte-identical snapshots. Caller holds
// applyMu.
func (d *Database) compareOracleState(when string) {
	if d.oracle == nil || d.oracleErr != nil {
		return
	}
	got, want := d.Snapshot(), d.oracle.Snapshot()
	if !bytes.Equal(got, want) {
		d.recordOracleDivergence("state divergence after %s:\nparallel:   %s\nsequential: %s", when, got, want)
	}
}
