package db

import (
	"time"

	"evsdb/internal/obs"
)

// applyObs is the pre-registered instrument bundle for the parallel
// green applier, mirroring internal/core's coreObs pattern. The engine
// hands its registry to the database at construction; an
// uninstrumented database skips all observation.
type applyObs struct {
	batches    *obs.Counter // scheduled batches, by mode
	seqBatches *obs.Counter
	actions    [4]*obs.Counter // applied updates by class
	waves      *obs.Counter
	conflicts  *obs.Counter
	barriers   *obs.Counter
	workersG   *obs.Gauge
	util       *obs.Gauge
	stall      *obs.Histogram
}

func newApplyObs(r *obs.Registry) *applyObs {
	m := &applyObs{
		batches: r.Counter("evsdb_apply_batches_total",
			"Green apply batches by scheduling mode.", obs.L("mode", "parallel")),
		seqBatches: r.Counter("evsdb_apply_batches_total",
			"Green apply batches by scheduling mode.", obs.L("mode", "sequential")),
		waves: r.Counter("evsdb_apply_waves_total",
			"Conflict-free waves executed by the parallel applier."),
		conflicts: r.Counter("evsdb_apply_conflicts_total",
			"Waves closed early because an update's key set conflicted."),
		barriers: r.Counter("evsdb_apply_barriers_total",
			"Complex updates executed alone as full barriers."),
		workersG: r.Gauge("evsdb_apply_workers",
			"Resolved parallel green-apply worker-pool width."),
		util: r.Gauge("evsdb_apply_worker_utilization_permille",
			"Worker busy time over wall time of the last parallel batch, in permille."),
		stall: r.Histogram("evsdb_apply_stall_seconds",
			"Wall time the engine loop stalls in one green apply batch.", nil),
	}
	for c := classStrict; c <= classComplex; c++ {
		m.actions[c] = r.Counter("evsdb_apply_actions_total",
			"Green updates applied by dependency class.", obs.L("class", c.String()))
	}
	return m
}

// observeApply records one scheduled batch. Caller holds applyMu.
func (d *Database) observeApply(n int, st applyStats, wall time.Duration) {
	if d.met == nil {
		return
	}
	m := d.met
	m.stall.ObserveDuration(wall)
	if st.sequential {
		m.seqBatches.Inc()
		m.actions[classStrict].Add(uint64(n))
		return
	}
	m.batches.Inc()
	for c, cnt := range st.classes {
		if cnt > 0 {
			m.actions[c].Add(uint64(cnt))
		}
	}
	m.waves.Add(uint64(st.waves))
	m.conflicts.Add(uint64(st.conflicts))
	m.barriers.Add(uint64(st.barriers))
	if st.elapsed > 0 && st.workers > 0 {
		util := st.busy.Seconds() / (st.elapsed.Seconds() * float64(st.workers))
		m.util.Set(int64(util * 1000))
	}
}

// Instrument attaches metric instruments created from reg. Call once,
// before concurrent use (the engine does this at construction).
func (d *Database) Instrument(reg *obs.Registry) {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	d.met = newApplyObs(reg)
	d.met.workersG.Set(int64(d.effectiveWorkers()))
}
