package db

import (
	"fmt"
	"testing"
)

// benchUpdates builds n distinct single-set updates (the shape of the
// engine's fused green runs).
func benchUpdates(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = EncodeUpdate(Set(fmt.Sprintf("k%04d", i%256), "v"))
	}
	return out
}

func BenchmarkApply(b *testing.B) {
	d := New()
	updates := benchUpdates(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Apply(updates[i%len(updates)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyBatch64 applies 64 updates per operation under one lock
// acquisition; compare ns/op ÷ 64 against BenchmarkApply's ns/op for the
// per-update amortization.
func BenchmarkApplyBatch64(b *testing.B) {
	d := New()
	updates := benchUpdates(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, err := range d.ApplyBatch(updates) {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
