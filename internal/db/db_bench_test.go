package db

import (
	"fmt"
	"testing"
)

// benchUpdates builds n distinct single-set updates (the shape of the
// engine's fused green runs).
func benchUpdates(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = EncodeUpdate(Set(fmt.Sprintf("k%04d", i%256), "v"))
	}
	return out
}

// requireNoErrors fails the bench on the first apply error: a benchmark
// that keeps counting after an error measures the abort path, not the
// apply path.
func requireNoErrors(b *testing.B, errs []error) {
	b.Helper()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApply(b *testing.B) {
	d := New()
	updates := benchUpdates(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Apply(updates[i%len(updates)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyBatch64 applies 64 updates per operation under one lock
// acquisition; compare ns/op ÷ 64 against BenchmarkApply's ns/op for the
// per-update amortization.
func BenchmarkApplyBatch64(b *testing.B) {
	d := New()
	updates := benchUpdates(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireNoErrors(b, d.ApplyBatch(updates))
	}
}

// BenchmarkApplyBatchParallel64 drives the same 64-update batch through
// the dependency-aware parallel scheduler (distinct keys: one wave);
// compare against BenchmarkApplyBatch64 for the scheduling overhead on
// this host and the scaling on multi-core ones.
func BenchmarkApplyBatchParallel64(b *testing.B) {
	d := New()
	updates := benchUpdates(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireNoErrors(b, d.ApplyBatchParallel(updates))
	}
}

// benchmarkDirtyReadDuring measures degraded-read latency while green
// apply churns in the background — the satellite's before/after probe.
// With the old single-mutex database every dirty read waited out whole
// green batches; after the RWMutex split, reads only wait out the
// parallel applier's merge windows.
func benchmarkDirtyReadDuring(b *testing.B, apply func(d *Database, updates [][]byte)) {
	d := New()
	if err := d.ApplyDirty(EncodeUpdate(Set("red", "r"))); err != nil {
		b.Fatal(err)
	}
	updates := benchUpdates(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				apply(d, updates)
			}
		}
	}()
	q := Get("red")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.QueryDirty(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkApplyDirty10k measures one dirty update against a 10k-key
// green store. The seed implementation materialized a copy-on-write
// view of the entire database per dirty update under the green write
// lock (O(|db|), ~1.8 ms here); the staged-effect overlay path is
// O(|update|) and never takes the green write lock.
func BenchmarkApplyDirty10k(b *testing.B) {
	d := New()
	batch := make([][]byte, 10000)
	for i := range batch {
		batch[i] = EncodeUpdate(Set(fmt.Sprintf("k%05d", i), "v"))
	}
	requireNoErrors(b, d.ApplyBatch(batch))
	u := EncodeUpdate(Set("red", "r"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ApplyDirty(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirtyReadDuringSequentialApply(b *testing.B) {
	benchmarkDirtyReadDuring(b, func(d *Database, updates [][]byte) {
		d.ApplyBatch(updates)
	})
}

func BenchmarkDirtyReadDuringParallelApply(b *testing.B) {
	benchmarkDirtyReadDuring(b, func(d *Database, updates [][]byte) {
		d.ApplyBatchParallel(updates)
	})
}
