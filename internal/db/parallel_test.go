package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// genUpdate draws one encoded update from a mix that covers every
// dependency class: strict set/del/mixed, § 6 commutative adds and
// timestamp writes, complex cas/proc barriers, malformed encodings,
// empty and noop-only updates.
func genUpdate(rng *rand.Rand) []byte {
	key := func() string { return fmt.Sprintf("k%d", rng.Intn(16)) }
	switch rng.Intn(12) {
	case 0:
		return EncodeUpdate(Set(key(), fmt.Sprintf("v%d", rng.Intn(1000))))
	case 1:
		return EncodeUpdate(Del(key()))
	case 2: // the engine's standard strict mixed update
		k := key()
		return EncodeUpdate(Set(k, fmt.Sprintf("v%d", rng.Intn(1000))), Add("ctr:"+k, 1))
	case 3:
		return EncodeUpdate(Add(key(), int64(rng.Intn(7))-3))
	case 4: // commutative multi-add
		return EncodeUpdate(Add(key(), 1), Add(key(), int64(rng.Intn(5))))
	case 5:
		return EncodeUpdate(TSSet(key(), fmt.Sprintf("t%d", rng.Intn(100)), int64(rng.Intn(50))))
	case 6: // cas, guard passes or fails depending on live state
		return EncodeUpdate(CAS(map[string]string{key(): fmt.Sprintf("v%d", rng.Intn(1000))},
			Set(key(), "cas-win")))
	case 7: // cas with empty guard always applies its body
		return EncodeUpdate(CAS(nil, Set(key(), "cas-free"), Add("ctr:"+key(), 2)))
	case 8:
		if rng.Intn(2) == 0 {
			return EncodeUpdate(Proc("double", []byte(key())))
		}
		return EncodeUpdate(Proc("missing", nil)) // deterministic abort
	case 9: // bad add delta aborts mid-update with partial effects
		k := key()
		return EncodeUpdate(Set(k, "partial"), Op{Kind: "add", Key: k, Value: "not-a-number"})
	case 10:
		return []byte(`{"ops":[{`) // malformed encoding
	default:
		return EncodeUpdate(Noop("padding"), Set(key(), "after-noop"))
	}
}

func registerTestProcs(d *Database) {
	d.RegisterProc("double", func(tx *Tx, args []byte) error {
		k := string(args)
		v, _ := tx.Get(k)
		tx.Set(k, v+v)
		return nil
	})
}

// TestParallelEquivalenceRandom is the randomized equivalence suite the
// issue demands: across 1k generated schedules of mixed-class batches,
// the parallel applier must match the sequential applier exactly —
// same per-update error strings, same state bytes (which include the
// version) after every batch.
func TestParallelEquivalenceRandom(t *testing.T) {
	const schedules = 1000
	for s := 0; s < schedules; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		par, seq := New(), New()
		par.SetApplyWorkers(2 + rng.Intn(7))
		seq.SetApplyWorkers(1)
		registerTestProcs(par)
		registerTestProcs(seq)
		nBatches := 1 + rng.Intn(4)
		for b := 0; b < nBatches; b++ {
			batch := make([][]byte, 1+rng.Intn(80))
			for i := range batch {
				batch[i] = genUpdate(rng)
			}
			perrs := par.ApplyBatchParallel(batch)
			serrs := seq.ApplyBatch(batch)
			for i := range batch {
				if errStr(perrs[i]) != errStr(serrs[i]) {
					t.Fatalf("schedule %d batch %d update %d: parallel err %q, sequential err %q\nupdate: %s",
						s, b, i, errStr(perrs[i]), errStr(serrs[i]), batch[i])
				}
			}
			if p, q := par.Snapshot(), seq.Snapshot(); !bytes.Equal(p, q) {
				t.Fatalf("schedule %d batch %d: state divergence\nparallel:   %s\nsequential: %s", s, b, p, q)
			}
		}
	}
}

// TestParallelWorkerPoolOfOne forces conflict- and barrier-heavy
// batches through the full scheduler machinery with a single worker: a
// pool of one must neither deadlock nor starve, and must still produce
// the sequential outcome. (ApplyBatchParallel short-circuits one-worker
// databases to the sequential path, so the scheduler is driven
// directly.)
func TestParallelWorkerPoolOfOne(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	batch := make([][]byte, 256)
	for i := range batch {
		batch[i] = genUpdate(rng)
	}
	par, seq := New(), New()
	registerTestProcs(par)
	registerTestProcs(seq)
	done := make(chan []error, 1)
	go func() {
		par.applyMu.Lock()
		defer par.applyMu.Unlock()
		errs, _ := par.applyParallelLocked(batch, 1)
		done <- errs
	}()
	var perrs []error
	select {
	case perrs = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("single-worker parallel apply wedged")
	}
	serrs := seq.ApplyBatch(batch)
	for i := range batch {
		if errStr(perrs[i]) != errStr(serrs[i]) {
			t.Fatalf("update %d: parallel err %q, sequential err %q", i, errStr(perrs[i]), errStr(serrs[i]))
		}
	}
	if p, q := par.Snapshot(), seq.Snapshot(); !bytes.Equal(p, q) {
		t.Fatalf("state divergence with one worker:\nparallel:   %s\nsequential: %s", p, q)
	}
}

// TestAnalyzeClasses pins the decode-time classification rules the
// scheduler depends on.
func TestAnalyzeClasses(t *testing.T) {
	cases := []struct {
		update []byte
		class  updateClass
	}{
		{EncodeUpdate(Set("a", "1")), classStrict},
		{EncodeUpdate(Set("a", "1"), Add("a", 1)), classStrict},
		{EncodeUpdate(Add("a", 1)), classCommutative},
		{EncodeUpdate(Add("a", 1), Noop("x"), Add("b", 2)), classCommutative},
		{EncodeUpdate(TSSet("a", "v", 3)), classTimestamp},
		{EncodeUpdate(TSSet("a", "v", 3), Add("a", 1)), classStrict},
		{EncodeUpdate(CAS(nil, Set("a", "1"))), classComplex},
		{EncodeUpdate(Proc("p", nil)), classComplex},
		{EncodeUpdate(Op{Kind: "mystery"}), classComplex},
		{EncodeUpdate(Noop("x")), classStrict},
		{EncodeUpdate(), classStrict},
	}
	for i, c := range cases {
		an := analyzeUpdate(c.update)
		if an.decErr != nil {
			t.Fatalf("case %d: unexpected decode error %v", i, an.decErr)
		}
		if an.class != c.class {
			t.Errorf("case %d (%s): class %v, want %v", i, c.update, an.class, c.class)
		}
	}
	if an := analyzeUpdate([]byte("{broken")); an.decErr == nil {
		t.Error("malformed update did not produce a decode error")
	}
}

// TestWaveConflictRules pins the scheduler's conflict matrix: same-class
// § 6 updates share waves freely, cross-class key sharing and strict
// dependence conditions split waves, complex updates barrier.
func TestWaveConflictRules(t *testing.T) {
	plan := func(updates ...[]byte) []run {
		ans := make([]*analyzed, len(updates))
		for i, u := range updates {
			ans[i] = analyzeUpdate(u)
		}
		var st applyStats
		return planRuns(ans, &st)
	}

	// Disjoint strict updates form one wave.
	runs := plan(EncodeUpdate(Set("a", "1")), EncodeUpdate(Set("b", "2")), EncodeUpdate(Set("c", "3")))
	if len(runs) != 1 || runs[0].barrier {
		t.Fatalf("disjoint strict updates: got runs %+v, want one wave", runs)
	}

	// Write-write strict overlap splits.
	runs = plan(EncodeUpdate(Set("a", "1")), EncodeUpdate(Set("a", "2")))
	if len(runs) != 2 {
		t.Fatalf("conflicting strict updates: got runs %+v, want two waves", runs)
	}

	// Commutative adds on one key share a wave; so do timestamp writes.
	runs = plan(EncodeUpdate(Add("a", 1)), EncodeUpdate(Add("a", 2)), EncodeUpdate(Add("a", 3)))
	if len(runs) != 1 {
		t.Fatalf("commutative adds: got runs %+v, want one wave", runs)
	}
	runs = plan(EncodeUpdate(TSSet("a", "x", 1)), EncodeUpdate(TSSet("a", "y", 2)))
	if len(runs) != 1 {
		t.Fatalf("timestamp writes: got runs %+v, want one wave", runs)
	}

	// Cross-class key sharing splits (strict set vs commutative add).
	runs = plan(EncodeUpdate(Add("a", 1)), EncodeUpdate(Set("a", "x")))
	if len(runs) != 2 {
		t.Fatalf("cross-class sharing: got runs %+v, want two waves", runs)
	}

	// Complex updates barrier and split their neighbors.
	runs = plan(EncodeUpdate(Set("a", "1")), EncodeUpdate(CAS(nil, Set("b", "2"))), EncodeUpdate(Set("c", "3")))
	if len(runs) != 3 || !runs[1].barrier {
		t.Fatalf("complex barrier: got runs %+v, want wave/barrier/wave", runs)
	}
}

// TestOracleDetectsDivergence desyncs the shadow database by hand and
// checks the oracle reports it; the clean path must stay silent.
func TestOracleDetectsDivergence(t *testing.T) {
	d := New()
	d.EnableOracle()
	batch := [][]byte{
		EncodeUpdate(Set("a", "1")), EncodeUpdate(Add("ctr", 2)),
		EncodeUpdate(Set("b", "2")), EncodeUpdate(TSSet("c", "v", 9)),
	}
	d.ApplyBatchParallel(batch)
	if err := d.CheckOracle(); err != nil {
		t.Fatalf("clean run reported divergence: %v", err)
	}
	// Corrupt the shadow: the next check must notice.
	if err := d.oracle.Apply(EncodeUpdate(Set("sneak", "x"))); err != nil {
		t.Fatalf("shadow apply: %v", err)
	}
	if err := d.CheckOracle(); err == nil {
		t.Fatal("oracle missed a forced divergence")
	}
}

// TestParallelKeepsDirtyOverlay checks a red overlay applied mid-stream
// survives green parallel batches untouched and still layers over the
// new green state.
func TestParallelKeepsDirtyOverlay(t *testing.T) {
	d := New()
	if err := d.ApplyDirty(EncodeUpdate(Set("red", "r1"))); err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 16)
	for i := range batch {
		batch[i] = EncodeUpdate(Set(fmt.Sprintf("g%d", i), "v"))
	}
	d.SetApplyWorkers(4)
	d.ApplyBatchParallel(batch)
	res, err := d.QueryDirty(Get("red"))
	if err != nil || !res.Found || res.Value != "r1" || !res.Dirty {
		t.Fatalf("dirty read after parallel apply: %+v err=%v", res, err)
	}
	if res, _ := d.QueryGreen(Get("g3")); res.Value != "v" {
		t.Fatalf("green read after parallel apply: %+v", res)
	}
}
