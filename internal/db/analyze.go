package db

import (
	"encoding/json"
	"fmt"
)

// This file implements decode-time dependency analysis for the parallel
// green applier (DESIGN.md § 10). Every encoded update is decoded once
// and classified; the classification and the extracted read/write key
// sets drive the conflict scheduler in parallel.go.

// updateClass partitions updates by how freely they may be reordered or
// overlapped inside one totally-ordered batch.
type updateClass uint8

const (
	// classStrict updates (set/del, or any mix of simple ops) carry
	// exact read/write key sets; they may run concurrently with updates
	// whose key sets do not conflict.
	classStrict updateClass = iota
	// classCommutative updates consist solely of add ops (§ 6
	// commutative semantics): their effects are deltas that merge
	// correctly under any interleaving with each other.
	classCommutative
	// classTimestamp updates consist solely of tsset ops (§ 6 timestamp
	// semantics): the highest timestamp wins regardless of order.
	classTimestamp
	// classComplex updates contain cas, proc, or unrecognized ops whose
	// key sets cannot be determined statically; they act as full
	// barriers and execute alone, in total order, via the sequential
	// applier.
	classComplex
)

func (c updateClass) String() string {
	switch c {
	case classStrict:
		return "strict"
	case classCommutative:
		return "commutative"
	case classTimestamp:
		return "timestamp"
	case classComplex:
		return "complex"
	}
	return "unknown"
}

// analyzed is the decode-time view of one encoded update.
type analyzed struct {
	ops   []Op
	class updateClass
	// reads holds keys whose current value the update observes (add
	// reads the stored integer, tsset compares the stored timestamp);
	// writes holds keys the update may modify. Complex updates have nil
	// sets — their barrier classification makes the sets irrelevant.
	reads  []string
	writes []string
	// decErr records a deterministic decode failure; such an update
	// aborts without effects (the version still advances), so it needs
	// no key sets and never conflicts.
	decErr error
}

// analyzeUpdate decodes an update and extracts its class and key sets.
// The op-kind switch below must stay in lockstep with applyOps and
// evalOps; keysetvet_test.go enforces that mechanically.
func analyzeUpdate(update []byte) *analyzed {
	var u Update
	if err := json.Unmarshal(update, &u); err != nil {
		// Keep the exact error shape of the sequential path
		// (applyUpdate) so the determinism oracle sees identical abort
		// messages from both appliers.
		return &analyzed{decErr: fmt.Errorf("decode update: %w", err)}
	}
	an := &analyzed{ops: u.Ops}
	allAdd, allTS, any := true, true, false
	for _, op := range u.Ops {
		switch op.Kind {
		case "noop":
			// No keys, no effect; does not influence the class.
			continue
		case "set", "del":
			an.writes = append(an.writes, op.Key)
			allAdd, allTS = false, false
		case "add":
			an.reads = append(an.reads, op.Key)
			an.writes = append(an.writes, op.Key)
			allTS = false
		case "tsset":
			an.reads = append(an.reads, op.Key)
			an.writes = append(an.writes, op.Key)
			allAdd = false
		default:
			// cas and proc touch keys chosen at execution time (guard
			// bodies, procedure logic); so do unknown kinds. All are
			// barriers.
			an.class = classComplex
			an.reads, an.writes = nil, nil
			return an
		}
		any = true
	}
	switch {
	case any && allAdd:
		an.class = classCommutative
	case any && allTS:
		an.class = classTimestamp
	default:
		an.class = classStrict
	}
	return an
}
