package db

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// This is the keyset "vet" check: a small static analysis over this
// package's own source that keeps the dependency analyzer honest. Any
// op kind the appliers (applyOps, evalOps) know how to mutate state
// with MUST also be handled by analyzeUpdate's key-set switch —
// otherwise a new op would silently fall into the unknown-kind default
// and, worse, a drift between applier and analyzer could let the
// scheduler overlap updates whose keys it never saw. The nightly CI
// job runs this alongside the race corpus.

// opKindCases walks a file and collects the string literals used as
// case labels in every `switch op.Kind` statement inside the named
// functions.
func opKindCases(t *testing.T, path string, funcs map[string]bool) map[string]map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	out := make(map[string]map[string]bool)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !funcs[fn.Name.Name] {
			continue
		}
		kinds := make(map[string]bool)
		ast.Inspect(fn, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			sel, ok := sw.Tag.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Kind" {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				for _, e := range cc.List {
					if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						kinds[strings.Trim(lit.Value, `"`)] = true
					}
				}
			}
			return true
		})
		out[fn.Name.Name] = kinds
	}
	return out
}

// TestOpKindsDeclareKeySets cross-checks the three op-kind switches:
// every kind the sequential applier or the staged evaluator executes
// must appear in the analyzer (with a key-set or an explicit complex
// classification), and vice versa — no switch may know a kind the
// others do not.
func TestOpKindsDeclareKeySets(t *testing.T) {
	appliers := opKindCases(t, "db.go", map[string]bool{"applyOps": true})["applyOps"]
	evaluators := opKindCases(t, "eval.go", map[string]bool{"evalOps": true})["evalOps"]
	analyzers := opKindCases(t, "analyze.go", map[string]bool{"analyzeUpdate": true})["analyzeUpdate"]
	if len(appliers) == 0 || len(evaluators) == 0 || len(analyzers) == 0 {
		t.Fatalf("op-kind switches not found: applyOps=%v evalOps=%v analyzeUpdate=%v",
			appliers, evaluators, analyzers)
	}
	// The analyzer folds cas/proc into the default complex case rather
	// than naming them; they still must be named by the appliers, and
	// everything else must match exactly.
	for kind := range appliers {
		if kind == "cas" || kind == "proc" {
			continue
		}
		if !analyzers[kind] {
			t.Errorf("applyOps handles op kind %q but analyzeUpdate declares no key set for it", kind)
		}
	}
	for kind := range analyzers {
		if !appliers[kind] {
			t.Errorf("analyzeUpdate declares key sets for op kind %q but applyOps cannot execute it", kind)
		}
		if !evaluators[kind] && kind != "noop" {
			t.Errorf("analyzeUpdate declares op kind %q but evalOps cannot stage it", kind)
		}
	}
	for kind := range appliers {
		if !evaluators[kind] {
			t.Errorf("applyOps handles op kind %q but evalOps cannot stage it", kind)
		}
	}
}

// TestGreenMutatorsRouteThroughAppliers flags Database methods that
// assign to the green maps outside the sanctioned applier/merge
// functions — state mutated without declared key sets is exactly the
// bug class the parallel scheduler cannot tolerate.
func TestGreenMutatorsRouteThroughAppliers(t *testing.T) {
	allowed := map[string]bool{
		// The appliers and the merge path.
		"applyOps": true, "applyEffects": true,
		// Lifecycle: wholesale state replacement, not per-key mutation.
		"Restore": true, "New": true,
	}
	isGreenMap := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "d" {
			return "", false
		}
		if sel.Sel.Name == "data" || sel.Sel.Name == "ts" {
			return sel.Sel.Name, true
		}
		return "", false
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for path, f := range pkg.Files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || allowed[fn.Name.Name] {
					continue
				}
				ast.Inspect(fn, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range st.Lhs {
							if idx, ok := lhs.(*ast.IndexExpr); ok {
								if name, green := isGreenMap(idx.X); green {
									t.Errorf("%s: %s writes green map d.%s directly; green mutations must go through applyOps/applyEffects so key sets stay declared",
										fset.Position(st.Pos()), fn.Name.Name, name)
								}
							}
						}
					case *ast.CallExpr:
						if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
							if name, green := isGreenMap(st.Args[0]); green {
								t.Errorf("%s: %s deletes from green map d.%s directly; route through applyOps/applyEffects",
									fset.Position(st.Pos()), fn.Name.Name, name)
							}
						}
					}
					return true
				})
			}
		}
	}
}
