package db

import (
	"testing"
)

// FuzzApply throws arbitrary bytes at the update decoder and applier: a
// replica must survive any garbage a buggy client encodes (errors are
// deterministic aborts, never panics), and determinism must hold — two
// databases fed the same bytes end in the same state.
func FuzzApply(f *testing.F) {
	f.Add([]byte(`{"ops":[{"kind":"set","key":"a","value":"1"}]}`))
	f.Add([]byte(`{"ops":[{"kind":"add","key":"n","value":"5"}]}`))
	f.Add([]byte(`{"ops":[{"kind":"cas","expect":{"a":"1"},"ops":[{"kind":"del","key":"a"}]}]}`))
	f.Add([]byte(`{"ops":[{"kind":"tsset","key":"t","value":"x","ts":9}]}`))
	f.Add([]byte(`{"ops":[{"kind":"noop","value":"pad"}]}`))
	f.Add([]byte(`not even json`))

	f.Fuzz(func(t *testing.T, update []byte) {
		d1, d2 := New(), New()
		err1 := d1.Apply(update)
		err2 := d2.Apply(update)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
		}
		if string(d1.Snapshot()) != string(d2.Snapshot()) {
			t.Fatal("same update produced different states")
		}
		if d1.Version() != 1 {
			t.Fatalf("version %d after one apply", d1.Version())
		}
	})
}

// FuzzQuery: arbitrary query bytes never panic and answer consistently
// between the green and dirty paths on a clean database.
func FuzzQuery(f *testing.F) {
	f.Add([]byte(`{"kind":"get","key":"a"}`))
	f.Add([]byte(`{"kind":"prefix","key":"a"}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, query []byte) {
		d := New()
		_ = d.Apply(EncodeUpdate(Set("a", "1")))
		g, gerr := d.QueryGreen(query)
		dr, derr := d.QueryDirty(query)
		if (gerr == nil) != (derr == nil) {
			t.Fatalf("green/dirty disagree on validity: %v vs %v", gerr, derr)
		}
		if gerr == nil && g.Value != dr.Value {
			t.Fatalf("green %q vs dirty %q on clean db", g.Value, dr.Value)
		}
	})
}
