package db

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the dependency-aware parallel green applier
// (DESIGN.md § 10). Updates are analyzed once (analyze.go), partitioned
// into contiguous conflict-free waves, evaluated concurrently by a
// bounded worker pool under a read lock, and their staged effects
// merged sequentially in batch order under the write lock. Waves are
// the topological levels of the batch's conflict DAG restricted to
// contiguous runs: a conflict or a complex barrier closes the wave, so
// merge order always equals total order and sequential equivalence is
// immediate.

const (
	// maxDefaultApplyWorkers caps the default pool width; green apply
	// rarely benefits beyond this.
	maxDefaultApplyWorkers = 8
	// minParallelBatch is the batch size below which scheduling
	// overhead outweighs parallel decode; smaller batches take the
	// sequential path.
	minParallelBatch = 4
	// minParallelWave is the wave size below which evaluation runs
	// inline on the coordinator instead of fanning out.
	minParallelWave = 3
)

// SetApplyWorkers configures the parallel green-apply width. n <= 0
// restores the default min(GOMAXPROCS, 8); n == 1 disables parallel
// apply entirely (every batch takes the exact sequential path).
func (d *Database) SetApplyWorkers(n int) {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	if n < 0 {
		n = 0
	}
	d.workers = n
	if d.met != nil {
		d.met.workersG.Set(int64(d.effectiveWorkers()))
	}
}

// ApplyWorkers reports the resolved parallel-apply width.
func (d *Database) ApplyWorkers() int {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	return d.effectiveWorkers()
}

// effectiveWorkers resolves the configured width; callers hold applyMu.
func (d *Database) effectiveWorkers() int {
	if d.workers > 0 {
		return d.workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxDefaultApplyWorkers {
		w = maxDefaultApplyWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ApplyBatchParallel applies a run of encoded updates with the
// dependency-aware parallel scheduler. It is observationally identical
// to ApplyBatch — same per-update errors, same final state bytes, same
// version accounting — which the determinism oracle (oracle.go)
// enforces when enabled. Batches below minParallelBatch and databases
// configured with one worker fall back to the sequential applier.
func (d *Database) ApplyBatchParallel(updates [][]byte) []error {
	start := time.Now()
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	w := d.effectiveWorkers()
	var errs []error
	var st applyStats
	if w <= 1 || len(updates) < minParallelBatch {
		errs = d.applyBatchSeq(updates)
		st.sequential = true
	} else {
		errs, st = d.applyParallelLocked(updates, w)
	}
	d.observeApply(len(updates), st, time.Since(start))
	d.mirrorBatch(updates, errs, !st.sequential)
	return errs
}

// applyStats summarizes one scheduled batch for instrumentation.
type applyStats struct {
	sequential bool
	waves      int
	conflicts  int // waves closed early because a member conflicted
	barriers   int // complex updates executed alone
	classes    [4]int
	busy       time.Duration // summed worker busy time (decode + eval)
	elapsed    time.Duration // wall time of the scheduled phases
	workers    int
}

// run is a contiguous slice of the batch scheduled as one unit.
type run struct {
	start, end int  // updates[start:end]
	barrier    bool // single complex update applied sequentially
}

// waveSets tracks the aggregate key footprint of the wave being built.
type waveSets struct {
	strictReads  map[string]struct{}
	strictWrites map[string]struct{}
	commKeys     map[string]struct{}
	tsKeys       map[string]struct{}
}

func newWaveSets() *waveSets {
	return &waveSets{
		strictReads:  make(map[string]struct{}),
		strictWrites: make(map[string]struct{}),
		commKeys:     make(map[string]struct{}),
		tsKeys:       make(map[string]struct{}),
	}
}

func (w *waveSets) reset() {
	clear(w.strictReads)
	clear(w.strictWrites)
	clear(w.commKeys)
	clear(w.tsKeys)
}

func member(m map[string]struct{}, k string) bool { _, ok := m[k]; return ok }

// conflicts reports whether an update cannot join the current wave.
// Strict updates conflict on the classic dependence conditions
// (write/write, write/read, read/write overlap). Same-class § 6 updates
// never conflict with each other — commutative deltas and
// max-timestamp writes merge correctly under any interleaving — but an
// update sharing a key with a member of a DIFFERENT class still
// conflicts: the relaxed merge rules only commute within their own
// class, and the determinism oracle demands byte-identical state.
func (w *waveSets) conflicts(an *analyzed) bool {
	switch an.class {
	case classComplex:
		return true
	case classCommutative:
		for _, k := range an.writes {
			if member(w.strictReads, k) || member(w.strictWrites, k) || member(w.tsKeys, k) {
				return true
			}
		}
	case classTimestamp:
		for _, k := range an.writes {
			if member(w.strictReads, k) || member(w.strictWrites, k) || member(w.commKeys, k) {
				return true
			}
		}
	default: // classStrict
		for _, k := range an.writes {
			if member(w.strictReads, k) || member(w.strictWrites, k) ||
				member(w.commKeys, k) || member(w.tsKeys, k) {
				return true
			}
		}
		for _, k := range an.reads {
			if member(w.strictWrites, k) || member(w.commKeys, k) || member(w.tsKeys, k) {
				return true
			}
		}
	}
	return false
}

// admit adds an update's footprint to the wave.
func (w *waveSets) admit(an *analyzed) {
	switch an.class {
	case classCommutative:
		for _, k := range an.writes {
			w.commKeys[k] = struct{}{}
		}
	case classTimestamp:
		for _, k := range an.writes {
			w.tsKeys[k] = struct{}{}
		}
	default:
		for _, k := range an.reads {
			w.strictReads[k] = struct{}{}
		}
		for _, k := range an.writes {
			w.strictWrites[k] = struct{}{}
		}
	}
}

// planRuns partitions the analyzed batch into contiguous waves and
// barriers, in batch order.
func planRuns(ans []*analyzed, st *applyStats) []run {
	runs := make([]run, 0, 4)
	sets := newWaveSets()
	waveStart := -1
	closeWave := func(end int) {
		if waveStart >= 0 {
			runs = append(runs, run{start: waveStart, end: end})
			st.waves++
			waveStart = -1
			sets.reset()
		}
	}
	for i, an := range ans {
		st.classes[an.class]++
		if an.class == classComplex {
			closeWave(i)
			runs = append(runs, run{start: i, end: i + 1, barrier: true})
			st.barriers++
			continue
		}
		if waveStart < 0 {
			waveStart = i
			sets.admit(an)
			continue
		}
		if sets.conflicts(an) {
			st.conflicts++
			closeWave(i)
			waveStart = i
			sets.reset()
		}
		sets.admit(an)
	}
	closeWave(len(ans))
	return runs
}

// applyParallelLocked runs the full pipeline: parallel analysis,
// wave planning, then per-wave concurrent evaluation and in-order
// merge. The caller holds applyMu, so this is the sole green mutator;
// d.mu is taken read-side for evaluation windows and write-side for
// merges, leaving queries (green and dirty) free to proceed between
// merge windows.
func (d *Database) applyParallelLocked(updates [][]byte, w int) ([]error, applyStats) {
	st := applyStats{workers: w}
	phases := time.Now()
	errs := make([]error, len(updates))
	ans := make([]*analyzed, len(updates))
	var busy atomic.Int64

	// Phase 1: decode and analyze every update concurrently. This is
	// the dominant cost of green apply and needs no database locks.
	var next atomic.Int64
	var wg sync.WaitGroup
	workerN := w
	if workerN > len(updates) {
		workerN = len(updates)
	}
	wg.Add(workerN)
	for g := 0; g < workerN; g++ {
		go func() {
			defer wg.Done()
			t0 := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(updates) {
					break
				}
				ans[i] = analyzeUpdate(updates[i])
			}
			busy.Add(int64(time.Since(t0)))
		}()
	}
	wg.Wait()

	// Phase 2: plan contiguous conflict-free waves.
	runs := planRuns(ans, &st)

	// Phase 3: execute runs in order.
	evals := make([][]effect, len(updates))
	for _, r := range runs {
		if r.barrier {
			an := ans[r.start]
			d.mu.Lock()
			d.version++
			if an.decErr != nil {
				errs[r.start] = an.decErr
			} else {
				errs[r.start] = applyOps(an.ops, d.data, d.ts, d.procs)
			}
			d.mu.Unlock()
			continue
		}
		if r.end-r.start < minParallelWave {
			// Tiny wave: evaluation fan-out costs more than it saves.
			d.mu.Lock()
			for i := r.start; i < r.end; i++ {
				d.version++
				if ans[i].decErr != nil {
					errs[i] = ans[i].decErr
					continue
				}
				errs[i] = applyOps(ans[i].ops, d.data, d.ts, d.procs)
			}
			d.mu.Unlock()
			continue
		}
		// Evaluate the wave concurrently against the wave-base state.
		// Only readers share d.mu here, so concurrent map reads are
		// safe; each worker writes solely its own evals/errs slots.
		d.mu.RLock()
		view := stateView{
			readData: func(k string) (string, bool) { v, ok := d.data[k]; return v, ok },
			readTS:   func(k string) int64 { return d.ts[k] },
		}
		var idx atomic.Int64
		idx.Store(int64(r.start))
		waveW := w
		if waveW > r.end-r.start {
			waveW = r.end - r.start
		}
		wg.Add(waveW)
		for g := 0; g < waveW; g++ {
			go func() {
				defer wg.Done()
				t0 := time.Now()
				for {
					i := int(idx.Add(1)) - 1
					if i >= r.end {
						break
					}
					if ans[i].decErr != nil {
						continue
					}
					evals[i], errs[i] = evalOps(ans[i].ops, view, d.procs)
				}
				busy.Add(int64(time.Since(t0)))
			}()
		}
		wg.Wait()
		d.mu.RUnlock()
		// Merge staged effects sequentially in batch order.
		d.mu.Lock()
		for i := r.start; i < r.end; i++ {
			d.version++
			if ans[i].decErr != nil {
				errs[i] = ans[i].decErr
				continue
			}
			applyEffects(evals[i], d.data, d.ts)
			evals[i] = nil
		}
		d.mu.Unlock()
	}
	st.busy = time.Duration(busy.Load())
	st.elapsed = time.Since(phases)
	return errs, st
}
