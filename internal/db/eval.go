package db

import (
	"fmt"
	"strconv"
)

// This file implements staged evaluation: running an update's ops
// against a read-only view of the state and emitting a list of effects
// to be merged later. The parallel applier evaluates non-conflicting
// updates concurrently under a read lock and merges their effects in
// batch order under the write lock; the dirty overlay evaluates red
// updates against the layered green+overlay view without copying the
// green state.
//
// Effects are replayed in op order against the live maps, so replay
// re-executes each op's state transition (add re-reads the current
// value, tsset re-compares the stored timestamp). For strict updates
// the conflict scheduler guarantees the merge-time values of the
// touched keys equal the evaluation-time values, so replay matches
// sequential application exactly; for § 6 commutative and timestamp
// effects replay is correct under any base by construction — that is
// precisely the paper's relaxed-consistency argument.

type effKind uint8

const (
	effSet effKind = iota
	effDel
	effAdd
	effTS
)

// effect is one staged state transition.
type effect struct {
	kind  effKind
	key   string
	val   string
	delta int64
	ts    int64
}

// stateView is a read-only layered view of database state used during
// staged evaluation. Implementations must be safe for the duration of
// the evaluation (the caller holds a read lock).
type stateView struct {
	readData func(key string) (string, bool)
	readTS   func(key string) int64
}

// evalOps stages the effects of ops against view. A local overlay
// threads through the walk so later ops observe earlier ops' writes in
// the same update, mirroring applyOps exactly. On a failing op the
// effects staged so far are returned alongside the error — the
// sequential applier has the same partial-effect abort semantics, and
// the determinism oracle compares both error strings and state bytes.
func evalOps(ops []Op, view stateView, procs map[string]Procedure) ([]effect, error) {
	var effs []effect
	local := make(map[string]*string)
	localTS := make(map[string]int64)
	readLocal := func(k string) (string, bool) {
		if v, ok := local[k]; ok {
			if v == nil {
				return "", false
			}
			return *v, true
		}
		return view.readData(k)
	}
	readLocalTS := func(k string) int64 {
		if v, ok := localTS[k]; ok {
			return v
		}
		return view.readTS(k)
	}
	var walk func(ops []Op) error
	walk = func(ops []Op) error {
		for _, op := range ops {
			switch op.Kind {
			case "noop":
			case "set":
				v := op.Value
				local[op.Key] = &v
				effs = append(effs, effect{kind: effSet, key: op.Key, val: op.Value})
			case "del":
				local[op.Key] = nil
				effs = append(effs, effect{kind: effDel, key: op.Key})
			case "add":
				delta, err := strconv.ParseInt(op.Value, 10, 64)
				if err != nil {
					return fmt.Errorf("add %q: bad delta %q", op.Key, op.Value)
				}
				curStr, _ := readLocal(op.Key)
				cur, _ := strconv.ParseInt(curStr, 10, 64)
				nv := strconv.FormatInt(cur+delta, 10)
				local[op.Key] = &nv
				effs = append(effs, effect{kind: effAdd, key: op.Key, delta: delta})
			case "tsset":
				if op.TS > readLocalTS(op.Key) {
					v := op.Value
					local[op.Key] = &v
					localTS[op.Key] = op.TS
				}
				effs = append(effs, effect{kind: effTS, key: op.Key, val: op.Value, ts: op.TS})
			case "cas":
				ok := true
				for k, want := range op.Expect {
					if got, found := readLocal(k); !found || got != want {
						ok = false
						break
					}
				}
				if !ok {
					return fmt.Errorf("cas aborted: guard mismatch")
				}
				if err := walk(op.Ops); err != nil {
					return err
				}
			case "proc":
				p, ok := procs[op.Proc]
				if !ok {
					return fmt.Errorf("proc %q not registered", op.Proc)
				}
				tx := &Tx{read: readLocal, write: make(map[string]*string)}
				if err := p(tx, op.Args); err != nil {
					return fmt.Errorf("proc %q: %w", op.Proc, err)
				}
				for k, v := range tx.write {
					local[k] = v
					if v == nil {
						effs = append(effs, effect{kind: effDel, key: k})
					} else {
						effs = append(effs, effect{kind: effSet, key: k, val: *v})
					}
				}
			default:
				return fmt.Errorf("unknown op kind %q", op.Kind)
			}
		}
		return nil
	}
	err := walk(ops)
	return effs, err
}

// applyEffects replays staged effects in order against the live maps.
func applyEffects(effs []effect, data map[string]string, ts map[string]int64) {
	for _, e := range effs {
		switch e.kind {
		case effSet:
			data[e.key] = e.val
		case effDel:
			delete(data, e.key)
		case effAdd:
			cur, _ := strconv.ParseInt(data[e.key], 10, 64)
			data[e.key] = strconv.FormatInt(cur+e.delta, 10)
		case effTS:
			if e.ts > ts[e.key] {
				ts[e.key] = e.ts
				data[e.key] = e.val
			}
		}
	}
}
