package db_test

import (
	"fmt"

	"evsdb/internal/db"
)

func ExampleDatabase() {
	d := db.New()
	_ = d.Apply(db.EncodeUpdate(db.Set("city", "baltimore")))
	_ = d.Apply(db.EncodeUpdate(db.Add("population", 5)))

	res, _ := d.QueryGreen(db.Get("city"))
	fmt.Println(res.Value)
	res, _ = d.QueryGreen(db.Get("population"))
	fmt.Println(res.Value)
	// Output:
	// baltimore
	// 5
}

func ExampleCAS() {
	d := db.New()
	_ = d.Apply(db.EncodeUpdate(db.Set("balance", "100")))

	// A guarded update aborts deterministically when the expectation no
	// longer holds — the § 6 interactive-transaction pattern.
	err := d.Apply(db.EncodeUpdate(
		db.CAS(map[string]string{"balance": "90"}, db.Set("balance", "0"))))
	fmt.Println(err != nil)

	err = d.Apply(db.EncodeUpdate(
		db.CAS(map[string]string{"balance": "100"}, db.Set("balance", "75"))))
	fmt.Println(err)
	res, _ := d.QueryGreen(db.Get("balance"))
	fmt.Println(res.Value)
	// Output:
	// true
	// <nil>
	// 75
}

func ExampleDatabase_ApplyDirty() {
	d := db.New()
	_ = d.Apply(db.EncodeUpdate(db.Set("k", "committed")))

	// Red (locally ordered, not yet global) effects live in an overlay.
	_ = d.ApplyDirty(db.EncodeUpdate(db.Set("k", "tentative")))

	green, _ := d.QueryGreen(db.Get("k"))
	dirty, _ := d.QueryDirty(db.Get("k"))
	fmt.Println(green.Value, dirty.Value, dirty.Dirty)
	// Output: committed tentative true
}

func ExampleDatabase_RegisterProc() {
	d := db.New()
	d.RegisterProc("rename", func(tx *db.Tx, args []byte) error {
		v, ok := tx.Get("old")
		if !ok {
			return fmt.Errorf("nothing to rename")
		}
		tx.Del("old")
		tx.Set(string(args), v)
		return nil
	})
	_ = d.Apply(db.EncodeUpdate(db.Set("old", "payload")))
	_ = d.Apply(db.EncodeUpdate(db.Proc("rename", []byte("new"))))
	res, _ := d.QueryGreen(db.Get("new"))
	fmt.Println(res.Value)
	// Output: payload
}
