// Package corel implements the COReL-style baseline (Keidar 1994): total
// order from the group communication layer plus a per-action end-to-end
// acknowledgment round before an action may be committed to the global
// persistent order.
//
// Cost model per action (paper § 7): one forced disk write at every
// replica and n multicast messages (the action plus one acknowledgment
// multicast per replica). Acknowledgments are cumulative — each covers
// every action the replica has forced so far — so under load they batch
// with group commit, exactly as a production implementation would
// piggyback them. The replication engine removes the acknowledgment round
// entirely; benchmarking both on the same EVS substrate isolates that
// difference, the paper's central claim.
package corel

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("corel: replica closed")

// GroupCom is the group-communication dependency (same as the engine's).
type GroupCom interface {
	Multicast(payload []byte, service evs.ServiceLevel) error
	Events() <-chan evs.Event
}

type msgKind int

const (
	kindAction msgKind = iota + 1
	kindAck
)

type wireMsg struct {
	Kind msgKind        `json:"kind"`
	ID   types.ActionID `json:"id,omitempty"`
	// UpTo is the cumulative acknowledgment bound: every action with
	// delivery index <= UpTo is forced to the sender's stable storage.
	UpTo uint64 `json:"upTo,omitempty"`
	Body []byte `json:"body,omitempty"`
}

// Replica is one COReL server.
type Replica struct {
	id     types.ServerID
	gc     GroupCom
	log    storage.Log
	syncer *storage.AsyncSyncer

	submitCh chan submitReq
	statsCh  chan chan uint64
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// Loop-owned state.
	members     []types.ServerID
	nextIdx     uint64
	delivered   uint64 // actions delivered in total order
	ackHigh     map[types.ServerID]uint64
	commitUpTo  uint64
	pendingByID map[types.ActionID]chan struct{}
	waiters     map[uint64][]chan struct{} // by delivery index
	committed   uint64
}

type submitReq struct {
	body []byte
	ch   chan chan struct{}
}

// New starts a COReL replica on the given group endpoint and log.
func New(id types.ServerID, gc GroupCom, log storage.Log) *Replica {
	r := &Replica{
		id:          id,
		gc:          gc,
		log:         log,
		submitCh:    make(chan submitReq),
		statsCh:     make(chan chan uint64),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		ackHigh:     make(map[types.ServerID]uint64),
		pendingByID: make(map[types.ActionID]chan struct{}),
		waiters:     make(map[uint64][]chan struct{}),
	}
	r.syncer = storage.NewAsyncSyncer(log)
	go r.run()
	return r
}

// Close stops the replica loop.
func (r *Replica) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.syncer.Close()
}

// Committed returns the number of actions committed to the global order.
func (r *Replica) Committed() uint64 {
	ch := make(chan uint64, 1)
	select {
	case r.statsCh <- ch:
		return <-ch
	case <-r.stop:
		return 0
	case <-r.done:
		return 0
	}
}

// Submit injects an action and blocks until it is committed (forced
// write everywhere plus the acknowledgment round).
func (r *Replica) Submit(ctx context.Context, body []byte) error {
	req := submitReq{body: body, ch: make(chan chan struct{}, 1)}
	select {
	case r.submitCh <- req:
	case <-r.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	committed := <-req.ch
	select {
	case <-committed:
		return nil
	case <-r.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Replica) run() {
	defer close(r.done)
	events := r.gc.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			r.handleEvent(ev)
		case req := <-r.submitCh:
			r.handleSubmit(req)
		case ch := <-r.statsCh:
			ch <- r.committed
		case <-r.stop:
			return
		}
	}
}

func (r *Replica) handleSubmit(req submitReq) {
	r.nextIdx++
	id := types.ActionID{Server: r.id, Index: r.nextIdx}
	committed := make(chan struct{})
	r.pendingByID[id] = committed
	req.ch <- committed
	buf, err := json.Marshal(wireMsg{Kind: kindAction, ID: id, Body: req.body})
	if err != nil {
		panic(fmt.Sprintf("corel: marshal: %v", err))
	}
	_ = r.gc.Multicast(buf, evs.Agreed)
}

func (r *Replica) handleEvent(ev evs.Event) {
	switch t := ev.(type) {
	case evs.ViewChange:
		if !t.Config.Transitional {
			r.members = append([]types.ServerID(nil), t.Config.Members...)
			r.advanceCommit()
		}
	case evs.Delivery:
		var m wireMsg
		if err := json.Unmarshal(t.Payload, &m); err != nil {
			return
		}
		switch m.Kind {
		case kindAction:
			r.delivered++
			idx := r.delivered
			if ch, ok := r.pendingByID[m.ID]; ok {
				delete(r.pendingByID, m.ID)
				r.waiters[idx] = append(r.waiters[idx], ch)
			}
			// End-to-end requirement: force the action to stable
			// storage, then acknowledge. The acknowledgment is the
			// per-action cost the replication engine eliminates.
			_ = r.log.Append(t.Payload)
			ack, err := json.Marshal(wireMsg{Kind: kindAck, UpTo: idx})
			if err != nil {
				panic(fmt.Sprintf("corel: marshal ack: %v", err))
			}
			// Tagged: within one group-commit batch only the newest
			// (cumulative) acknowledgment is multicast.
			r.syncer.AfterTagged("ack", func() { _ = r.gc.Multicast(ack, evs.Fifo) })
		case kindAck:
			if m.UpTo > r.ackHigh[t.Sender] {
				r.ackHigh[t.Sender] = m.UpTo
				r.advanceCommit()
			}
		}
	}
}

// advanceCommit commits every action acknowledged by all current members.
func (r *Replica) advanceCommit() {
	if len(r.members) == 0 {
		return
	}
	min := r.delivered
	for _, m := range r.members {
		if v := r.ackHigh[m]; v < min {
			min = v
		}
	}
	for r.commitUpTo < min {
		r.commitUpTo++
		r.committed++
		for _, ch := range r.waiters[r.commitUpTo] {
			close(ch)
		}
		delete(r.waiters, r.commitUpTo)
	}
}
