package corel

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

type rig struct {
	nodes []*evs.Node
	reps  []*Replica
	logs  []*storage.MemLog
}

func buildRig(t *testing.T, n int, opts storage.Options) *rig {
	t.Helper()
	net := memnet.New()
	r := &rig{}
	for i := 0; i < n; i++ {
		id := types.ServerID(fmt.Sprintf("s%02d", i))
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := evs.NewNode(ep, evs.WithTick(500*time.Microsecond))
		log := storage.NewMemLog(opts)
		r.nodes = append(r.nodes, node)
		r.logs = append(r.logs, log)
		r.reps = append(r.reps, New(id, node, log))
	}
	t.Cleanup(func() {
		for _, rep := range r.reps {
			rep.Close()
		}
		for _, node := range r.nodes {
			node.Close()
		}
	})
	time.Sleep(100 * time.Millisecond) // settle the initial view
	return r
}

func TestSubmitCommits(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncNone})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := r.reps[0].Submit(ctx, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := r.reps[0].Committed(); got != 1 {
		t.Fatalf("committed = %d", got)
	}
}

func TestCommitWaitsForAllAcks(t *testing.T) {
	// With forced writes and a measurable latency, commit cannot happen
	// before every replica's forced write: the round trip must take at
	// least one sync latency.
	const lat = 20 * time.Millisecond
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncForced, SyncLatency: lat})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	start := time.Now()
	if err := r.reps[1].Submit(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("committed in %v, faster than one forced write (%v)", elapsed, lat)
	}
}

func TestActionDurableEverywhereBeforeCommit(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncForced})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := r.reps[0].Submit(ctx, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	for i, log := range r.logs {
		recs, err := log.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("replica %d has %d durable records", i, len(recs))
		}
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncNone})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const per = 20
	var wg sync.WaitGroup
	errs := make(chan error, len(r.reps)*per)
	for _, rep := range r.reps {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rep.Submit(ctx, []byte("m")); err != nil {
					errs <- err
					return
				}
			}
		}(rep)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := uint64(len(r.reps) * per)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if r.reps[2].Committed() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("committed %d of %d", r.reps[2].Committed(), want)
}

func TestClosedSubmitFails(t *testing.T) {
	r := buildRig(t, 1, storage.Options{Policy: storage.SyncNone})
	r.reps[0].Close()
	err := r.reps[0].Submit(context.Background(), []byte("x"))
	if err == nil {
		t.Fatal("submit after close succeeded")
	}
}
