// Package twopc implements the two-phase-commit baseline the paper
// compares against (§ 7): the coordinator (the replica that received the
// client action) unicasts PREPARE to every replica, each participant
// forces the action to stable storage and votes, and the coordinator
// forces a commit record before answering the client and asynchronously
// propagating COMMIT.
//
// Cost model per action: two forced disk writes on the latency path
// (participant prepare + coordinator commit) and 2n unicast messages —
// exactly the paper's accounting, and the reason 2PC trails both COReL
// and the replication engine.
package twopc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"evsdb/internal/storage"
	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("twopc: replica closed")

type msgKind int

const (
	kindPrepare msgKind = iota + 1
	kindVote
	kindCommit
)

type wireMsg struct {
	Kind msgKind        `json:"kind"`
	ID   types.ActionID `json:"id"`
	Body []byte         `json:"body,omitempty"`
}

// Replica is one 2PC participant/coordinator.
type Replica struct {
	id     types.ServerID
	tr     transport.Node
	log    storage.Log
	syncer *storage.AsyncSyncer
	peers  []types.ServerID // all replicas including self

	submitCh chan submitReq
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// Loop-owned (committed is atomic: bumped on the sync writer).
	nextIdx   uint64
	votes     map[types.ActionID]map[types.ServerID]bool
	pending   map[types.ActionID]chan struct{}
	prepared  map[types.ActionID][]byte
	committed atomic.Uint64
}

type submitReq struct {
	body []byte
	ch   chan chan struct{}
}

// New starts a 2PC replica. peers must list every replica, self included.
func New(id types.ServerID, tr transport.Node, log storage.Log, peers []types.ServerID) *Replica {
	r := &Replica{
		id:       id,
		tr:       tr,
		log:      log,
		peers:    append([]types.ServerID(nil), peers...),
		submitCh: make(chan submitReq),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		votes:    make(map[types.ActionID]map[types.ServerID]bool),
		pending:  make(map[types.ActionID]chan struct{}),
		prepared: make(map[types.ActionID][]byte),
	}
	r.syncer = storage.NewAsyncSyncer(log)
	go r.run()
	return r
}

// Close stops the replica.
func (r *Replica) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.syncer.Close()
}

// Committed returns the number of actions this coordinator committed.
func (r *Replica) Committed() uint64 {
	return r.committed.Load()
}

// Submit runs one 2PC round as coordinator and blocks until commit.
func (r *Replica) Submit(ctx context.Context, body []byte) error {
	req := submitReq{body: body, ch: make(chan chan struct{}, 1)}
	select {
	case r.submitCh <- req:
	case <-r.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	committed := <-req.ch
	select {
	case <-committed:
		return nil
	case <-r.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Replica) run() {
	defer close(r.done)
	recv := r.tr.Recv()
	for {
		select {
		case msg, ok := <-recv:
			if !ok {
				return
			}
			r.handleWire(msg)
		case req := <-r.submitCh:
			r.handleSubmit(req)
		case <-r.stop:
			return
		}
	}
}

func (r *Replica) handleSubmit(req submitReq) {
	r.nextIdx++
	id := types.ActionID{Server: r.id, Index: r.nextIdx}
	done := make(chan struct{})
	r.pending[id] = done
	r.votes[id] = make(map[types.ServerID]bool)
	req.ch <- done
	buf := encode(wireMsg{Kind: kindPrepare, ID: id, Body: req.body})
	for _, p := range r.peers {
		if p == r.id {
			continue
		}
		_ = r.tr.Send(p, buf)
	}
	// The coordinator prepares locally; its durability is covered by the
	// forced commit record (the second write barrier subsumes the first).
	_ = r.log.Append(buf)
	r.votes[id][r.id] = true
	r.maybeCommit(id)
}

func (r *Replica) handleWire(msg transport.Message) {
	var m wireMsg
	if err := json.Unmarshal(msg.Payload, &m); err != nil {
		return
	}
	switch m.Kind {
	case kindPrepare:
		// Participant: force the prepare record, then vote (first forced
		// write on the action's latency path).
		_ = r.log.Append(msg.Payload)
		r.prepared[m.ID] = m.Body
		vote := encode(wireMsg{Kind: kindVote, ID: m.ID})
		from := msg.From
		r.syncer.After(func() { _ = r.tr.Send(from, vote) })
	case kindVote:
		set, ok := r.votes[m.ID]
		if !ok {
			return
		}
		set[msg.From] = true
		r.maybeCommit(m.ID)
	case kindCommit:
		// Participant: record the outcome (asynchronously durable; the
		// coordinator's forced commit record is authoritative).
		_ = r.log.Append(msg.Payload)
		delete(r.prepared, m.ID)
	}
}

// maybeCommit completes the round once every peer voted: second forced
// write (the commit record), client release, asynchronous COMMIT fan-out.
func (r *Replica) maybeCommit(id types.ActionID) {
	set := r.votes[id]
	for _, p := range r.peers {
		if !set[p] {
			return
		}
	}
	delete(r.votes, id)
	commit := encode(wireMsg{Kind: kindCommit, ID: id})
	_ = r.log.Append(commit)
	ch := r.pending[id]
	delete(r.pending, id)
	peers := r.peers
	self := r.id
	tr := r.tr
	// Second forced write (the commit record), then client release and
	// asynchronous COMMIT fan-out.
	r.syncer.After(func() {
		r.committed.Add(1)
		if ch != nil {
			close(ch)
		}
		for _, p := range peers {
			if p == self {
				continue
			}
			_ = tr.Send(p, commit)
		}
	})
}

func encode(m wireMsg) []byte {
	buf, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("twopc: marshal: %v", err))
	}
	return buf
}
