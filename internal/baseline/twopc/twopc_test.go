package twopc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

type rig struct {
	reps []*Replica
	logs []*storage.MemLog
}

func buildRig(t *testing.T, n int, opts storage.Options) *rig {
	t.Helper()
	net := memnet.New()
	var ids []types.ServerID
	for i := 0; i < n; i++ {
		ids = append(ids, types.ServerID(fmt.Sprintf("s%02d", i)))
	}
	r := &rig{}
	for _, id := range ids {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		log := storage.NewMemLog(opts)
		r.logs = append(r.logs, log)
		r.reps = append(r.reps, New(id, ep, log, ids))
	}
	t.Cleanup(func() {
		for _, rep := range r.reps {
			rep.Close()
		}
	})
	return r
}

func TestSubmitCommits(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncNone})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := r.reps[0].Submit(ctx, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	if r.reps[0].Committed() != 1 {
		t.Fatalf("committed = %d", r.reps[0].Committed())
	}
}

func TestTwoForcedWritesOnLatencyPath(t *testing.T) {
	const lat = 20 * time.Millisecond
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncForced, SyncLatency: lat})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	start := time.Now()
	if err := r.reps[0].Submit(ctx, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Participant prepare force + coordinator commit force are serialized.
	if elapsed < 2*lat {
		t.Fatalf("commit in %v, faster than two serialized forced writes (%v)", elapsed, 2*lat)
	}
}

func TestParticipantsPrepareBeforeCommit(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncForced})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := r.reps[1].Submit(ctx, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	// Every participant has a durable prepare record before the client
	// was released.
	for i, log := range r.logs {
		recs, err := log.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("replica %d has no durable records", i)
		}
	}
}

func TestManySequentialCommits(t *testing.T) {
	r := buildRig(t, 5, storage.Options{Policy: storage.SyncNone})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		if err := r.reps[i%5].Submit(ctx, []byte("tx")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	var total uint64
	for _, rep := range r.reps {
		total += rep.Committed()
	}
	if total != 50 {
		t.Fatalf("total committed %d", total)
	}
}

func TestConcurrentCoordinators(t *testing.T) {
	r := buildRig(t, 3, storage.Options{Policy: storage.SyncNone})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for _, rep := range r.reps {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := rep.Submit(ctx, []byte("tx")); err != nil {
					errs <- err
					return
				}
			}
		}(rep)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClosedSubmitFails(t *testing.T) {
	r := buildRig(t, 1, storage.Options{Policy: storage.SyncNone})
	r.reps[0].Close()
	if err := r.reps[0].Submit(context.Background(), []byte("x")); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
