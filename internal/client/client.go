// Package client is the Go client library for replica HTTP endpoints
// (cmd/replica / internal/httpapi): typed operations, endpoint rotation
// and failover across replicas.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"evsdb/internal/httpapi"
)

// ErrAborted is returned when a replicated action aborted
// deterministically (failed guard, rejected update).
var ErrAborted = errors.New("client: action aborted")

// Level selects read consistency.
type Level string

// Read consistency levels (paper § 6).
const (
	Strict Level = "strict"
	Weak   Level = "weak"
	Dirty  Level = "dirty"
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient overrides the underlying HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries sets how many endpoints are tried per operation (default:
// all of them).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// Client talks to one or more replicas, rotating on failure.
type Client struct {
	endpoints []string
	http      *http.Client
	retries   int
	cursor    atomic.Uint64
}

// New builds a client over the given base endpoints
// (e.g. "http://127.0.0.1:8001").
func New(endpoints []string, opts ...Option) (*Client, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("client: need at least one endpoint")
	}
	c := &Client{
		http: &http.Client{Timeout: 35 * time.Second},
	}
	for _, e := range endpoints {
		c.endpoints = append(c.endpoints, strings.TrimSuffix(e, "/"))
	}
	c.retries = len(c.endpoints)
	for _, opt := range opts {
		opt(c)
	}
	if c.retries <= 0 {
		c.retries = 1
	}
	return c, nil
}

// Set performs a strict replicated write and returns the action's global
// order position.
func (c *Client) Set(ctx context.Context, key, value string) (uint64, error) {
	var res httpapi.WriteResult
	err := c.do(ctx, http.MethodPost,
		"/set?key="+url.QueryEscape(key)+"&value="+url.QueryEscape(value), &res)
	return res.GreenSeq, err
}

// Add performs a commutative increment (available in any component).
func (c *Client) Add(ctx context.Context, key string, delta int64) error {
	var res httpapi.WriteResult
	return c.do(ctx, http.MethodPost,
		"/add?key="+url.QueryEscape(key)+"&delta="+strconv.FormatInt(delta, 10), &res)
}

// TSSet performs a timestamped write (highest timestamp wins).
func (c *Client) TSSet(ctx context.Context, key, value string, ts int64) error {
	var res httpapi.WriteResult
	return c.do(ctx, http.MethodPost,
		"/tsset?key="+url.QueryEscape(key)+"&value="+url.QueryEscape(value)+
			"&ts="+strconv.FormatInt(ts, 10), &res)
}

// Get reads a key at the requested consistency level.
func (c *Client) Get(ctx context.Context, key string, level Level) (httpapi.ReadResult, error) {
	var res httpapi.ReadResult
	err := c.do(ctx, http.MethodGet,
		"/get?key="+url.QueryEscape(key)+"&level="+string(level), &res)
	return res, err
}

// Status reports the state of whichever replica answers first.
func (c *Client) Status(ctx context.Context) (httpapi.Status, error) {
	var res httpapi.Status
	err := c.do(ctx, http.MethodGet, "/status", &res)
	return res, err
}

// Checkpoint asks a replica to compact its log.
func (c *Client) Checkpoint(ctx context.Context) error {
	var res map[string]bool
	return c.do(ctx, http.MethodPost, "/checkpoint", &res)
}

// do runs one operation with endpoint rotation: unreachable or
// unavailable replicas are skipped; deterministic aborts (409) are
// terminal.
func (c *Client) do(ctx context.Context, method, path string, out any) error {
	start := int(c.cursor.Add(1))
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		base := c.endpoints[(start+attempt)%len(c.endpoints)]
		req, err := http.NewRequestWithContext(ctx, method, base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue // connection-level failure: try the next replica
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(body, out); err != nil {
				return fmt.Errorf("decode response from %s: %w", base, err)
			}
			return nil
		case http.StatusConflict:
			return fmt.Errorf("%w: %s", ErrAborted, strings.TrimSpace(string(body)))
		default:
			lastErr = fmt.Errorf("%s: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
		}
	}
	if lastErr == nil {
		lastErr = errors.New("client: no endpoints available")
	}
	return lastErr
}
