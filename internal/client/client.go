// Package client is the Go client library for replica HTTP endpoints
// (cmd/replica / internal/httpapi): typed operations, idempotent retries
// and endpoint failover across replicas.
//
// Every write is stamped with an idempotency key (a random client id
// plus a per-operation sequence number), so the client may safely resend
// the same operation after a timeout or connection failure — including
// through a different replica — and the engine applies it at most once.
//
// Failover policy: the client sticks to one endpoint until it fails in a
// way that another replica could do better (connection error, 503, 502,
// 504), then rotates. Deterministic rejections (409 aborts and other
// 4xx) are terminal: the outcome would be identical everywhere, so no
// rotation and no retry. Between attempts the client backs off
// exponentially with full jitter, honoring any Retry-After hint, and
// derives a per-attempt timeout from the caller's context so one
// black-holed replica cannot consume the whole deadline.
package client

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"evsdb/internal/httpapi"
)

// ErrAborted is returned when a replicated action aborted
// deterministically (failed guard, rejected update). Retrying it — on
// any replica — would produce the same answer.
var ErrAborted = errors.New("client: action aborted")

// Level selects read consistency.
type Level string

// Read consistency levels (paper § 6).
const (
	Strict Level = "strict"
	Weak   Level = "weak"
	Dirty  Level = "dirty"
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient overrides the underlying HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries caps the attempts per operation (default: two passes over
// the endpoint list).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithClientID fixes the idempotency-key client id instead of the random
// default. A process that persists its id and next sequence number can
// resume exactly-once submission across restarts.
func WithClientID(id string) Option {
	return func(c *Client) { c.clientID = id }
}

// WithBackoff tunes the retry backoff envelope: attempt n sleeps a
// uniformly random duration in (0, min(cap, base·2ⁿ)].
func WithBackoff(base, cap time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffCap = base, cap }
}

// Client talks to one or more replicas, rotating on failure.
type Client struct {
	endpoints   []string
	http        *http.Client
	retries     int
	clientID    string
	seq         atomic.Uint64
	cursor      atomic.Uint64 // sticky endpoint index
	backoffBase time.Duration
	backoffCap  time.Duration
}

// minAttemptTimeout floors the per-attempt deadline slice so a nearly
// exhausted budget still allows one real round trip.
const minAttemptTimeout = 50 * time.Millisecond

// New builds a client over the given base endpoints
// (e.g. "http://127.0.0.1:8001").
func New(endpoints []string, opts ...Option) (*Client, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("client: need at least one endpoint")
	}
	c := &Client{
		http:        &http.Client{Timeout: 35 * time.Second},
		backoffBase: 25 * time.Millisecond,
		backoffCap:  time.Second,
	}
	for _, e := range endpoints {
		c.endpoints = append(c.endpoints, strings.TrimSuffix(e, "/"))
	}
	c.retries = 2 * len(c.endpoints)
	for _, opt := range opts {
		opt(c)
	}
	if c.retries <= 0 {
		c.retries = 1
	}
	if c.clientID == "" {
		var buf [8]byte
		if _, err := cryptorand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("client: generate client id: %w", err)
		}
		c.clientID = hex.EncodeToString(buf[:])
	}
	return c, nil
}

// ClientID returns the idempotency-key client id in use.
func (c *Client) ClientID() string { return c.clientID }

// nextKey allocates the idempotency key for one logical operation; every
// retry of that operation reuses it.
func (c *Client) nextKey() string {
	return "&client=" + url.QueryEscape(c.clientID) +
		"&seq=" + strconv.FormatUint(c.seq.Add(1), 10)
}

// Set performs a strict replicated write and returns the action's global
// order position.
func (c *Client) Set(ctx context.Context, key, value string) (uint64, error) {
	var res httpapi.WriteResult
	err := c.do(ctx, http.MethodPost,
		"/set?key="+url.QueryEscape(key)+"&value="+url.QueryEscape(value)+c.nextKey(), &res)
	return res.GreenSeq, err
}

// Add performs a commutative increment (available in any component).
func (c *Client) Add(ctx context.Context, key string, delta int64) error {
	var res httpapi.WriteResult
	return c.do(ctx, http.MethodPost,
		"/add?key="+url.QueryEscape(key)+"&delta="+strconv.FormatInt(delta, 10)+c.nextKey(), &res)
}

// TSSet performs a timestamped write (highest timestamp wins).
func (c *Client) TSSet(ctx context.Context, key, value string, ts int64) error {
	var res httpapi.WriteResult
	return c.do(ctx, http.MethodPost,
		"/tsset?key="+url.QueryEscape(key)+"&value="+url.QueryEscape(value)+
			"&ts="+strconv.FormatInt(ts, 10)+c.nextKey(), &res)
}

// Get reads a key at the requested consistency level.
func (c *Client) Get(ctx context.Context, key string, level Level) (httpapi.ReadResult, error) {
	var res httpapi.ReadResult
	err := c.do(ctx, http.MethodGet,
		"/get?key="+url.QueryEscape(key)+"&level="+string(level), &res)
	return res, err
}

// Status reports the state of whichever replica answers first.
func (c *Client) Status(ctx context.Context) (httpapi.Status, error) {
	var res httpapi.Status
	err := c.do(ctx, http.MethodGet, "/status", &res)
	return res, err
}

// Checkpoint asks a replica to compact its log.
func (c *Client) Checkpoint(ctx context.Context) error {
	var res map[string]bool
	return c.do(ctx, http.MethodPost, "/checkpoint", &res)
}

// do runs one operation against the sticky endpoint, rotating only on
// errors another replica could answer better, with capped exponential
// backoff between attempts and a per-attempt slice of the caller's
// deadline.
func (c *Client) do(ctx context.Context, method, path string, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoffFor(attempt, lastErr)); err != nil {
				return errors.Join(err, lastErr)
			}
		}
		idx := int(c.cursor.Load() % uint64(len(c.endpoints)))
		base := c.endpoints[idx]
		attemptCtx, cancel := c.attemptContext(ctx, c.retries-attempt)
		err := c.once(attemptCtx, method, base+path, out)
		cancel()
		if err == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			return err // terminal: abort, other 4xx, decode failure
		}
		lastErr = re
		if ctx.Err() != nil {
			return errors.Join(ctx.Err(), lastErr)
		}
		// Safe error: the next attempt goes to the next replica.
		c.cursor.Store(uint64(idx + 1))
	}
	if lastErr == nil {
		lastErr = errors.New("client: no endpoints available")
	}
	return lastErr
}

// retryableError wraps failures another endpoint (or a later attempt)
// might resolve; retryAfter carries the server's 503 hint, if any.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (r *retryableError) Error() string { return r.err.Error() }
func (r *retryableError) Unwrap() error { return r.err }

// once performs a single HTTP exchange and classifies the outcome.
func (c *Client) once(ctx context.Context, method, u string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Connection-level failure (refused, reset, black-holed until the
		// attempt deadline): safe to retry elsewhere — writes carry
		// idempotency keys.
		return &retryableError{err: err}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("decode response from %s: %w", u, err)
		}
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrAborted, strings.TrimSpace(string(body)))
	case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
		re := &retryableError{err: fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))}
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs >= 0 {
			re.retryAfter = time.Duration(secs) * time.Second
		}
		return re
	default:
		// Anything else — 4xx in particular — is deterministic: no replica
		// would answer differently, so do not rotate or retry.
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// attemptContext slices the remaining deadline budget evenly over the
// attempts still available, so one unresponsive replica cannot starve
// the rest of the rotation.
func (c *Client) attemptContext(ctx context.Context, attemptsLeft int) (context.Context, context.CancelFunc) {
	deadline, ok := ctx.Deadline()
	if !ok || attemptsLeft <= 1 {
		return context.WithCancel(ctx)
	}
	remaining := time.Until(deadline)
	per := remaining / time.Duration(attemptsLeft)
	if per < minAttemptTimeout {
		per = minAttemptTimeout
	}
	if per >= remaining {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, per)
}

// backoffFor computes the pre-attempt delay: full-jitter capped
// exponential growth, raised to the server's Retry-After hint when one
// was given.
func (c *Client) backoffFor(attempt int, lastErr error) time.Duration {
	max := c.backoffBase << (attempt - 1)
	if max > c.backoffCap || max <= 0 {
		max = c.backoffCap
	}
	d := time.Duration(rand.Int63n(int64(max) + 1))
	var re *retryableError
	if errors.As(lastErr, &re) && re.retryAfter > d {
		d = re.retryAfter
	}
	return d
}

// sleep waits for d unless the context ends first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
