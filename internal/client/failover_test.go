package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// countingServer records how many requests each endpoint received and
// answers with the configured handler.
type countingServer struct {
	srv  *httptest.Server
	mu   sync.Mutex
	hits int
}

func newCounting(t *testing.T, h http.HandlerFunc) *countingServer {
	t.Helper()
	cs := &countingServer{}
	cs.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs.mu.Lock()
		cs.hits++
		cs.mu.Unlock()
		h(w, r)
	}))
	t.Cleanup(cs.srv.Close)
	return cs
}

func (cs *countingServer) count() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.hits
}

func okWrite(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"ok":true,"greenSeq":1}`))
}

// TestStickyEndpointUntilFailure: consecutive operations keep hitting
// the same healthy endpoint; the others see no traffic.
func TestStickyEndpointUntilFailure(t *testing.T) {
	a := newCounting(t, okWrite)
	b := newCounting(t, okWrite)
	cl, err := New([]string{a.srv.URL, b.srv.URL}, WithBackoff(time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Set(context.Background(), "k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	if a.count() != 5 || b.count() != 0 {
		t.Fatalf("hits a=%d b=%d, want sticky 5/0", a.count(), b.count())
	}
}

// TestRotationOnConnectionError: a dead endpoint rotates to the next,
// and the client stays on the healthy one afterwards.
func TestRotationOnConnectionError(t *testing.T) {
	b := newCounting(t, okWrite)
	cl, err := New([]string{"http://127.0.0.1:1", b.srv.URL},
		WithBackoff(time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Set(context.Background(), "k", "v"); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// First op paid one dead dial then rotated; the rest went straight to b.
	if b.count() != 3 {
		t.Fatalf("healthy endpoint hits %d, want 3", b.count())
	}
}

// TestNoRotationOn4xx: deterministic rejections return immediately
// without touching other endpoints.
func TestNoRotationOn4xx(t *testing.T) {
	a := newCounting(t, func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad delta", http.StatusBadRequest)
	})
	b := newCounting(t, okWrite)
	cl, err := New([]string{a.srv.URL, b.srv.URL},
		WithBackoff(time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Set(context.Background(), "k", "v")
	if err == nil || !strings.Contains(err.Error(), "bad delta") {
		t.Fatalf("4xx not surfaced: %v", err)
	}
	if a.count() != 1 || b.count() != 0 {
		t.Fatalf("hits a=%d b=%d: 4xx must not rotate or retry", a.count(), b.count())
	}
	// The client is still stuck to a: a later operation tries it first.
	a2, _ := cl.Get(context.Background(), "k", Weak)
	_ = a2
	if b.count() != 0 {
		t.Fatalf("cursor moved after 4xx (b hits %d)", b.count())
	}
}

// TestRotationOn503HonorsRetryAfter: a 503 rotates to the next endpoint
// after waiting at least the server's Retry-After hint.
func TestRotationOn503HonorsRetryAfter(t *testing.T) {
	a := newCounting(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	b := newCounting(t, okWrite)
	cl, err := New([]string{a.srv.URL, b.srv.URL},
		WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cl.Set(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry after %v ignored the Retry-After: 1 hint", elapsed)
	}
	if a.count() != 1 || b.count() != 1 {
		t.Fatalf("hits a=%d b=%d, want one 503 then one success", a.count(), b.count())
	}
}

// TestPerAttemptDeadlineRotatesPastBlackHole: with one replica accepting
// connections but never answering, a single caller deadline still leaves
// budget to rotate to the healthy replica — the per-attempt slice, not
// the whole deadline, burns on the black hole.
func TestPerAttemptDeadlineRotatesPastBlackHole(t *testing.T) {
	release := make(chan struct{})
	blackhole := newCounting(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	defer close(release)
	b := newCounting(t, okWrite)
	cl, err := New([]string{blackhole.srv.URL, b.srv.URL},
		WithRetries(2), WithBackoff(time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Set(ctx, "k", "v"); err != nil {
		t.Fatalf("operation lost its whole deadline to the black hole: %v", err)
	}
	if b.count() != 1 {
		t.Fatalf("healthy endpoint hits %d", b.count())
	}
}

// TestWriteRetriesReuseIdempotencyKey: both attempts of a failed-over
// write carry the same client/seq pair, and distinct operations advance
// the sequence.
func TestWriteRetriesReuseIdempotencyKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	record := func(r *http.Request) {
		mu.Lock()
		keys = append(keys, r.URL.Query().Get("client")+"/"+r.URL.Query().Get("seq"))
		mu.Unlock()
	}
	a := newCounting(t, func(w http.ResponseWriter, r *http.Request) {
		record(r)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	b := newCounting(t, func(w http.ResponseWriter, r *http.Request) {
		record(r)
		okWrite(w, r)
	})
	cl, err := New([]string{a.srv.URL, b.srv.URL},
		WithClientID("cid"), WithBackoff(time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Set(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Set(context.Background(), "k", "v2"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("request keys %v", keys)
	}
	if keys[0] != "cid/1" || keys[1] != "cid/1" {
		t.Fatalf("failover retry changed the idempotency key: %v", keys)
	}
	if keys[2] != "cid/2" {
		t.Fatalf("second operation key %q, want cid/2", keys[2])
	}
}

// TestReadsCarryNoKey: GETs are not stamped — they consume no sequence
// numbers and need no dedup state on the server.
func TestReadsCarryNoKey(t *testing.T) {
	var gotQuery url.Values
	a := newCounting(t, func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.Query()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"found":false}`))
	})
	cl, err := New([]string{a.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(context.Background(), "k", Weak); err != nil {
		t.Fatal(err)
	}
	if gotQuery.Get("client") != "" || gotQuery.Get("seq") != "" {
		t.Fatalf("read carried an idempotency key: %v", gotQuery)
	}
}

// TestDeadlineExhaustionReturnsContextError: when every endpoint is down
// and the deadline runs out mid-backoff, the caller sees the context
// error joined with the transport failure.
func TestDeadlineExhaustionReturnsContextError(t *testing.T) {
	cl, err := New([]string{"http://127.0.0.1:1"},
		WithRetries(100), WithBackoff(50*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err = cl.Set(ctx, "k", "v")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline exhaustion surfaced as %v", err)
	}
}
