package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/httpapi"
	"evsdb/internal/storage"
)

// buildAPICluster wires real engines behind httptest servers — the full
// HTTP surface without processes.
func buildAPICluster(t *testing.T, n int) (*cluster.Cluster, []string) {
	t.Helper()
	c, err := cluster.New(n, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(15*time.Second, ids...); err != nil {
		t.Fatal(err)
	}
	var endpoints []string
	for _, id := range ids {
		srv := httptest.NewServer(httpapi.New(c.Replica(id).Engine, httpapi.Config{}))
		t.Cleanup(srv.Close)
		endpoints = append(endpoints, srv.URL)
	}
	return c, endpoints
}

func TestSetGetRoundTrip(t *testing.T) {
	_, endpoints := buildAPICluster(t, 3)
	cl, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seq, err := cl.Set(ctx, "city", "baltimore")
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("no global position reported")
	}
	res, err := cl.Get(ctx, "city", Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Value != "baltimore" {
		t.Fatalf("get: %+v", res)
	}
}

func TestFailoverSkipsDeadEndpoint(t *testing.T) {
	_, endpoints := buildAPICluster(t, 3)
	// Prepend a dead endpoint: every operation must fail over.
	cl, err := New(append([]string{"http://127.0.0.1:1"}, endpoints...))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ { // rotation passes the dead one repeatedly
		if _, err := cl.Set(ctx, "k", "v"); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
}

// TestAbortIsTerminal: a 409 from the server (a deterministic abort)
// maps to ErrAborted and is NOT retried on another replica — the outcome
// would be identical everywhere.
func TestAbortIsTerminal(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits++
		http.Error(w, "cas aborted: guard mismatch", http.StatusConflict)
	}))
	defer srv.Close()
	cl, err := New([]string{srv.URL, srv.URL, srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Set(context.Background(), "k", "v")
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("409 did not map to ErrAborted: %v", err)
	}
	if hits != 1 {
		t.Fatalf("abort was retried %d times", hits)
	}
}

func TestCommutativeAddThroughAPI(t *testing.T) {
	_, endpoints := buildAPICluster(t, 3)
	cl, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := cl.Add(ctx, "n", 2); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.Get(ctx, "n", Weak)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value == "10" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("n = %q, want 10", res.Value)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTSSetThroughAPI(t *testing.T) {
	_, endpoints := buildAPICluster(t, 3)
	cl, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.TSSet(ctx, "loc", "new", 20); err != nil {
		t.Fatal(err)
	}
	if err := cl.TSSet(ctx, "loc", "old", 10); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.Get(ctx, "loc", Weak)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value == "new" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("loc = %q", res.Value)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatusAndCheckpoint(t *testing.T) {
	_, endpoints := buildAPICluster(t, 3)
	cl, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "RegPrim" || len(st.Servers) != 3 {
		t.Fatalf("status: %+v", st)
	}
	if err := cl.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty endpoint list accepted")
	}
}
