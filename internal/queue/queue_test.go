package queue

import (
	"sync"
	"testing"
)

func TestFIFO(t *testing.T) {
	q := NewUnbounded[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := NewUnbounded[string]()
	done := make(chan string)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	q.Push("x")
	if got := <-done; got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseDrainsThenEnds(t *testing.T) {
	q := NewUnbounded[int]()
	q.Push(1)
	q.Push(2)
	q.Close()
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("first pop after close: %d %v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("second pop after close: %d %v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained closed queue reported ok")
	}
}

func TestPushAfterCloseIsDropped(t *testing.T) {
	q := NewUnbounded[int]()
	q.Close()
	q.Push(7)
	if _, ok := q.Pop(); ok {
		t.Fatal("push after close was accepted")
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	q := NewUnbounded[int]()
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("blocked pop returned ok after close")
	}
}

func TestConcurrentProducersConsumeAll(t *testing.T) {
	q := NewUnbounded[int]()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProducer)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d of %d items", len(seen), producers*perProducer)
	}
}

func TestLen(t *testing.T) {
	q := NewUnbounded[int]()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.Push(1)
	q.Push(2)
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}
