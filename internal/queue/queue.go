package queue

import "sync"

// Unbounded is a FIFO queue with blocking Pop and non-blocking Push,
// safe for concurrent use. The group communication layer must never block
// a sender on a slow receiver (that would deadlock the event loops), so
// inboxes are unbounded; back-pressure is applied at the protocol layer
// (closed-loop clients, window-free sequencer).
type Unbounded[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

// NewUnbounded returns an empty open queue.
func NewUnbounded[T any]() *Unbounded[T] {
	q := &Unbounded[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an item. Pushing to a closed queue is a no-op.
func (q *Unbounded[T]) Push(item T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, item)
	q.cond.Signal()
}

// Pop removes and returns the oldest item, blocking until one is
// available. ok is false when the queue is closed and drained.
func (q *Unbounded[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	item = q.items[0]
	// Avoid retaining the popped element.
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return item, true
}

// Close marks the queue closed and wakes all blocked Pops. Items already
// queued are still drained by subsequent Pops.
func (q *Unbounded[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the number of queued items.
func (q *Unbounded[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
