package tcpnet

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

// buildTriplet starts three TCP nodes on loopback ports wired to each
// other. Ports are reserved up front so every Config is complete before
// its node starts (Config is immutable once New returns).
func buildTriplet(t *testing.T) []*Node {
	t.Helper()
	ids := []types.ServerID{"a", "b", "c"}
	addrs := make(map[types.ServerID]string, len(ids))
	var listeners []net.Listener
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addrs[id] = ln.Addr().String()
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	var nodes []*Node
	for _, id := range ids {
		peers := make(map[types.ServerID]string, len(ids)-1)
		for _, other := range ids {
			if other != id {
				peers[other] = addrs[other]
			}
		}
		n, err := New(Config{
			ID:        id,
			Listen:    addrs[id],
			Peers:     peers,
			Heartbeat: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("new %s: %v", id, err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	return nodes
}

func TestSendAndReceive(t *testing.T) {
	nodes := buildTriplet(t)
	_ = nodes[0].Send("b", []byte("hello"))
	select {
	case m := <-nodes[1].Recv():
		if m.From != "a" || string(m.Payload) != "hello" {
			t.Fatalf("got %s %q", m.From, m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestReachabilityConverges(t *testing.T) {
	nodes := buildTriplet(t)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[0].Reachable()) == 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("reachability never converged: %v", nodes[0].Reachable())
}

func TestCrashDetected(t *testing.T) {
	nodes := buildTriplet(t)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(nodes[0].Reachable()) != 3 {
		time.Sleep(10 * time.Millisecond)
	}
	_ = nodes[2].Close()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[0].Reachable()) == 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("crash never detected: %v", nodes[0].Reachable())
}

// TestFullStackOverTCP runs the complete replication stack — EVS + engine
// — over real sockets and replicates one write.
func TestFullStackOverTCP(t *testing.T) {
	nodes := buildTriplet(t)
	ids := []types.ServerID{"a", "b", "c"}
	var engines []*core.Engine
	for _, n := range nodes {
		gc := evs.NewNode(n, evs.WithTick(2*time.Millisecond))
		eng, err := core.New(core.Config{
			ID:      n.ID(),
			Servers: ids,
			GC:      gc,
			Log:     storage.NewMemLog(storage.Options{Policy: storage.SyncNone}),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, eng)
		t.Cleanup(func() { eng.Close(); gc.Close() })
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, e := range engines {
			if e.Status().State == core.RegPrim {
				ready++
			}
		}
		if ready == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	r, err := engines[0].Submit(ctx, db.EncodeUpdate(db.Set("k", "tcp")), nil, types.SemStrict)
	if err != nil || r.Err != "" {
		t.Fatalf("submit over tcp: %v %q", err, r.Err)
	}
	for i, e := range engines {
		dl := time.Now().Add(10 * time.Second)
		for {
			res, qerr := e.Query(ctx, db.Get("k"), core.QueryWeak)
			if qerr == nil && res.Value == "tcp" {
				break
			}
			if time.Now().After(dl) {
				t.Fatalf("replica %d never saw the write (%v %+v)", i, qerr, res)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
