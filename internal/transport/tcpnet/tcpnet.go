// Package tcpnet implements transport.Node over TCP sockets for real
// multi-process deployments (cmd/replica).
//
// Every node listens on one address and dials every peer; frames are
// length-prefixed. Reachability is heartbeat-based: a peer is live while
// frames (heartbeats count) keep arriving within the failure timeout.
// TCP gives per-pair FIFO and reliable delivery while connected; the EVS
// layer above handles everything else.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"evsdb/internal/obs"
	"evsdb/internal/queue"
	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// Config assembles a TCP transport node.
type Config struct {
	// ID is this node's server identifier.
	ID types.ServerID
	// Listen is the local listen address (host:port).
	Listen string
	// Peers maps every other server id to its listen address.
	Peers map[types.ServerID]string
	// Heartbeat is the keepalive send interval. Default 250ms.
	Heartbeat time.Duration
	// FailAfter marks a peer unreachable when nothing arrived for this
	// long. Default 4 * Heartbeat.
	FailAfter time.Duration
	// RedialMin is the backoff after the first failed dial to a peer.
	// Subsequent failures double it (with jitter) up to RedialMax; a
	// successful dial or any frame received from the peer resets it.
	// Default: Heartbeat.
	RedialMin time.Duration
	// RedialMax caps the redial backoff. Default: max(8s, 8 * RedialMin).
	RedialMax time.Duration
	// Dial overrides the dialer (tests). Default net.Dialer with timeout.
	Dial func(addr string) (net.Conn, error)
	// Obs is the observability bundle whose registry receives the
	// transport's frame/byte/redial counters. Nil means a fresh private
	// bundle.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 4 * c.Heartbeat
	}
	if c.RedialMin <= 0 {
		c.RedialMin = c.Heartbeat
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 8 * time.Second
		if m := 8 * c.RedialMin; m > c.RedialMax {
			c.RedialMax = m
		}
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	if c.Obs == nil {
		c.Obs = obs.NewObserver()
	}
	return c
}

// tcpObs pre-registers the transport's metrics so the send and receive
// paths only touch atomics.
type tcpObs struct {
	framesOut *obs.Counter
	bytesOut  *obs.Counter
	framesIn  *obs.Counter
	bytesIn   *obs.Counter
	redials   *obs.Counter
	dialFails *obs.Counter
}

func newTCPObs(r *obs.Registry) *tcpObs {
	return &tcpObs{
		framesOut: r.Counter("evsdb_transport_frames_sent_total", "Frames written to peer connections (heartbeats included)."),
		bytesOut:  r.Counter("evsdb_transport_bytes_sent_total", "Payload bytes written to peer connections."),
		framesIn:  r.Counter("evsdb_transport_frames_received_total", "Frames read from peer connections (heartbeats included)."),
		bytesIn:   r.Counter("evsdb_transport_bytes_received_total", "Payload bytes read from peer connections."),
		redials:   r.Counter("evsdb_transport_redials_total", "Dial attempts to disconnected peers (backoff-gated)."),
		dialFails: r.Counter("evsdb_transport_dial_failures_total", "Dial attempts that failed."),
	}
}

const maxFrame = 64 << 20 // 64 MiB sanity cap

// Node is one TCP transport endpoint.
type Node struct {
	cfg Config
	ln  net.Listener

	inbox   *queue.Unbounded[transport.Message]
	recvCh  chan transport.Message
	changes chan struct{}

	mu       sync.Mutex
	outbox   map[types.ServerID]*peerConn
	accepted map[net.Conn]bool
	lastSeen map[types.ServerID]time.Time
	live     map[types.ServerID]bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	now func() time.Time // clock hook (tests)
	rnd func(int64) int64

	om *tcpObs
}

var _ transport.Node = (*Node)(nil)

type peerConn struct {
	mu       sync.Mutex
	conn     net.Conn
	backoff  time.Duration // current redial delay; zero after success
	nextDial time.Time     // dial attempts before this instant are skipped
}

// New starts listening and begins dialing peers.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, errors.New("tcpnet: config needs an ID")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:      cfg,
		ln:       ln,
		inbox:    queue.NewUnbounded[transport.Message](),
		recvCh:   make(chan transport.Message),
		changes:  make(chan struct{}, 1),
		outbox:   make(map[types.ServerID]*peerConn),
		accepted: make(map[net.Conn]bool),
		lastSeen: make(map[types.ServerID]time.Time),
		live:     make(map[types.ServerID]bool),
		stop:     make(chan struct{}),
		now:      time.Now,
		rnd:      rand.Int63n,
		om:       newTCPObs(cfg.Obs.Reg),
	}
	n.wg.Add(3)
	go n.acceptLoop()
	go n.pump()
	go n.heartbeatLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID implements transport.Node.
func (n *Node) ID() types.ServerID { return n.cfg.ID }

// Recv implements transport.Node.
func (n *Node) Recv() <-chan transport.Message { return n.recvCh }

// Changes implements transport.Node.
func (n *Node) Changes() <-chan struct{} { return n.changes }

// Reachable implements transport.Node.
func (n *Node) Reachable() []types.ServerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := []types.ServerID{n.cfg.ID}
	for id, ok := range n.live {
		if ok {
			out = append(out, id)
		}
	}
	return types.SortServerIDs(out)
}

// Send implements transport.Node.
func (n *Node) Send(to types.ServerID, payload []byte) error {
	select {
	case <-n.stop:
		return transport.ErrClosed
	default:
	}
	if to == n.cfg.ID {
		n.inbox.Push(transport.Message{From: n.cfg.ID, Payload: append([]byte(nil), payload...)})
		return nil
	}
	pc := n.peer(to)
	if pc == nil {
		return nil // best effort: unknown or unreachable peer
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		return nil
	}
	if err := writeFrame(pc.conn, payload); err != nil {
		_ = pc.conn.Close()
		pc.conn = nil
	} else {
		n.om.framesOut.Inc()
		n.om.bytesOut.Add(uint64(len(payload)))
	}
	return nil
}

// Multicast implements transport.Node (point-to-point fan-out).
func (n *Node) Multicast(to []types.ServerID, payload []byte) error {
	for _, dst := range to {
		if err := n.Send(dst, payload); err != nil {
			return err
		}
	}
	return nil
}

// Close implements transport.Node.
func (n *Node) Close() error {
	n.stopOnce.Do(func() {
		close(n.stop)
		_ = n.ln.Close()
		n.mu.Lock()
		for _, pc := range n.outbox {
			pc.mu.Lock()
			if pc.conn != nil {
				_ = pc.conn.Close()
			}
			pc.mu.Unlock()
		}
		for conn := range n.accepted {
			_ = conn.Close()
		}
		n.mu.Unlock()
		n.inbox.Close()
	})
	n.wg.Wait()
	return nil
}

// peer returns the (possibly freshly dialed) outgoing connection holder.
func (n *Node) peer(id types.ServerID) *peerConn {
	n.mu.Lock()
	pc, ok := n.outbox[id]
	if !ok {
		addr, known := n.cfg.Peers[id]
		if !known {
			n.mu.Unlock()
			return nil
		}
		pc = &peerConn{}
		n.outbox[id] = pc
		n.mu.Unlock()
		n.redial(pc, id, addr)
		return pc
	}
	n.mu.Unlock()
	pc.mu.Lock()
	dead := pc.conn == nil
	pc.mu.Unlock()
	if dead {
		if addr, known := n.cfg.Peers[id]; known {
			n.redial(pc, id, addr)
		}
	}
	return pc
}

// redial attempts one connection establishment, sending the hello frame.
// Attempts are gated by the peer's backoff window: each failure doubles
// the delay before the next try (with jitter, capped at RedialMax), so a
// long-dead peer costs one dial per backoff period instead of one per
// heartbeat. A successful dial — or any frame received from the peer
// (markSeen) — resets the backoff.
func (n *Node) redial(pc *peerConn, id types.ServerID, addr string) {
	now := n.now()
	pc.mu.Lock()
	if pc.conn != nil || now.Before(pc.nextDial) {
		pc.mu.Unlock()
		return
	}
	// Claim this attempt window before dialing so concurrent Sends do not
	// stack parallel dials to the same dead peer.
	if pc.backoff <= 0 {
		pc.backoff = n.cfg.RedialMin
	} else {
		pc.backoff *= 2
		if pc.backoff > n.cfg.RedialMax {
			pc.backoff = n.cfg.RedialMax
		}
	}
	// Jitter in [backoff/2, backoff] desynchronizes a fleet redialing the
	// same recovered peer.
	delay := pc.backoff
	if half := int64(delay / 2); half > 0 {
		delay = delay/2 + time.Duration(n.rnd(half+1))
	}
	pc.nextDial = now.Add(delay)
	pc.mu.Unlock()

	n.om.redials.Inc()
	conn, err := n.cfg.Dial(addr)
	if err != nil {
		n.om.dialFails.Inc()
		return // backoff already scheduled
	}
	if err := writeFrame(conn, append([]byte("HELO"), n.cfg.ID...)); err != nil {
		_ = conn.Close()
		return
	}
	pc.mu.Lock()
	if pc.conn != nil {
		_ = conn.Close() // lost the race; keep the existing connection
	} else {
		pc.conn = conn
		pc.backoff = 0
		pc.nextDial = time.Time{}
	}
	pc.mu.Unlock()
	_ = id
}

// acceptLoop receives incoming connections; each starts a reader.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		select {
		case <-n.stop:
			n.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop consumes frames from one incoming connection. The first frame
// must be the hello identifying the sender; empty frames are heartbeats.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	hello, err := readFrame(conn)
	if err != nil || len(hello) < 4 || string(hello[:4]) != "HELO" {
		return
	}
	from := types.ServerID(hello[4:])
	n.markSeen(from)
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		n.markSeen(from)
		n.om.framesIn.Inc()
		n.om.bytesIn.Add(uint64(len(payload)))
		if len(payload) == 0 {
			continue // heartbeat
		}
		select {
		case <-n.stop:
			return
		default:
		}
		n.inbox.Push(transport.Message{From: from, Payload: payload})
	}
}

// pump moves inbox messages to the receive channel.
func (n *Node) pump() {
	defer n.wg.Done()
	defer close(n.recvCh)
	for {
		m, ok := n.inbox.Pop()
		if !ok {
			return
		}
		select {
		case n.recvCh <- m:
		case <-n.stop:
			return
		}
	}
}

// heartbeatLoop sends keepalives, redials dead peers and expires
// reachability.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for id := range n.cfg.Peers {
				_ = n.Send(id, nil) // empty frame = heartbeat; dials as needed
			}
			n.expire()
		case <-n.stop:
			return
		}
	}
}

func (n *Node) markSeen(from types.ServerID) {
	n.mu.Lock()
	n.lastSeen[from] = n.now()
	changed := !n.live[from]
	n.live[from] = true
	pc := n.outbox[from]
	n.mu.Unlock()
	if pc != nil {
		// Frames arriving means the peer is back: clear the redial backoff
		// so the outgoing side reconnects promptly.
		pc.mu.Lock()
		pc.backoff = 0
		pc.nextDial = time.Time{}
		pc.mu.Unlock()
	}
	if changed {
		n.poke()
	}
}

func (n *Node) expire() {
	cutoff := n.now().Add(-n.cfg.FailAfter)
	n.mu.Lock()
	changed := false
	for id, seen := range n.lastSeen {
		if n.live[id] && seen.Before(cutoff) {
			n.live[id] = false
			changed = true
		}
	}
	n.mu.Unlock()
	if changed {
		n.poke()
	}
}

func (n *Node) poke() {
	select {
	case n.changes <- struct{}{}:
	default:
	}
}

func writeFrame(conn net.Conn, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("tcpnet: frame too large: %d", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("tcpnet: oversized frame: %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
