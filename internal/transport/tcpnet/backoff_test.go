package tcpnet

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"evsdb/internal/types"
)

// fakeDialer fails every dial and records when each attempt happened
// (per the node's fake clock).
type fakeDialer struct {
	mu       sync.Mutex
	attempts []time.Time
	clock    func() time.Time
}

func (d *fakeDialer) dial(string) (net.Conn, error) {
	d.mu.Lock()
	d.attempts = append(d.attempts, d.clock())
	d.mu.Unlock()
	return nil, errors.New("connection refused")
}

func (d *fakeDialer) times() []time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]time.Time(nil), d.attempts...)
}

// backoffNode builds a node with a deterministic clock, no jitter, a
// dead fake dialer, and a quiescent heartbeat loop, so the test drives
// redials itself via Send.
func backoffNode(t *testing.T) (*Node, *fakeDialer, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	d := &fakeDialer{clock: func() time.Time { return now }}
	n, err := New(Config{
		ID:        "a",
		Listen:    "127.0.0.1:0",
		Peers:     map[types.ServerID]string{"b": "127.0.0.1:9"},
		Heartbeat: time.Hour, // keep the heartbeat loop out of the way
		RedialMin: 100 * time.Millisecond,
		RedialMax: 400 * time.Millisecond,
		Dial:      d.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	n.now = func() time.Time { return now }
	n.rnd = func(m int64) int64 { return m - 1 } // deterministic: max jitter = full backoff
	d.clock = n.now
	return n, d, &now
}

// TestRedialBackoffGrowsAndCaps: failed dials are spaced by a doubling
// backoff up to RedialMax, not retried on every send.
func TestRedialBackoffGrowsAndCaps(t *testing.T) {
	n, d, now := backoffNode(t)

	// Send every 10ms of fake time for 1.5s: without backoff this would
	// be 150 dial attempts.
	for i := 0; i < 150; i++ {
		_ = n.Send("b", []byte("x"))
		*now = now.Add(10 * time.Millisecond)
	}
	times := d.times()
	if len(times) == 0 {
		t.Fatal("no dial attempts")
	}
	// Expected schedule with rnd pinned to max (delay == backoff):
	// attempt at +0 (backoff 100), +100 (200), +300 (400 = cap), +700
	// (400), +1100, ... → 5 attempts within 1.5s.
	if len(times) > 6 {
		t.Fatalf("%d dial attempts in 1.5s, backoff not applied: %v", len(times), times)
	}
	var gaps []time.Duration
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] && gaps[i-1] <= 400*time.Millisecond {
			t.Fatalf("gaps shrank before reaching the cap: %v", gaps)
		}
	}
	if last := gaps[len(gaps)-1]; last > 410*time.Millisecond {
		t.Fatalf("gap %v exceeds RedialMax", last)
	}
}

// TestRedialBackoffResetsOnFrameReceipt: a frame from the peer clears
// its backoff so the next send dials immediately.
func TestRedialBackoffResetsOnFrameReceipt(t *testing.T) {
	n, d, now := backoffNode(t)

	for i := 0; i < 60; i++ {
		_ = n.Send("b", []byte("x"))
		*now = now.Add(10 * time.Millisecond)
	}
	before := len(d.times())
	if before == 0 {
		t.Fatal("no dial attempts")
	}
	// The peer's backoff is now deep into the schedule; without a reset
	// the next dial would wait up to RedialMax.
	n.markSeen("b")
	_ = n.Send("b", []byte("x"))
	after := d.times()
	if len(after) != before+1 {
		t.Fatalf("dial after frame receipt: %d attempts, want %d", len(after), before+1)
	}
	if !after[len(after)-1].Equal(*now) {
		t.Fatal("post-reset dial was delayed")
	}
}
