// Package transport abstracts the datagram substrate underneath the group
// communication layer.
//
// The replication paper runs on Spread over a LAN; this repository runs the
// same protocols over either an in-process partitionable network
// (memnet, used by tests and benchmarks) or TCP sockets (tcpnet, used by
// cmd/replica). A Transport endpoint provides best-effort FIFO unicast and
// multicast plus a local reachability estimate (the failure detector); all
// reliability, ordering and agreement guarantees are built above it by
// package evs.
package transport

import (
	"errors"

	"evsdb/internal/types"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Message is a datagram received by an endpoint.
type Message struct {
	From    types.ServerID
	Payload []byte
}

// Node is one process's attachment to the network.
//
// Guarantees required by package evs:
//   - per (sender, receiver) pair, messages that are delivered are
//     delivered in FIFO order;
//   - while two endpoints remain mutually reachable and alive, messages
//     between them are eventually delivered (fair-lossy is not enough for
//     memnet's default config, which is reliable-while-connected; tcpnet
//     gets this from TCP);
//   - Reachable never includes crashed endpoints for long: after a
//     connectivity change the estimate converges and Changes fires.
type Node interface {
	// ID returns this endpoint's stable server identifier.
	ID() types.ServerID

	// Send transmits a best-effort unicast datagram.
	Send(to types.ServerID, payload []byte) error

	// Multicast transmits the payload to every listed destination. On a
	// broadcast medium this costs one network operation; point-to-point
	// implementations fan out.
	Multicast(to []types.ServerID, payload []byte) error

	// Recv returns the channel of incoming datagrams. The channel is
	// closed when the endpoint is closed or crashes.
	Recv() <-chan Message

	// Reachable returns the endpoints currently believed reachable,
	// including this one, in canonical order.
	Reachable() []types.ServerID

	// Changes returns a channel that receives a signal whenever the
	// reachability estimate may have changed. Signals may be coalesced.
	Changes() <-chan struct{}

	// Close detaches the endpoint. Idempotent.
	Close() error
}
