package memnet

import (
	"testing"
	"time"

	"evsdb/internal/types"
)

func attach(t *testing.T, n *Network, id types.ServerID) *Endpoint {
	t.Helper()
	ep, err := n.Attach(id)
	if err != nil {
		t.Fatalf("attach %s: %v", id, err)
	}
	return ep
}

func recvOne(t *testing.T, ep *Endpoint) (types.ServerID, string) {
	t.Helper()
	select {
	case m := <-ep.Recv():
		return m.From, string(m.Payload)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return "", ""
	}
}

func TestUnicastDelivers(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	from, payload := recvOne(t, b)
	if from != "a" || payload != "hi" {
		t.Fatalf("got %s %q", from, payload)
	}
}

func TestPerPairFIFO(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	for i := byte(0); i < 100; i++ {
		_ = a.Send("b", []byte{i})
	}
	for i := byte(0); i < 100; i++ {
		_, payload := recvOne(t, b)
		if payload[0] != i {
			t.Fatalf("out of order at %d: got %d", i, payload[0])
		}
	}
}

func TestMulticastCountsOneOp(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	attach(t, n, "b")
	attach(t, n, "c")
	_ = a.Multicast([]types.ServerID{"a", "b", "c"}, []byte("x"))
	st := n.Stats()
	if st.MulticastOps != 1 {
		t.Fatalf("multicast ops = %d", st.MulticastOps)
	}
	if st.Datagrams != 3 {
		t.Fatalf("datagrams = %d", st.Datagrams)
	}
}

func TestSelfDelivery(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	_ = a.Send("a", []byte("self"))
	from, payload := recvOne(t, a)
	if from != "a" || payload != "self" {
		t.Fatalf("self delivery: %s %q", from, payload)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	n.Partition([]types.ServerID{"a"}, []types.ServerID{"b"})
	_ = a.Send("b", []byte("dropped"))
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("dropped = %d", got)
	}
	n.Heal()
	_ = a.Send("b", []byte("delivered"))
	_, payload := recvOne(t, b)
	if payload != "delivered" {
		t.Fatalf("got %q", payload)
	}
}

func TestReachableTracksPartition(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	attach(t, n, "b")
	attach(t, n, "c")
	if got := a.Reachable(); len(got) != 3 {
		t.Fatalf("reachable = %v", got)
	}
	n.Partition([]types.ServerID{"a", "b"}, []types.ServerID{"c"})
	got := a.Reachable()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("reachable after partition = %v", got)
	}
}

func TestChangesSignalOnPartition(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	attach(t, n, "b")
	// Drain any attach-time signal.
	select {
	case <-a.Changes():
	default:
	}
	n.Partition([]types.ServerID{"a"}, []types.ServerID{"b"})
	select {
	case <-a.Changes():
	case <-time.After(time.Second):
		t.Fatal("no change signal after partition")
	}
}

func TestCrashClosesRecvAndRecoverWorks(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	n.Crash("b")
	select {
	case _, ok := <-b.Recv():
		if ok {
			t.Fatal("received after crash")
		}
	case <-time.After(time.Second):
		t.Fatal("recv channel not closed on crash")
	}
	if err := a.Send("b", []byte("void")); err != nil {
		t.Fatal(err) // send succeeds, delivery drops
	}
	b2, err := n.Recover("b")
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Send("b", []byte("back"))
	_, payload := recvOne(t, b2)
	if payload != "back" {
		t.Fatalf("got %q", payload)
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	n := New()
	attach(t, n, "a")
	if _, err := n.Attach("a"); err == nil {
		t.Fatal("double attach succeeded")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(WithLatency(30 * time.Millisecond))
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	start := time.Now()
	_ = a.Send("b", []byte("slow"))
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
}

func TestLossDropsButNeverSelf(t *testing.T) {
	n := New(WithLoss(1.0), WithSeed(1)) // drop everything (except loopback)
	a := attach(t, n, "a")
	attach(t, n, "b")
	_ = a.Send("b", []byte("gone"))
	_ = a.Send("a", []byte("kept"))
	_, payload := recvOne(t, a)
	if payload != "kept" {
		t.Fatalf("self delivery lost: %q", payload)
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", n.Stats().Dropped)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New()
	a := attach(t, n, "a")
	_ = a.Close()
	if err := a.Send("a", nil); err == nil {
		t.Fatal("send after close succeeded")
	}
	if err := a.Multicast([]types.ServerID{"a"}, nil); err == nil {
		t.Fatal("multicast after close succeeded")
	}
}

func TestQueueCapShedsOldest(t *testing.T) {
	// A long latency keeps every datagram queued so the cap is exercised
	// deterministically; the oldest scheduled datagrams must be shed and
	// the newest survive.
	n := New(WithLatency(200*time.Millisecond), WithQueueCap(4))
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Stats().Overflow; got != 6 {
		t.Fatalf("overflow = %d, want 6", got)
	}
	for i := 6; i < 10; i++ {
		_, payload := recvOne(t, b)
		if want := string([]byte{byte('0' + i)}); payload != want {
			t.Fatalf("delivery = %q, want %q", payload, want)
		}
	}
}

func TestQueueCapZeroUnbounded(t *testing.T) {
	n := New(WithLatency(50*time.Millisecond), WithQueueCap(0))
	a := attach(t, n, "a")
	b := attach(t, n, "b")
	for i := 0; i < 100; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Stats().Overflow; got != 0 {
		t.Fatalf("overflow = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		recvOne(t, b)
	}
}
