// Package memnet provides an in-process, partitionable network that
// implements transport.Node.
//
// It is the test and benchmark substrate standing in for the paper's
// 100 Mb/s LAN: links have configurable latency and loss, the network can
// be partitioned into disjoint components and healed, and endpoints can
// crash and later recover under the same identifier. Connectivity is
// symmetric and transitive (a partition is a set of disjoint groups),
// matching the paper's model of components.
package memnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// Option configures a Network.
type Option func(*Network)

// WithLatency sets a constant one-way link latency. Zero (the default)
// delivers synchronously, preserving per-pair FIFO trivially.
func WithLatency(d time.Duration) Option {
	return func(n *Network) { n.latency = d }
}

// WithJitter adds a seeded-random extra delay in [0, d) per datagram on
// top of the base latency. Delivery is scheduled by delivery time, so
// messages from different senders may be reordered at a receiver;
// per-(sender, receiver) FIFO — the transport contract — is preserved by
// clamping each pair's delivery times to be monotone. Fault-injection
// harnesses use this to explore message orderings the zero-latency
// network never produces.
func WithJitter(d time.Duration) Option {
	return func(n *Network) { n.jitter = d }
}

// WithLoss sets an independent per-datagram loss probability in [0, 1).
// The group communication layer recovers lost datagrams via NACKs and
// periodic retransmission, so loss trades latency, not correctness.
func WithLoss(p float64) Option {
	return func(n *Network) { n.loss = p }
}

// WithSeed seeds the loss RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithQueueCap bounds the number of datagrams queued per endpoint
// (default DefaultQueueCap; 0 disables the bound). When a push exceeds
// the cap the *oldest* scheduled datagram is shed and counted in
// Stats.Overflow. Real networks drop under overload; an unbounded queue
// instead lets sojourn time diverge when consumers fall behind producers,
// which manifests as ancient datagrams surfacing much later — a failure
// mode no deployed transport exhibits and one that livelocks membership
// protocols built to tolerate loss, not unbounded delay.
func WithQueueCap(limit int) Option {
	return func(n *Network) { n.queueCap = limit }
}

// DefaultQueueCap is the per-endpoint scheduled-datagram bound. Normal
// operation keeps queues far below it; only a consumer that has stopped
// draining (or a host too slow for the configured tick rates) reaches it.
const DefaultQueueCap = 4096

// Stats counts network operations. A multicast over a broadcast medium is
// one operation regardless of fan-out, matching the paper's cost model
// ("one multicast message per action" vs "2n unicast messages").
type Stats struct {
	UnicastOps   uint64
	MulticastOps uint64
	Datagrams    uint64 // individual deliveries attempted (before loss)
	Dropped      uint64 // deliveries suppressed by loss or disconnection
	Overflow     uint64 // queued deliveries shed by the per-endpoint queue cap
	Bytes        uint64
}

// Network is a collection of endpoints with controllable connectivity.
type Network struct {
	latency  time.Duration
	jitter   time.Duration
	loss     float64
	queueCap int

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[types.ServerID]*Endpoint
	group     map[types.ServerID]int
	nextGroup int
	lastAt    map[pairKey]time.Time // per-pair FIFO clamp for jittered delivery

	unicastOps   atomic.Uint64
	multicastOps atomic.Uint64
	datagrams    atomic.Uint64
	dropped      atomic.Uint64
	overflow     atomic.Uint64
	bytes        atomic.Uint64
}

// New creates an empty network.
func New(opts ...Option) *Network {
	n := &Network{
		endpoints: make(map[types.ServerID]*Endpoint),
		group:     make(map[types.ServerID]int),
		rng:       rand.New(rand.NewSource(1)),
		nextGroup: 1,
		lastAt:    make(map[pairKey]time.Time),
		queueCap:  DefaultQueueCap,
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Attach creates an endpoint for id. Attaching an id that is already
// attached and alive is an error; recovering a crashed id yields a fresh
// endpoint.
func (n *Network) Attach(id types.ServerID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok && !ep.closed.Load() {
		return nil, fmt.Errorf("memnet: endpoint %q already attached", id)
	}
	ep := &Endpoint{
		id:      id,
		net:     n,
		recvCh:  make(chan transport.Message),
		changes: make(chan struct{}, 1),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go ep.pump()
	n.endpoints[id] = ep
	if _, ok := n.group[id]; !ok {
		n.group[id] = 0
	}
	n.notifyAllLocked()
	return ep, nil
}

// Crash detaches the endpoint abruptly: in-flight and queued messages to
// it are dropped and its Recv channel closes. The id may later Recover.
func (n *Network) Crash(id types.ServerID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

// Recover re-attaches a previously crashed id with an empty inbox.
func (n *Network) Recover(id types.ServerID) (*Endpoint, error) {
	return n.Attach(id)
}

// Partition splits the network into the given disjoint groups. Endpoints
// not listed in any group are isolated in singleton components. Panics on
// an id that appears twice.
func (n *Network) Partition(groups ...[]types.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	assigned := make(map[types.ServerID]int)
	for _, g := range groups {
		n.nextGroup++
		num := n.nextGroup
		for _, id := range g {
			if _, dup := assigned[id]; dup {
				panic(fmt.Sprintf("memnet: id %q in two partition groups", id))
			}
			assigned[id] = num
		}
	}
	for id := range n.group {
		num, ok := assigned[id]
		if !ok {
			n.nextGroup++
			num = n.nextGroup
		}
		n.group[id] = num
	}
	n.notifyAllLocked()
}

// Heal merges all components back into a single connected network.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.group {
		n.group[id] = 0
	}
	n.notifyAllLocked()
}

// Components returns the current connectivity components over the alive
// endpoints, each sorted, ordered by their first member. Used by
// simulation harnesses to reason about the network they scripted.
func (n *Network) Components() [][]types.ServerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	byGroup := make(map[int][]types.ServerID)
	for id, ep := range n.endpoints {
		if !ep.closed.Load() {
			byGroup[n.group[id]] = append(byGroup[n.group[id]], id)
		}
	}
	var out [][]types.ServerID
	for _, g := range byGroup {
		out = append(out, types.SortServerIDs(g))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stats returns a snapshot of the operation counters.
func (n *Network) Stats() Stats {
	return Stats{
		UnicastOps:   n.unicastOps.Load(),
		MulticastOps: n.multicastOps.Load(),
		Datagrams:    n.datagrams.Load(),
		Dropped:      n.dropped.Load(),
		Overflow:     n.overflow.Load(),
		Bytes:        n.bytes.Load(),
	}
}

// notifyAllLocked pokes every endpoint's change channel.
func (n *Network) notifyAllLocked() {
	for _, ep := range n.endpoints {
		if !ep.closed.Load() {
			select {
			case ep.changes <- struct{}{}:
			default:
			}
		}
	}
}

// connectedLocked reports whether a and b are alive and in one component.
func (n *Network) connectedLocked(a, b types.ServerID) bool {
	epA, okA := n.endpoints[a]
	epB, okB := n.endpoints[b]
	if !okA || !okB || epA.closed.Load() || epB.closed.Load() {
		return false
	}
	return n.group[a] == n.group[b]
}

// deliver enqueues payload for dst if connected and not lost.
func (n *Network) deliver(src, dst types.ServerID, payload []byte) {
	n.mu.Lock()
	n.datagrams.Add(1)
	if !n.connectedLocked(src, dst) {
		n.dropped.Add(1)
		n.mu.Unlock()
		return
	}
	// Self-delivery is a local loopback: never lossy.
	if src != dst && n.loss > 0 && n.rng.Float64() < n.loss {
		n.dropped.Add(1)
		n.mu.Unlock()
		return
	}
	delay := n.latency
	if n.jitter > 0 && src != dst {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	at := time.Now().Add(delay)
	if n.jitter > 0 {
		// Per-pair FIFO: a datagram never schedules before an earlier one
		// on the same (src, dst) link.
		p := pairKey{src, dst}
		if last, ok := n.lastAt[p]; ok && at.Before(last) {
			at = last
		}
		n.lastAt[p] = at
	}
	ep := n.endpoints[dst]
	n.mu.Unlock()

	// The payload buffer is shared across recipients of a multicast;
	// transport consumers treat received payloads as read-only.
	ep.push(delivery{
		msg: transport.Message{From: src, Payload: payload},
		at:  at,
	})
}

type pairKey struct{ src, dst types.ServerID }

type delivery struct {
	msg transport.Message
	at  time.Time
	seq uint64
}

// deliveryHeap orders deliveries by time, then arrival sequence.
type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// Endpoint is one attachment to a Network.
type Endpoint struct {
	id      types.ServerID
	net     *Network
	recvCh  chan transport.Message
	changes chan struct{}
	wake    chan struct{}
	done    chan struct{}
	closed  atomic.Bool

	mu   sync.Mutex
	pq   deliveryHeap
	nseq uint64
}

var _ transport.Node = (*Endpoint)(nil)

// push schedules a delivery, shedding the oldest scheduled datagram if
// the endpoint's queue is over its cap (overload behaves as loss, which
// the protocol layers recover from, rather than as unbounded delay,
// which they cannot).
func (ep *Endpoint) push(d delivery) {
	ep.mu.Lock()
	if ep.closed.Load() {
		ep.mu.Unlock()
		return
	}
	ep.nseq++
	d.seq = ep.nseq
	heap.Push(&ep.pq, d)
	if qc := ep.net.queueCap; qc > 0 && len(ep.pq) > qc {
		heap.Pop(&ep.pq) // heap head: the earliest-scheduled, i.e. stalest
		ep.net.overflow.Add(1)
		ep.net.dropped.Add(1)
	}
	ep.mu.Unlock()
	select {
	case ep.wake <- struct{}{}:
	default:
	}
}

// pump moves scheduled deliveries to the receive channel in
// delivery-time order (earliest first; ties in arrival order).
func (ep *Endpoint) pump() {
	defer close(ep.recvCh)
	for {
		ep.mu.Lock()
		if len(ep.pq) == 0 {
			ep.mu.Unlock()
			select {
			case <-ep.wake:
				continue
			case <-ep.done:
				return
			}
		}
		head := ep.pq[0]
		if wait := time.Until(head.at); wait > 0 {
			ep.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ep.wake: // an earlier-scheduled delivery may have arrived
			case <-ep.done:
				t.Stop()
				return
			}
			t.Stop()
			continue
		}
		heap.Pop(&ep.pq)
		ep.mu.Unlock()
		select {
		case ep.recvCh <- head.msg:
		case <-ep.done:
			return
		}
	}
}

// ID implements transport.Node.
func (ep *Endpoint) ID() types.ServerID { return ep.id }

// Send implements transport.Node.
func (ep *Endpoint) Send(to types.ServerID, payload []byte) error {
	if ep.closed.Load() {
		return transport.ErrClosed
	}
	ep.net.unicastOps.Add(1)
	ep.net.bytes.Add(uint64(len(payload)))
	ep.net.deliver(ep.id, to, append([]byte(nil), payload...))
	return nil
}

// Multicast implements transport.Node: a single broadcast-medium
// operation fanned out to every destination (self included if listed).
func (ep *Endpoint) Multicast(to []types.ServerID, payload []byte) error {
	if ep.closed.Load() {
		return transport.ErrClosed
	}
	ep.net.multicastOps.Add(1)
	ep.net.bytes.Add(uint64(len(payload)))
	buf := append([]byte(nil), payload...) // one copy shared by all recipients
	for _, dst := range to {
		ep.net.deliver(ep.id, dst, buf)
	}
	return nil
}

// Recv implements transport.Node.
func (ep *Endpoint) Recv() <-chan transport.Message { return ep.recvCh }

// Reachable implements transport.Node: all alive endpoints in this
// endpoint's component, in canonical order.
func (ep *Endpoint) Reachable() []types.ServerID {
	ep.net.mu.Lock()
	defer ep.net.mu.Unlock()
	if ep.closed.Load() {
		return nil
	}
	mine := ep.net.group[ep.id]
	var out []types.ServerID
	for id, other := range ep.net.endpoints {
		if !other.closed.Load() && ep.net.group[id] == mine {
			out = append(out, id)
		}
	}
	return types.SortServerIDs(out)
}

// Changes implements transport.Node.
func (ep *Endpoint) Changes() <-chan struct{} { return ep.changes }

// Close implements transport.Node. It marks the endpoint crashed,
// detaches it from the network and closes the receive channel.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	close(ep.done)
	ep.mu.Lock()
	ep.pq = nil // queued and in-flight messages are dropped
	ep.mu.Unlock()
	ep.net.mu.Lock()
	if ep.net.endpoints[ep.id] == ep {
		delete(ep.net.endpoints, ep.id)
	}
	ep.net.notifyAllLocked()
	ep.net.mu.Unlock()
	return nil
}
