// Package memnet provides an in-process, partitionable network that
// implements transport.Node.
//
// It is the test and benchmark substrate standing in for the paper's
// 100 Mb/s LAN: links have configurable latency and loss, the network can
// be partitioned into disjoint components and healed, and endpoints can
// crash and later recover under the same identifier. Connectivity is
// symmetric and transitive (a partition is a set of disjoint groups),
// matching the paper's model of components.
package memnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"evsdb/internal/queue"
	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// Option configures a Network.
type Option func(*Network)

// WithLatency sets a constant one-way link latency. Zero (the default)
// delivers synchronously, preserving per-pair FIFO trivially.
func WithLatency(d time.Duration) Option {
	return func(n *Network) { n.latency = d }
}

// WithLoss sets an independent per-datagram loss probability in [0, 1).
// The group communication layer recovers lost datagrams via NACKs and
// periodic retransmission, so loss trades latency, not correctness.
func WithLoss(p float64) Option {
	return func(n *Network) { n.loss = p }
}

// WithSeed seeds the loss RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// Stats counts network operations. A multicast over a broadcast medium is
// one operation regardless of fan-out, matching the paper's cost model
// ("one multicast message per action" vs "2n unicast messages").
type Stats struct {
	UnicastOps   uint64
	MulticastOps uint64
	Datagrams    uint64 // individual deliveries attempted (before loss)
	Dropped      uint64 // deliveries suppressed by loss or disconnection
	Bytes        uint64
}

// Network is a collection of endpoints with controllable connectivity.
type Network struct {
	latency time.Duration
	loss    float64

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[types.ServerID]*Endpoint
	group     map[types.ServerID]int
	nextGroup int

	unicastOps   atomic.Uint64
	multicastOps atomic.Uint64
	datagrams    atomic.Uint64
	dropped      atomic.Uint64
	bytes        atomic.Uint64
}

// New creates an empty network.
func New(opts ...Option) *Network {
	n := &Network{
		endpoints: make(map[types.ServerID]*Endpoint),
		group:     make(map[types.ServerID]int),
		rng:       rand.New(rand.NewSource(1)),
		nextGroup: 1,
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Attach creates an endpoint for id. Attaching an id that is already
// attached and alive is an error; recovering a crashed id yields a fresh
// endpoint.
func (n *Network) Attach(id types.ServerID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok && !ep.closed.Load() {
		return nil, fmt.Errorf("memnet: endpoint %q already attached", id)
	}
	ep := &Endpoint{
		id:      id,
		net:     n,
		inbox:   queue.NewUnbounded[delivery](),
		recvCh:  make(chan transport.Message),
		changes: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go ep.pump()
	n.endpoints[id] = ep
	if _, ok := n.group[id]; !ok {
		n.group[id] = 0
	}
	n.notifyAllLocked()
	return ep, nil
}

// Crash detaches the endpoint abruptly: in-flight and queued messages to
// it are dropped and its Recv channel closes. The id may later Recover.
func (n *Network) Crash(id types.ServerID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

// Recover re-attaches a previously crashed id with an empty inbox.
func (n *Network) Recover(id types.ServerID) (*Endpoint, error) {
	return n.Attach(id)
}

// Partition splits the network into the given disjoint groups. Endpoints
// not listed in any group are isolated in singleton components. Panics on
// an id that appears twice.
func (n *Network) Partition(groups ...[]types.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	assigned := make(map[types.ServerID]int)
	for _, g := range groups {
		n.nextGroup++
		num := n.nextGroup
		for _, id := range g {
			if _, dup := assigned[id]; dup {
				panic(fmt.Sprintf("memnet: id %q in two partition groups", id))
			}
			assigned[id] = num
		}
	}
	for id := range n.group {
		num, ok := assigned[id]
		if !ok {
			n.nextGroup++
			num = n.nextGroup
		}
		n.group[id] = num
	}
	n.notifyAllLocked()
}

// Heal merges all components back into a single connected network.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.group {
		n.group[id] = 0
	}
	n.notifyAllLocked()
}

// Stats returns a snapshot of the operation counters.
func (n *Network) Stats() Stats {
	return Stats{
		UnicastOps:   n.unicastOps.Load(),
		MulticastOps: n.multicastOps.Load(),
		Datagrams:    n.datagrams.Load(),
		Dropped:      n.dropped.Load(),
		Bytes:        n.bytes.Load(),
	}
}

// notifyAllLocked pokes every endpoint's change channel.
func (n *Network) notifyAllLocked() {
	for _, ep := range n.endpoints {
		if !ep.closed.Load() {
			select {
			case ep.changes <- struct{}{}:
			default:
			}
		}
	}
}

// connectedLocked reports whether a and b are alive and in one component.
func (n *Network) connectedLocked(a, b types.ServerID) bool {
	epA, okA := n.endpoints[a]
	epB, okB := n.endpoints[b]
	if !okA || !okB || epA.closed.Load() || epB.closed.Load() {
		return false
	}
	return n.group[a] == n.group[b]
}

// deliver enqueues payload for dst if connected and not lost.
func (n *Network) deliver(src, dst types.ServerID, payload []byte) {
	n.mu.Lock()
	n.datagrams.Add(1)
	if !n.connectedLocked(src, dst) {
		n.dropped.Add(1)
		n.mu.Unlock()
		return
	}
	// Self-delivery is a local loopback: never lossy.
	if src != dst && n.loss > 0 && n.rng.Float64() < n.loss {
		n.dropped.Add(1)
		n.mu.Unlock()
		return
	}
	ep := n.endpoints[dst]
	n.mu.Unlock()

	// The payload buffer is shared across recipients of a multicast;
	// transport consumers treat received payloads as read-only.
	ep.inbox.Push(delivery{
		msg: transport.Message{From: src, Payload: payload},
		at:  time.Now().Add(n.latency),
	})
}

type delivery struct {
	msg transport.Message
	at  time.Time
}

// Endpoint is one attachment to a Network.
type Endpoint struct {
	id      types.ServerID
	net     *Network
	inbox   *queue.Unbounded[delivery]
	recvCh  chan transport.Message
	changes chan struct{}
	done    chan struct{}
	closed  atomic.Bool
}

var _ transport.Node = (*Endpoint)(nil)

// pump moves inbox entries to the receive channel, honoring per-message
// delivery times (constant latency keeps FIFO order per sender).
func (ep *Endpoint) pump() {
	defer close(ep.recvCh)
	for {
		d, ok := ep.inbox.Pop()
		if !ok {
			return
		}
		if wait := time.Until(d.at); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case ep.recvCh <- d.msg:
		case <-ep.done:
			return
		}
	}
}

// ID implements transport.Node.
func (ep *Endpoint) ID() types.ServerID { return ep.id }

// Send implements transport.Node.
func (ep *Endpoint) Send(to types.ServerID, payload []byte) error {
	if ep.closed.Load() {
		return transport.ErrClosed
	}
	ep.net.unicastOps.Add(1)
	ep.net.bytes.Add(uint64(len(payload)))
	ep.net.deliver(ep.id, to, append([]byte(nil), payload...))
	return nil
}

// Multicast implements transport.Node: a single broadcast-medium
// operation fanned out to every destination (self included if listed).
func (ep *Endpoint) Multicast(to []types.ServerID, payload []byte) error {
	if ep.closed.Load() {
		return transport.ErrClosed
	}
	ep.net.multicastOps.Add(1)
	ep.net.bytes.Add(uint64(len(payload)))
	buf := append([]byte(nil), payload...) // one copy shared by all recipients
	for _, dst := range to {
		ep.net.deliver(ep.id, dst, buf)
	}
	return nil
}

// Recv implements transport.Node.
func (ep *Endpoint) Recv() <-chan transport.Message { return ep.recvCh }

// Reachable implements transport.Node: all alive endpoints in this
// endpoint's component, in canonical order.
func (ep *Endpoint) Reachable() []types.ServerID {
	ep.net.mu.Lock()
	defer ep.net.mu.Unlock()
	if ep.closed.Load() {
		return nil
	}
	mine := ep.net.group[ep.id]
	var out []types.ServerID
	for id, other := range ep.net.endpoints {
		if !other.closed.Load() && ep.net.group[id] == mine {
			out = append(out, id)
		}
	}
	return types.SortServerIDs(out)
}

// Changes implements transport.Node.
func (ep *Endpoint) Changes() <-chan struct{} { return ep.changes }

// Close implements transport.Node. It marks the endpoint crashed,
// detaches it from the network and closes the receive channel.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	close(ep.done)
	ep.inbox.Close()
	ep.net.mu.Lock()
	if ep.net.endpoints[ep.id] == ep {
		delete(ep.net.endpoints, ep.id)
	}
	ep.net.notifyAllLocked()
	ep.net.mu.Unlock()
	return nil
}
