package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

func postJSON(t *testing.T, client *http.Client, u string, out any) (int, http.Header) {
	t.Helper()
	resp, err := client.Post(u, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestIdempotentRetryHTTP: resending a write with the same client/seq
// returns the original reply and applies the increment once.
func TestIdempotentRetryHTTP(t *testing.T) {
	srv := newServer(t)
	u := srv.URL + "/add?key=ctr&delta=1&client=c1&seq=1"

	var first, second WriteResult
	if code, _ := postJSON(t, srv.Client(), u, &first); code != http.StatusOK {
		t.Fatalf("first: %d", code)
	}
	if code, _ := postJSON(t, srv.Client(), u, &second); code != http.StatusOK {
		t.Fatalf("retry: %d", code)
	}
	if first.GreenSeq != second.GreenSeq {
		t.Fatalf("retry green seq %d != original %d", second.GreenSeq, first.GreenSeq)
	}

	resp, err := srv.Client().Get(srv.URL + "/get?key=ctr&level=strict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr ReadResult
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Value != "1" {
		t.Fatalf("counter %q after retry, want 1 (double apply)", rr.Value)
	}
}

// TestKeyedWriteNeedsSeq: a client id without a valid sequence number is
// a 400, not a silent unkeyed write.
func TestKeyedWriteNeedsSeq(t *testing.T) {
	srv := newServer(t)
	for _, q := range []string{"client=c1", "client=c1&seq=0", "client=c1&seq=x"} {
		code, _ := postJSON(t, srv.Client(), srv.URL+"/set?key=k&value=v&"+q, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", q, code)
		}
	}
}

// TestOverloadAnswers503AndDegradedReadsSurvive: with the admission gate
// saturated by a write stalled on a partitioned (NonPrim) replica,
// further writes answer 503 + Retry-After immediately, while weak and
// dirty reads keep answering — the degraded-mode matrix of DESIGN.md.
func TestOverloadAnswers503AndDegradedReadsSurvive(t *testing.T) {
	c, err := cluster.New(3, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		t.Fatal(err)
	}

	// Seed a key while the cluster is whole so the degraded reads below
	// have something to find.
	whole := httptest.NewServer(New(c.Replica(ids[0]).Engine, Config{}))
	code, _ := postJSON(t, whole.Client(), whole.URL+"/set?key=seeded&value=v1", nil)
	whole.Close()
	if code != http.StatusOK {
		t.Fatalf("seed write: %d", code)
	}

	// Isolate the last replica: it drops to NonPrim, where strict writes
	// stall until the partition heals.
	iso := ids[2]
	c.Partition([]types.ServerID{ids[0], ids[1]}, []types.ServerID{iso})
	if err := c.WaitNonPrim(10*time.Second, iso); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(c.Replica(iso).Engine, Config{
		MaxInFlight: 1,
		Timeout:     time.Minute,
	}))
	t.Cleanup(srv.Close)

	// Occupy the only admission slot with a write that cannot finish.
	stalled := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, srv.Client(), srv.URL+"/set?key=k&value=v", nil)
		stalled <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := srv.Client().Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled write never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next write must be refused promptly with a retry hint, well
	// within any reasonable request deadline.
	start := time.Now()
	resp, err := srv.Client().Post(srv.URL+"/set?key=k2&value=v", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded write: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("overload answer took %v", elapsed)
	}

	// Weak and dirty reads bypass admission and the NonPrim state.
	for _, level := range []string{"weak", "dirty"} {
		resp, err := srv.Client().Get(srv.URL + "/get?key=seeded&level=" + level)
		if err != nil {
			t.Fatal(err)
		}
		var rr ReadResult
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Found || rr.Value != "v1" {
			t.Fatalf("%s read on NonPrim replica: %+v", level, rr)
		}
	}

	// Heal; the stalled write completes once the replica rejoins the
	// primary component.
	c.Heal()
	select {
	case code := <-stalled:
		if code != http.StatusOK {
			t.Fatalf("stalled write finished %d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stalled write never completed after heal")
	}
}

// FuzzRequestDecode feeds arbitrary query strings to every decoding
// endpoint: the handler must answer something (a 4xx for garbage) and
// never panic. The seed corpus covers each parameter's happy path and
// known-tricky encodings.
func FuzzRequestDecode(f *testing.F) {
	c, err := cluster.New(1, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		f.Fatal(err)
	}
	h := New(c.Replica(ids[0]).Engine, Config{Timeout: 5 * time.Second})

	seeds := []string{
		"key=k&value=v",
		"key=k&delta=5",
		"key=k&delta=-9223372036854775808",
		"key=k&value=v&ts=9",
		"key=k&level=strict",
		"key=k&level=weak",
		"key=k&level=dirty",
		"key=k&value=v&client=c1&seq=1",
		"key=k&value=v&client=c1&seq=18446744073709551615",
		"key=k&value=v&client=&seq=1",
		"key=%00&value=%ff",
		"key=k&value=v&seq=1",
		"client=c1&seq=abc&key=k&value=v",
		"key=k;value=v",
		"key=k&key=k2&value=v",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	paths := []struct{ method, path string }{
		{http.MethodPost, "/set"},
		{http.MethodPost, "/add"},
		{http.MethodPost, "/tsset"},
		{http.MethodGet, "/get"},
	}
	f.Fuzz(func(t *testing.T, rawQuery string) {
		if len(rawQuery) > 4096 {
			t.Skip("oversized query")
		}
		if _, err := url.ParseQuery(rawQuery); err != nil {
			// Still exercise the handler: it must tolerate queries the
			// stdlib refuses to parse.
			rawQuery = url.QueryEscape(rawQuery)
		}
		for _, p := range paths {
			target := fmt.Sprintf("%s?%s", p.path, rawQuery)
			req := httptest.NewRequest(p.method, "http://replica"+strings.ReplaceAll(target, " ", "%20"), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code == 0 {
				t.Fatalf("%s %s: no status written", p.method, target)
			}
		}
	})
}
