// Package httpapi exposes a replication engine over HTTP — the client
// surface of cmd/replica, shared with tests and the Go client library
// (internal/client).
//
// Endpoints:
//
//	POST /set?key=k&value=v          strict replicated write
//	POST /add?key=k&delta=5          commutative increment
//	POST /tsset?key=k&value=v&ts=9   timestamped write
//	GET  /get?key=k&level=strict|weak|dirty
//	GET  /status                     engine state and counters
//	POST /checkpoint                 compact the WAL
//	POST /leave                      permanently retire this replica
//
// Write endpoints accept an optional idempotency key
// (&client=ID&seq=N): the engine applies at most one action per key and
// answers retries with the original reply, so clients may resend the
// same operation through any replica after a timeout or failover.
//
// Error taxonomy: deterministic aborts (including replies replayed from
// the dedup table) return 409 and must not be retried; retryable
// conditions — overload, replica left, storage failure — return 503
// with a Retry-After hint; a request that exhausts its deadline returns
// 504. Weak and dirty reads bypass admission control and keep working
// while the replica is partitioned out of the primary component.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

// Status is the JSON shape of GET /status.
type Status struct {
	State      string   `json:"state"`
	Conf       string   `json:"configuration"`
	GreenCount uint64   `json:"greenCount"`
	RedCount   int      `json:"redCount"`
	PrimIndex  uint64   `json:"primIndex"`
	Vulnerable bool     `json:"vulnerable"`
	Servers    []string `json:"servers"`
	InFlight   int      `json:"inFlight"`
	Sessions   int      `json:"sessions"`

	ActionsGenerated     uint64 `json:"actionsGenerated"`
	ActionsApplied       uint64 `json:"actionsApplied"`
	Exchanges            uint64 `json:"exchanges"`
	PrimariesInstalled   uint64 `json:"primariesInstalled"`
	ActionsRetransmitted uint64 `json:"actionsRetransmitted"`
	Duplicates           uint64 `json:"duplicates"`
	Overloads            uint64 `json:"overloads"`
}

// WriteResult is the JSON shape of successful write operations.
type WriteResult struct {
	OK       bool   `json:"ok"`
	GreenSeq uint64 `json:"greenSeq"`
}

// ReadResult is the JSON shape of GET /get (mirrors db.Result).
type ReadResult struct {
	Found   bool   `json:"found"`
	Value   string `json:"value,omitempty"`
	Version uint64 `json:"version"`
	Dirty   bool   `json:"dirty"`
}

// Config tunes the handler.
type Config struct {
	// Timeout bounds each replicated operation. Default 30s.
	Timeout time.Duration
	// MaxInFlight bounds how many replicated operations this handler
	// admits concurrently, before they even reach the engine; requests
	// beyond it answer 503 + Retry-After immediately instead of stacking
	// goroutines behind a stalled engine. Zero means DefaultMaxInFlight;
	// negative disables the gate. Weak/dirty reads and status requests
	// bypass it.
	MaxInFlight int
	// RetryAfter is the hint returned in the Retry-After header on 503
	// responses. Default 1s.
	RetryAfter time.Duration
}

// DefaultMaxInFlight is the handler admission budget used when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 1024

// New builds the HTTP handler for one engine.
func New(eng *core.Engine, cfg Config) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	var admit chan struct{}
	if cfg.MaxInFlight > 0 {
		admit = make(chan struct{}, cfg.MaxInFlight)
	}
	retryAfterSecs := strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second))

	overloaded := func(w http.ResponseWriter, msg string) {
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, msg, http.StatusServiceUnavailable)
	}
	// acquire takes an admission slot without blocking; a full gate is an
	// immediate overload answer.
	acquire := func(w http.ResponseWriter) bool {
		if admit == nil {
			return true
		}
		select {
		case admit <- struct{}{}:
			return true
		default:
			overloaded(w, "httpapi: too many in-flight requests")
			return false
		}
	}
	release := func() {
		if admit != nil {
			<-admit
		}
	}

	// fail maps an operation error to its HTTP status: retryable errors
	// invite the client back with Retry-After, deterministic aborts tell
	// it to stop, deadline exhaustion is a gateway timeout.
	fail := func(w http.ResponseWriter, err error) {
		switch {
		case errors.Is(err, core.ErrRetryable):
			overloaded(w, err.Error())
		case errors.Is(err, core.ErrAborted):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			overloaded(w, err.Error())
		}
	}

	mux := http.NewServeMux()

	submit := func(w http.ResponseWriter, r *http.Request, update []byte, sem types.Semantics) {
		if !acquire(w) {
			return
		}
		defer release()
		q := r.URL.Query()
		client := q.Get("client")
		var seq uint64
		if client != "" {
			var err error
			seq, err = strconv.ParseUint(q.Get("seq"), 10, 64)
			if err != nil || seq == 0 {
				http.Error(w, "bad seq: idempotency keys need client and seq >= 1", http.StatusBadRequest)
				return
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		reply, err := eng.SubmitKeyed(ctx, client, seq, update, nil, sem)
		if err != nil {
			fail(w, err)
			return
		}
		if ferr := reply.Failure(); ferr != nil {
			fail(w, ferr)
			return
		}
		writeJSON(w, WriteResult{OK: true, GreenSeq: reply.GreenSeq})
	}

	mux.HandleFunc("POST /set", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		submit(w, r, db.EncodeUpdate(db.Set(q.Get("key"), q.Get("value"))), types.SemStrict)
	})
	mux.HandleFunc("POST /add", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		delta, err := strconv.ParseInt(q.Get("delta"), 10, 64)
		if err != nil {
			http.Error(w, "bad delta", http.StatusBadRequest)
			return
		}
		submit(w, r, db.EncodeUpdate(db.Add(q.Get("key"), delta)), types.SemCommutative)
	})
	mux.HandleFunc("POST /tsset", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ts, err := strconv.ParseInt(q.Get("ts"), 10, 64)
		if err != nil {
			http.Error(w, "bad ts", http.StatusBadRequest)
			return
		}
		submit(w, r, db.EncodeUpdate(db.TSSet(q.Get("key"), q.Get("value"), ts)), types.SemTimestamp)
	})
	mux.HandleFunc("GET /get", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		level := core.QueryWeak
		switch q.Get("level") {
		case "", "weak":
		case "strict":
			level = core.QueryStrict
		case "dirty":
			level = core.QueryDirty
		default:
			// A typo'd level must not silently downgrade a read the caller
			// believed was strict.
			http.Error(w, "bad level (want strict|weak|dirty)", http.StatusBadRequest)
			return
		}
		// Strict reads are globally ordered operations and count against
		// admission; weak and dirty reads answer from local state in any
		// engine state — they are the degraded-mode path and must keep
		// working under overload and in NonPrim.
		if level == core.QueryStrict {
			if !acquire(w) {
				return
			}
			defer release()
		}
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		res, err := eng.Query(ctx, db.Get(q.Get("key")), level)
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, ReadResult{
			Found:   res.Found,
			Value:   res.Value,
			Version: res.Version,
			Dirty:   res.Dirty,
		})
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, StatusView(eng.Status()))
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		if err := eng.Checkpoint(ctx); err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /leave", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		if err := eng.Leave(ctx); err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, map[string]string{"status": "leaving"})
	})
	// Observability: the engine's shared registry in Prometheus text
	// format, and the recent state-machine event trace. Both read only
	// atomics, so they serve during exchanges, NonPrim, and overload.
	mux.Handle("GET /metrics", eng.Observer().Reg)
	mux.HandleFunc("GET /debug/events", eng.Observer().ServeEvents)
	return mux
}

// StatusView converts an engine status to the wire shape.
func StatusView(st core.Status) Status {
	servers := make([]string, len(st.ServerSet))
	for i, s := range st.ServerSet {
		servers[i] = string(s)
	}
	return Status{
		State:      st.State.String(),
		Conf:       st.Conf.String(),
		GreenCount: st.GreenCount,
		RedCount:   st.RedCount,
		PrimIndex:  st.Prim.PrimIndex,
		Vulnerable: st.Vulnerable,
		Servers:    servers,
		InFlight:   st.InFlight,
		Sessions:   st.Sessions,

		ActionsGenerated:     st.Metrics.Generated,
		ActionsApplied:       st.Metrics.Applied,
		Exchanges:            st.Metrics.Exchanges,
		PrimariesInstalled:   st.Metrics.Installs,
		ActionsRetransmitted: st.Metrics.Retransmitted,
		Duplicates:           st.Metrics.Duplicates,
		Overloads:            st.Metrics.Overloads,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
