// Package httpapi exposes a replication engine over HTTP — the client
// surface of cmd/replica, shared with tests and the Go client library
// (internal/client).
//
// Endpoints:
//
//	POST /set?key=k&value=v          strict replicated write
//	POST /add?key=k&delta=5          commutative increment
//	POST /tsset?key=k&value=v&ts=9   timestamped write
//	GET  /get?key=k&level=strict|weak|dirty
//	GET  /status                     engine state and counters
//	POST /checkpoint                 compact the WAL
//	POST /leave                      permanently retire this replica
package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

// Status is the JSON shape of GET /status.
type Status struct {
	State      string   `json:"state"`
	Conf       string   `json:"configuration"`
	GreenCount uint64   `json:"greenCount"`
	RedCount   int      `json:"redCount"`
	PrimIndex  uint64   `json:"primIndex"`
	Vulnerable bool     `json:"vulnerable"`
	Servers    []string `json:"servers"`

	ActionsGenerated     uint64 `json:"actionsGenerated"`
	ActionsApplied       uint64 `json:"actionsApplied"`
	Exchanges            uint64 `json:"exchanges"`
	PrimariesInstalled   uint64 `json:"primariesInstalled"`
	ActionsRetransmitted uint64 `json:"actionsRetransmitted"`
}

// WriteResult is the JSON shape of successful write operations.
type WriteResult struct {
	OK       bool   `json:"ok"`
	GreenSeq uint64 `json:"greenSeq"`
}

// ReadResult is the JSON shape of GET /get (mirrors db.Result).
type ReadResult struct {
	Found   bool   `json:"found"`
	Value   string `json:"value,omitempty"`
	Version uint64 `json:"version"`
	Dirty   bool   `json:"dirty"`
}

// Config tunes the handler.
type Config struct {
	// Timeout bounds each replicated operation. Default 30s.
	Timeout time.Duration
}

// New builds the HTTP handler for one engine.
func New(eng *core.Engine, cfg Config) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	mux := http.NewServeMux()

	submit := func(w http.ResponseWriter, r *http.Request, update []byte, sem types.Semantics) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		reply, err := eng.Submit(ctx, update, nil, sem)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if reply.Err != "" {
			http.Error(w, reply.Err, http.StatusConflict)
			return
		}
		writeJSON(w, WriteResult{OK: true, GreenSeq: reply.GreenSeq})
	}

	mux.HandleFunc("POST /set", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		submit(w, r, db.EncodeUpdate(db.Set(q.Get("key"), q.Get("value"))), types.SemStrict)
	})
	mux.HandleFunc("POST /add", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		delta, err := strconv.ParseInt(q.Get("delta"), 10, 64)
		if err != nil {
			http.Error(w, "bad delta", http.StatusBadRequest)
			return
		}
		submit(w, r, db.EncodeUpdate(db.Add(q.Get("key"), delta)), types.SemCommutative)
	})
	mux.HandleFunc("POST /tsset", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ts, err := strconv.ParseInt(q.Get("ts"), 10, 64)
		if err != nil {
			http.Error(w, "bad ts", http.StatusBadRequest)
			return
		}
		submit(w, r, db.EncodeUpdate(db.TSSet(q.Get("key"), q.Get("value"), ts)), types.SemTimestamp)
	})
	mux.HandleFunc("GET /get", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		level := core.QueryWeak
		switch q.Get("level") {
		case "strict":
			level = core.QueryStrict
		case "dirty":
			level = core.QueryDirty
		}
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		res, err := eng.Query(ctx, db.Get(q.Get("key")), level)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, ReadResult{
			Found:   res.Found,
			Value:   res.Value,
			Version: res.Version,
			Dirty:   res.Dirty,
		})
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, StatusView(eng.Status()))
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		if err := eng.Checkpoint(ctx); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /leave", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		if err := eng.Leave(ctx); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, map[string]string{"status": "leaving"})
	})
	return mux
}

// StatusView converts an engine status to the wire shape.
func StatusView(st core.Status) Status {
	servers := make([]string, len(st.ServerSet))
	for i, s := range st.ServerSet {
		servers[i] = string(s)
	}
	return Status{
		State:      st.State.String(),
		Conf:       st.Conf.String(),
		GreenCount: st.GreenCount,
		RedCount:   st.RedCount,
		PrimIndex:  st.Prim.PrimIndex,
		Vulnerable: st.Vulnerable,
		Servers:    servers,

		ActionsGenerated:     st.Metrics.Generated,
		ActionsApplied:       st.Metrics.Applied,
		Exchanges:            st.Metrics.Exchanges,
		PrimariesInstalled:   st.Metrics.Installs,
		ActionsRetransmitted: st.Metrics.Retransmitted,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
