package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/obs"
	"evsdb/internal/storage"
	"evsdb/internal/types"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := cluster.New(1, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(c.Replica(ids[0]).Engine, Config{}))
	t.Cleanup(srv.Close)
	return srv
}

func TestBadInputsRejected(t *testing.T) {
	srv := newServer(t)
	for _, tc := range []struct {
		name, method, path string
		want               int
	}{
		{"bad delta", http.MethodPost, "/add?key=k&delta=NaN", http.StatusBadRequest},
		{"bad ts", http.MethodPost, "/tsset?key=k&value=v&ts=xx", http.StatusBadRequest},
		{"wrong method", http.MethodGet, "/set?key=k&value=v", http.StatusMethodNotAllowed},
		{"unknown route", http.MethodGet, "/nope", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

func TestStatusShape(t *testing.T) {
	srv := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("content type %q", got)
	}
}

// fetchMetrics GETs /metrics and returns the parsed exposition, failing
// the test on a non-200 answer or invalid Prometheus text.
func fetchMetrics(t *testing.T, client *http.Client, base string) *obs.Exposition {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("/metrics output does not parse: %v\n%s", err, body)
	}
	return exp
}

// TestMetricsUnderLoad hammers the write path while concurrently scraping
// /metrics and /debug/events: both must keep serving valid output, and
// the scraped counters must agree with /status (they are the same
// atomics).
func TestMetricsUnderLoad(t *testing.T) {
	srv := newServer(t)
	client := srv.Client()

	const writers, writes = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				url := fmt.Sprintf("%s/set?key=k%d&value=v%d", srv.URL, w, i)
				resp, err := client.Post(url, "", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	// Scrape while the writers run; every intermediate exposition must
	// already be grammatically valid.
	for i := 0; i < 5; i++ {
		fetchMetrics(t, client, srv.URL)
	}
	wg.Wait()

	exp := fetchMetrics(t, client, srv.URL)
	gen, ok := exp.Value("evsdb_actions_generated_total", nil)
	if !ok || gen < writers*writes {
		t.Fatalf("evsdb_actions_generated_total = %v (ok=%v), want >= %d", gen, ok, writers*writes)
	}
	if exp.Family("evsdb_action_latency_seconds") == nil {
		t.Fatal("missing evsdb_action_latency_seconds histogram")
	}
	n, ok := exp.Value("evsdb_action_latency_seconds_count", map[string]string{"class": "strict"})
	if !ok || n < writers*writes {
		t.Fatalf("strict latency count = %v (ok=%v), want >= %d", n, ok, writers*writes)
	}

	resp, err := client.Get(srv.URL + "/debug/events?n=64")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "state") {
		t.Fatalf("/debug/events has no state transitions:\n%s", body)
	}

	resp, err = client.Get(srv.URL + "/debug/events?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/debug/events?n=bogus: %d, want 400", resp.StatusCode)
	}
}

// TestMetricsDuringNonPrim partitions the serving replica away from the
// quorum and verifies the observability endpoints keep answering: they
// read only atomics and must not block behind a wedged engine.
func TestMetricsDuringNonPrim(t *testing.T) {
	c, err := cluster.New(3, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(c.Replica(ids[0]).Engine, Config{}))
	t.Cleanup(srv.Close)

	c.Partition([]types.ServerID{ids[0]}, []types.ServerID{ids[1], ids[2]})
	if err := c.WaitNonPrim(10*time.Second, ids[0]); err != nil {
		t.Fatal(err)
	}

	exp := fetchMetrics(t, srv.Client(), srv.URL)
	st, ok := exp.Value("evsdb_engine_state", nil)
	if !ok {
		t.Fatal("missing evsdb_engine_state gauge")
	}
	if st == 2 { // StateRegPrim — the partitioned minority must not claim primary
		t.Fatalf("evsdb_engine_state = %v during partition", st)
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events during NonPrim: %d", resp.StatusCode)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := srv.Client().Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
}
