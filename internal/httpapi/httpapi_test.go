package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/storage"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := cluster.New(1, cluster.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(c.Replica(ids[0]).Engine, Config{}))
	t.Cleanup(srv.Close)
	return srv
}

func TestBadInputsRejected(t *testing.T) {
	srv := newServer(t)
	for _, tc := range []struct {
		name, method, path string
		want               int
	}{
		{"bad delta", http.MethodPost, "/add?key=k&delta=NaN", http.StatusBadRequest},
		{"bad ts", http.MethodPost, "/tsset?key=k&value=v&ts=xx", http.StatusBadRequest},
		{"wrong method", http.MethodGet, "/set?key=k&value=v", http.StatusMethodNotAllowed},
		{"unknown route", http.MethodGet, "/nope", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

func TestStatusShape(t *testing.T) {
	srv := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("content type %q", got)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := srv.Client().Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
}
