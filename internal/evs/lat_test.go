package evs

import (
	"fmt"
	"testing"
	"time"

	"evsdb/internal/types"
)

func TestDeliveryLatencyProbe(t *testing.T) {
	h := newHarness14(t)
	var all []types.ServerID
	for i := 0; i < 14; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)
	for _, svc := range []ServiceLevel{Agreed, Safe} {
		var total time.Duration
		const N = 50
		for i := 0; i < N; i++ {
			want := fmt.Sprintf("%v-%d", svc, i)
			t0 := time.Now()
			_ = h.nodes[all[3]].Multicast([]byte(want), svc)
			waitFor(t, 5*time.Second, "delivery", func() bool {
				ds := deliveries(h.events(all[7]))
				return len(ds) > 0 && ds[len(ds)-1] == want
			})
			total += time.Since(t0)
		}
		t.Logf("%v: avg %.3fms", svc, float64(total/N)/float64(time.Millisecond))
	}
}
