package evs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

// harness runs a set of EVS nodes over a memnet and records every event
// each node delivers.
type harness struct {
	t     *testing.T
	net   *memnet.Network
	nodes map[types.ServerID]*Node

	mu   sync.Mutex
	logs map[types.ServerID][]Event
	wg   sync.WaitGroup
}

func newHarness(t *testing.T, n int, opts ...memnet.Option) *harness {
	t.Helper()
	h := &harness{
		t:     t,
		net:   memnet.New(opts...),
		nodes: make(map[types.ServerID]*Node),
		logs:  make(map[types.ServerID][]Event),
	}
	for i := 0; i < n; i++ {
		h.add(serverID(i))
	}
	t.Cleanup(h.close)
	return h
}

func serverID(i int) types.ServerID {
	return types.ServerID(fmt.Sprintf("s%02d", i))
}

func (h *harness) add(id types.ServerID) *Node {
	h.t.Helper()
	ep, err := h.net.Attach(id)
	if err != nil {
		h.t.Fatalf("attach %s: %v", id, err)
	}
	node := NewNode(ep, WithTick(200*time.Microsecond))
	h.nodes[id] = node
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for ev := range node.Events() {
			h.mu.Lock()
			h.logs[id] = append(h.logs[id], ev)
			h.mu.Unlock()
		}
	}()
	return node
}

func (h *harness) close() {
	for _, n := range h.nodes {
		n.Close()
	}
	h.wg.Wait()
}

func (h *harness) crash(id types.ServerID) {
	h.net.Crash(id)
	h.nodes[id].Close()
	delete(h.nodes, id)
}

// events returns a snapshot of one node's event log.
func (h *harness) events(id types.ServerID) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.logs[id]...)
}

// deliveries extracts payload strings from a node's log.
func deliveries(evs []Event) []string {
	var out []string
	for _, ev := range evs {
		if d, ok := ev.(Delivery); ok {
			out = append(out, string(d.Payload))
		}
	}
	return out
}

// lastRegular returns the most recent regular configuration in a log.
func lastRegular(evs []Event) (types.Configuration, bool) {
	for i := len(evs) - 1; i >= 0; i-- {
		if vc, ok := evs[i].(ViewChange); ok && !vc.Config.Transitional {
			return vc.Config, true
		}
	}
	return types.Configuration{}, false
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitView waits until every listed node's latest regular configuration
// has exactly the given membership.
func (h *harness) waitView(ids []types.ServerID, want []types.ServerID) {
	h.t.Helper()
	sorted := append([]types.ServerID(nil), want...)
	types.SortServerIDs(sorted)
	waitFor(h.t, 10*time.Second, fmt.Sprintf("view %v at %v", want, ids), func() bool {
		for _, id := range ids {
			conf, ok := lastRegular(h.events(id))
			if !ok || !types.EqualMembers(conf.Members, sorted) {
				return false
			}
		}
		return true
	})
}

func TestSingleNodeInstallsAndDelivers(t *testing.T) {
	h := newHarness(t, 1)
	id := serverID(0)
	h.waitView([]types.ServerID{id}, []types.ServerID{id})

	if err := h.nodes[id].Multicast([]byte("hello"), Safe); err != nil {
		t.Fatalf("multicast: %v", err)
	}
	waitFor(t, 5*time.Second, "self delivery", func() bool {
		ds := deliveries(h.events(id))
		return len(ds) == 1 && ds[0] == "hello"
	})
}

func TestThreeNodesAgreeOnView(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	// All three must install the *same* configuration id.
	var ids []types.ConfID
	for _, id := range all {
		conf, _ := lastRegular(h.events(id))
		ids = append(ids, conf.ID)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("configuration ids differ: %v", ids)
	}
}

func TestTotalOrderAcrossConcurrentSenders(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	const perSender = 50
	for _, id := range all {
		go func(id types.ServerID) {
			for i := 0; i < perSender; i++ {
				_ = h.nodes[id].Multicast([]byte(fmt.Sprintf("%s/%d", id, i)), Safe)
			}
		}(id)
	}

	total := perSender * len(all)
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		for _, id := range all {
			if len(deliveries(h.events(id))) < total {
				return false
			}
		}
		return true
	})

	ref := deliveries(h.events(all[0]))
	for _, id := range all[1:] {
		got := deliveries(h.events(id))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("delivery order differs at %d: %s got %q, %s got %q",
					i, all[0], ref[i], id, got[i])
			}
		}
	}
}

func TestSenderFIFO(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	const msgs = 100
	for i := 0; i < msgs; i++ {
		_ = h.nodes[all[0]].Multicast([]byte(fmt.Sprintf("%d", i)), Agreed)
	}
	waitFor(t, 10*time.Second, "fifo deliveries", func() bool {
		return len(deliveries(h.events(all[2]))) >= msgs
	})
	got := deliveries(h.events(all[2]))
	for i := 0; i < msgs; i++ {
		if got[i] != fmt.Sprintf("%d", i) {
			t.Fatalf("FIFO violated at %d: got %q", i, got[i])
		}
	}
}

func TestPartitionDeliversTransThenRegular(t *testing.T) {
	h := newHarness(t, 5)
	var all []types.ServerID
	for i := 0; i < 5; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)

	left := all[:3]
	right := all[3:]
	h.net.Partition(left, right)

	h.waitView(left, left)
	h.waitView(right, right)

	// Each side must have seen a transitional configuration for the old
	// view before the new regular one, with membership limited to its
	// side.
	for _, id := range all {
		evs := h.events(id)
		var sawTrans bool
		for _, ev := range evs {
			vc, ok := ev.(ViewChange)
			if !ok || !vc.Config.Transitional {
				continue
			}
			sawTrans = true
			if len(vc.Config.Members) > 3 {
				t.Fatalf("%s: transitional config has %d members", id, len(vc.Config.Members))
			}
		}
		if !sawTrans {
			t.Fatalf("%s: no transitional configuration delivered", id)
		}
	}

	// Post-partition traffic stays within the component.
	_ = h.nodes[left[0]].Multicast([]byte("left-only"), Safe)
	_ = h.nodes[right[0]].Multicast([]byte("right-only"), Safe)

	waitFor(t, 5*time.Second, "left delivery", func() bool {
		for _, id := range left {
			if !contains(deliveries(h.events(id)), "left-only") {
				return false
			}
		}
		return true
	})
	waitFor(t, 5*time.Second, "right delivery", func() bool {
		for _, id := range right {
			if !contains(deliveries(h.events(id)), "right-only") {
				return false
			}
		}
		return true
	})
	for _, id := range right {
		if contains(deliveries(h.events(id)), "left-only") {
			t.Fatalf("%s received message from the other component", id)
		}
	}
}

func TestMergeReinstallsFullView(t *testing.T) {
	h := newHarness(t, 4)
	var all []types.ServerID
	for i := 0; i < 4; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)

	h.net.Partition(all[:2], all[2:])
	h.waitView(all[:2], all[:2])
	h.waitView(all[2:], all[2:])

	_ = h.nodes[all[0]].Multicast([]byte("during-partition"), Safe)
	waitFor(t, 5*time.Second, "partition delivery", func() bool {
		return contains(deliveries(h.events(all[1])), "during-partition")
	})

	h.net.Heal()
	h.waitView(all, all)

	_ = h.nodes[all[3]].Multicast([]byte("after-merge"), Safe)
	waitFor(t, 5*time.Second, "post-merge delivery everywhere", func() bool {
		for _, id := range all {
			if !contains(deliveries(h.events(id)), "after-merge") {
				return false
			}
		}
		return true
	})
}

func TestCrashReconfigures(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	h.crash(all[2])
	h.waitView(all[:2], all[:2])

	_ = h.nodes[all[0]].Multicast([]byte("post-crash"), Safe)
	waitFor(t, 5*time.Second, "post-crash delivery", func() bool {
		return contains(deliveries(h.events(all[1])), "post-crash")
	})
}

func TestLossRecovery(t *testing.T) {
	h := newHarness(t, 3, memnet.WithLoss(0.10), memnet.WithSeed(42))
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	const msgs = 60
	for i := 0; i < msgs; i++ {
		_ = h.nodes[all[i%3]].Multicast([]byte(fmt.Sprintf("m%d", i)), Safe)
	}
	waitFor(t, 20*time.Second, "lossy deliveries", func() bool {
		for _, id := range all {
			if len(deliveries(h.events(id))) < msgs {
				return false
			}
		}
		return true
	})
	// Total order must hold despite the loss.
	ref := deliveries(h.events(all[0]))[:msgs]
	for _, id := range all[1:] {
		got := deliveries(h.events(id))[:msgs]
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d under loss: %q vs %q", i, ref[i], got[i])
			}
		}
	}
}

// TestVirtualSynchrony checks the core EVS guarantee: nodes that install
// the same next configuration delivered the same set of messages in the
// previous one (counting both regular and transitional deliveries).
func TestVirtualSynchrony(t *testing.T) {
	h := newHarness(t, 5)
	var all []types.ServerID
	for i := 0; i < 5; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)

	// Pump traffic while partitioning to catch in-flight messages.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range all {
		wg.Add(1)
		go func(id types.ServerID) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.nodes[id].Multicast([]byte(fmt.Sprintf("%s#%d", id, i)), Safe)
				time.Sleep(200 * time.Microsecond)
			}
		}(id)
	}
	time.Sleep(20 * time.Millisecond)
	h.net.Partition(all[:3], all[3:])
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	h.waitView(all[:3], all[:3])
	h.waitView(all[3:], all[3:])

	// Wait for each side to drain pending deliveries.
	time.Sleep(100 * time.Millisecond)

	checkGroup := func(ids []types.ServerID) {
		t.Helper()
		// Compare the full prefix of deliveries up to (and including)
		// everything delivered before the new regular configuration.
		var ref []string
		for i, id := range ids {
			evs := h.events(id)
			var seq []string
			for _, ev := range evs {
				switch e := ev.(type) {
				case Delivery:
					seq = append(seq, string(e.Payload))
				case ViewChange:
					if !e.Config.Transitional && types.EqualMembers(e.Config.Members, ids) {
						// Stop at the post-partition regular config.
						goto compare
					}
				}
			}
		compare:
			if i == 0 {
				ref = seq
				continue
			}
			if len(seq) != len(ref) {
				t.Fatalf("virtual synchrony violated: %s delivered %d, %s delivered %d",
					ids[0], len(ref), id, len(seq))
			}
			for j := range ref {
				if seq[j] != ref[j] {
					t.Fatalf("virtual synchrony violated at %d: %q vs %q", j, ref[j], seq[j])
				}
			}
		}
	}
	checkGroup(all[:3])
	checkGroup(all[3:])
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
