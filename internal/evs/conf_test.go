package evs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"evsdb/internal/types"
)

func newTestConf() *confState {
	return newConfState(
		types.ConfID{Counter: 1, Proposer: "a"},
		[]types.ServerID{"a", "b", "c"},
	)
}

func dm(sender string, lseq uint64, svc ServiceLevel) *dataMsg {
	return &dataMsg{
		Conf:    types.ConfID{Counter: 1, Proposer: "a"},
		Sender:  types.ServerID(sender),
		LSeq:    lseq,
		Service: svc,
		Payload: []byte(fmt.Sprintf("%s/%d", sender, lseq)),
	}
}

func TestConfSequencerIsLowestMember(t *testing.T) {
	c := newConfState(types.ConfID{Counter: 1, Proposer: "z"},
		[]types.ServerID{"c", "a", "b"})
	if c.sequencer != "a" {
		t.Fatalf("sequencer = %s", c.sequencer)
	}
}

func TestConfStoreDataAdvancesCut(t *testing.T) {
	c := newTestConf()
	if !c.storeData(dm("a", 1, Agreed)) {
		t.Fatal("first store rejected")
	}
	if c.storeData(dm("a", 1, Agreed)) {
		t.Fatal("duplicate accepted")
	}
	// Out-of-order arrival: cut waits for the gap to fill.
	c.storeData(dm("a", 3, Agreed))
	if c.dataCut["a"] != 1 || c.dataMax["a"] != 3 {
		t.Fatalf("cut=%d max=%d", c.dataCut["a"], c.dataMax["a"])
	}
	c.storeData(dm("a", 2, Agreed))
	if c.dataCut["a"] != 3 {
		t.Fatalf("cut=%d after gap fill", c.dataCut["a"])
	}
}

func TestConfStoreDataRejectsNonMember(t *testing.T) {
	c := newTestConf()
	if c.storeData(dm("zz", 1, Agreed)) {
		t.Fatal("non-member data accepted")
	}
}

func TestConfSequenceSkipsFifo(t *testing.T) {
	c := newTestConf()
	c.storeData(dm("a", 1, Fifo))
	c.storeData(dm("a", 2, Safe))
	c.storeData(dm("a", 3, Fifo))
	c.storeData(dm("a", 4, Agreed))
	c.sequence("a")
	if len(c.pendingOrder) != 2 {
		t.Fatalf("pending order: %+v", c.pendingOrder)
	}
	if c.pendingOrder[0].LSeq != 2 || c.pendingOrder[1].LSeq != 4 {
		t.Fatalf("fifo messages ordered: %+v", c.pendingOrder)
	}
}

func TestConfDeliveryRespectsStability(t *testing.T) {
	c := newTestConf()
	c.storeData(dm("a", 1, Safe))
	c.storeOrder([]orderEntry{{GSeq: 1, Sender: "a", LSeq: 1}})
	c.advanceHold()
	if c.holdCut != 1 {
		t.Fatalf("holdCut %d", c.holdCut)
	}
	if d := c.nextDeliverable(); d != nil {
		t.Fatal("safe message delivered before stability")
	}
	c.stableCut = 1
	d := c.nextDeliverable()
	if d == nil || d.LSeq != 1 {
		t.Fatalf("deliverable: %+v", d)
	}
	c.markDelivered()
	if c.nextDeliverable() != nil {
		t.Fatal("delivered twice")
	}
}

func TestConfAgreedDeliversWithoutStability(t *testing.T) {
	c := newTestConf()
	c.storeData(dm("b", 1, Agreed))
	c.storeOrder([]orderEntry{{GSeq: 1, Sender: "b", LSeq: 1}})
	if d := c.nextDeliverable(); d == nil {
		t.Fatal("agreed message blocked on stability")
	}
}

func TestConfGapsReported(t *testing.T) {
	c := newTestConf()
	c.storeData(dm("a", 1, Agreed))
	c.storeData(dm("a", 4, Agreed))
	gaps := c.dataGaps(10)
	if len(gaps["a"]) != 2 || gaps["a"][0] != 2 || gaps["a"][1] != 3 {
		t.Fatalf("data gaps: %+v", gaps)
	}
	c.storeOrder([]orderEntry{{GSeq: 1, Sender: "a", LSeq: 1}, {GSeq: 4, Sender: "a", LSeq: 4}})
	og := c.orderGaps(10)
	if len(og) != 2 || og[0] != 2 || og[1] != 3 {
		t.Fatalf("order gaps: %+v", og)
	}
}

func TestConfGCKeepsUnstable(t *testing.T) {
	c := newTestConf()
	for i := uint64(1); i <= 5; i++ {
		c.storeData(dm("a", i, Safe))
		c.storeOrder([]orderEntry{{GSeq: i, Sender: "a", LSeq: i}})
	}
	c.advanceHold()
	c.stableCut = 3
	for c.nextDeliverable() != nil {
		c.markDelivered()
	}
	if c.delivered != 3 {
		t.Fatalf("delivered %d", c.delivered)
	}
	c.gc()
	if _, held := c.orders[3]; held {
		t.Fatal("stable+delivered entry not collected")
	}
	if _, held := c.orders[4]; !held {
		t.Fatal("unstable entry collected")
	}
	// Logical cuts are preserved for flush holdings.
	h := c.holdings()
	if h.OrderCut != 5 || h.DataCut["a"] != 5 {
		t.Fatalf("holdings after gc: %+v", h)
	}
}

func TestConfLeftoverDataDeterministic(t *testing.T) {
	c := newTestConf()
	c.storeData(dm("b", 1, Safe))
	c.storeData(dm("a", 2, Safe))
	c.storeData(dm("a", 1, Safe))
	c.storeData(dm("c", 1, Safe))
	left := c.leftoverData()
	want := []string{"a/1", "a/2", "b/1", "c/1"}
	if len(left) != len(want) {
		t.Fatalf("leftover count %d", len(left))
	}
	for i, d := range left {
		if string(d.Payload) != want[i] {
			t.Fatalf("leftover[%d] = %s, want %s", i, d.Payload, want[i])
		}
	}
}

// TestConfHoldingsCoverEverythingStored: property — whatever subset of a
// message stream arrives, holdings must account for exactly the stored
// items (cut + sparse).
func TestConfHoldingsCoverEverythingStored(t *testing.T) {
	prop := func(seed int64, present []bool) bool {
		if len(present) > 64 {
			present = present[:64]
		}
		c := newTestConf()
		stored := make(map[uint64]bool)
		for i, p := range present {
			if p {
				lseq := uint64(i + 1)
				c.storeData(dm("b", lseq, Agreed))
				stored[lseq] = true
			}
		}
		h := c.holdings()
		// Everything reported held must be stored, and vice versa.
		reported := make(map[uint64]bool)
		for l := uint64(1); l <= h.DataCut["b"]; l++ {
			reported[l] = true
		}
		for _, l := range h.DataSparse["b"] {
			reported[l] = true
		}
		if len(reported) != len(stored) {
			return false
		}
		for l := range stored {
			if !reported[l] {
				return false
			}
		}
		_ = seed
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConfDeliveryOrderInvariant: regardless of arrival interleaving of
// data and order messages, delivery happens strictly in gseq order.
func TestConfDeliveryOrderInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newTestConf()
		c.stableCut = 100 // stability not under test here
		type item struct {
			data  *dataMsg
			order orderEntry
		}
		var items []item
		g := uint64(0)
		for _, s := range []string{"a", "b"} {
			for l := uint64(1); l <= 5; l++ {
				g++
				items = append(items, item{
					data:  dm(s, l, Safe),
					order: orderEntry{GSeq: g, Sender: types.ServerID(s), LSeq: l},
				})
			}
		}
		// Random arrival order of 2x events (data + order per item).
		var events []func()
		for _, it := range items {
			it := it
			events = append(events,
				func() { c.storeData(it.data) },
				func() { c.storeOrder([]orderEntry{it.order}) })
		}
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		var delivered []uint64
		for _, ev := range events {
			ev()
			for {
				d := c.nextDeliverable()
				if d == nil {
					break
				}
				delivered = append(delivered, c.delivered+1)
				c.markDelivered()
			}
		}
		if len(delivered) != len(items) {
			return false
		}
		for i, g := range delivered {
			if g != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
