package evs

import (
	"testing"

	"evsdb/internal/types"
)

// CodecAllocsPerOp measures allocations per encode and per decode of a
// representative 200-byte data frame. cmd/evsbench records these in its
// JSON output so codec regressions show up in the perf trajectory; the
// encode side uses the pooled path the node's send path uses.
func CodecAllocsPerOp() (encode, decode float64) {
	m := wireMsg{Kind: kindData, Data: &dataMsg{
		Conf:    types.ConfID{Counter: 7, Proposer: "s03"},
		Sender:  "s11",
		LSeq:    42,
		Service: Safe,
		Payload: make([]byte, 200),
	}}
	frame := encodeWire(m)
	encode = testing.AllocsPerRun(200, func() {
		encodePooled(m, func([]byte) {})
	})
	decode = testing.AllocsPerRun(200, func() {
		if _, err := decodeWire(frame); err != nil {
			panic(err)
		}
	})
	return encode, decode
}
