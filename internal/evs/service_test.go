package evs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"evsdb/internal/types"
)

// TestFifoServiceDeliversWithoutOrdering checks the Fifo service level:
// per-sender FIFO, no global ordering round required.
func TestFifoServiceDeliversWithoutOrdering(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	const msgs = 50
	for i := 0; i < msgs; i++ {
		_ = h.nodes[all[1]].Multicast([]byte(fmt.Sprintf("f%d", i)), Fifo)
	}
	waitFor(t, 10*time.Second, "fifo deliveries", func() bool {
		return len(deliveries(h.events(all[2]))) >= msgs
	})
	got := deliveries(h.events(all[2]))
	for i := 0; i < msgs; i++ {
		if got[i] != fmt.Sprintf("f%d", i) {
			t.Fatalf("fifo order violated at %d: %q", i, got[i])
		}
	}
}

// TestMixedServiceLevels interleaves Fifo, Agreed and Safe traffic from
// one sender; the ordered (Agreed+Safe) sub-stream must stay totally
// ordered at every node.
func TestMixedServiceLevels(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	services := []ServiceLevel{Fifo, Agreed, Safe}
	const rounds = 30
	for i := 0; i < rounds; i++ {
		svc := services[i%3]
		_ = h.nodes[all[0]].Multicast([]byte(fmt.Sprintf("%v-%d", svc, i)), svc)
	}
	waitFor(t, 10*time.Second, "mixed deliveries", func() bool {
		for _, id := range all {
			if len(deliveries(h.events(id))) < rounds {
				return false
			}
		}
		return true
	})
	// Extract the ordered sub-stream at each node; all must match.
	ordered := func(id types.ServerID) []string {
		var out []string
		for _, ev := range h.events(id) {
			d, ok := ev.(Delivery)
			if !ok || d.Service == Fifo {
				continue
			}
			out = append(out, string(d.Payload))
		}
		return out
	}
	ref := ordered(all[0])
	for _, id := range all[1:] {
		got := ordered(id)
		if len(got) != len(ref) {
			t.Fatalf("%s ordered-stream length %d vs %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("ordered stream differs at %d: %q vs %q", i, ref[i], got[i])
			}
		}
	}
}

// TestCascadedPartitions applies several rapid connectivity changes under
// traffic; the survivors must converge and keep total order.
func TestCascadedPartitions(t *testing.T) {
	h := newHarness(t, 5)
	var all []types.ServerID
	for i := 0; i < 5; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range all {
		wg.Add(1)
		go func(id types.ServerID) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.nodes[id].Multicast([]byte(fmt.Sprintf("%s#%d", id, i)), Safe)
				time.Sleep(500 * time.Microsecond)
			}
		}(id)
	}
	// Rapid cascade: split, split differently, isolate, heal.
	h.net.Partition(all[:3], all[3:])
	time.Sleep(5 * time.Millisecond)
	h.net.Partition(all[:2], all[2:4], all[4:])
	time.Sleep(5 * time.Millisecond)
	h.net.Partition([]types.ServerID{all[0]}, all[1:])
	time.Sleep(5 * time.Millisecond)
	h.net.Heal()
	close(stop)
	wg.Wait()

	h.waitView(all, all)

	// Post-heal traffic must deliver everywhere in one order.
	marker := "post-cascade-marker"
	_ = h.nodes[all[2]].Multicast([]byte(marker), Safe)
	waitFor(t, 10*time.Second, "marker delivery", func() bool {
		for _, id := range all {
			if !contains(deliveries(h.events(id)), marker) {
				return false
			}
		}
		return true
	})
}

// TestStabilityGC keeps a configuration running long enough for the
// garbage collector to discard stable delivered payloads, then forces a
// flush (partition) to prove correctness is unaffected.
func TestStabilityGC(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	const msgs = 200
	for i := 0; i < msgs; i++ {
		_ = h.nodes[all[i%3]].Multicast([]byte(fmt.Sprintf("m%d", i)), Safe)
	}
	waitFor(t, 15*time.Second, "bulk deliveries", func() bool {
		for _, id := range all {
			if len(deliveries(h.events(id))) < msgs {
				return false
			}
		}
		return true
	})
	// Give ticks a moment to advance stability and GC, then flush.
	time.Sleep(20 * time.Millisecond)
	h.net.Partition(all[:2], all[2:])
	h.waitView(all[:2], all[:2])

	_ = h.nodes[all[0]].Multicast([]byte("after-gc"), Safe)
	waitFor(t, 5*time.Second, "post-gc delivery", func() bool {
		return contains(deliveries(h.events(all[1])), "after-gc")
	})
}

// TestNoDuplicateDeliveries: across a partition/heal cycle no message may
// be delivered twice at any node.
func TestNoDuplicateDeliveries(t *testing.T) {
	h := newHarness(t, 4)
	var all []types.ServerID
	for i := 0; i < 4; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)

	for i := 0; i < 40; i++ {
		_ = h.nodes[all[i%4]].Multicast([]byte(fmt.Sprintf("u%d", i)), Safe)
	}
	time.Sleep(10 * time.Millisecond)
	h.net.Partition(all[:2], all[2:])
	time.Sleep(20 * time.Millisecond)
	h.net.Heal()
	h.waitView(all, all)
	time.Sleep(50 * time.Millisecond)

	for _, id := range all {
		seen := make(map[string]int)
		for _, p := range deliveries(h.events(id)) {
			seen[p]++
		}
		for payload, count := range seen {
			if count > 1 {
				t.Fatalf("%s delivered %q %d times", id, payload, count)
			}
		}
	}
}
