package evs

import (
	"sort"

	"evsdb/internal/types"
)

// confState holds all protocol state scoped to one installed regular
// configuration: per-sender data streams, the sequencer's global order,
// cumulative acknowledgments and the delivery/stability cursors.
//
// Within a configuration the member set is fixed; streams reset on every
// installation, so sequence numbers are small and dense.
type confState struct {
	id        types.ConfID
	members   []types.ServerID
	sequencer types.ServerID

	// Per-sender data streams.
	data    map[types.ServerID]map[uint64]*dataMsg // held payloads by lseq
	dataCut map[types.ServerID]uint64              // contiguous prefix held
	dataMax map[types.ServerID]uint64              // highest lseq seen

	// Global order (assigned by the sequencer).
	orders   map[uint64]orderEntry
	orderCut uint64 // contiguous prefix of order entries held
	orderMax uint64 // highest gseq seen

	// Sequencer-only state.
	nextGSeq     uint64
	toOrder      map[types.ServerID]uint64 // next lseq to order per sender
	pendingOrder []orderEntry              // batch awaiting multicast

	// Delivery and stability. Acks flow (unicast) to the sequencer, which
	// aggregates them and multicasts stability announcements; every node
	// tracks the announced bound in stableCut.
	delivered   uint64                    // ordered prefix delivered to the app
	fifoDeliv   map[types.ServerID]uint64 // per-sender FIFO delivery cursor
	holdCut     uint64                    // prefix with order entry + payload held
	acks        map[types.ServerID]uint64 // sequencer only: cumulative acks
	stableCut   uint64                    // announced stability bound
	lastAckSent uint64
	gcCut       uint64 // payloads <= gcCut discarded (stable + delivered)

	// Sending.
	nextLSeq uint64
}

func newConfState(id types.ConfID, members []types.ServerID) *confState {
	ms := append([]types.ServerID(nil), members...)
	types.SortServerIDs(ms)
	c := &confState{
		id:        id,
		members:   ms,
		sequencer: ms[0],
		data:      make(map[types.ServerID]map[uint64]*dataMsg, len(ms)),
		dataCut:   make(map[types.ServerID]uint64, len(ms)),
		dataMax:   make(map[types.ServerID]uint64, len(ms)),
		orders:    make(map[uint64]orderEntry),
		toOrder:   make(map[types.ServerID]uint64, len(ms)),
		acks:      make(map[types.ServerID]uint64, len(ms)),
		fifoDeliv: make(map[types.ServerID]uint64, len(ms)),
	}
	for _, m := range ms {
		c.data[m] = make(map[uint64]*dataMsg)
		c.toOrder[m] = 1
	}
	return c
}

// storeData records a data message (live or retransmitted). It returns
// false if the message is a duplicate or from a non-member.
func (c *confState) storeData(d *dataMsg) bool {
	stream, ok := c.data[d.Sender]
	if !ok {
		return false
	}
	if d.LSeq <= c.dataCut[d.Sender] {
		return false // already covered by the contiguous prefix
	}
	if _, dup := stream[d.LSeq]; dup {
		return false
	}
	stream[d.LSeq] = d
	if d.LSeq > c.dataMax[d.Sender] {
		c.dataMax[d.Sender] = d.LSeq
	}
	// Advance the contiguous prefix.
	for {
		next := c.dataCut[d.Sender] + 1
		if _, held := stream[next]; !held {
			break
		}
		c.dataCut[d.Sender] = next
	}
	return true
}

// storeOrder records order entries (live or retransmitted).
func (c *confState) storeOrder(entries []orderEntry) {
	for _, e := range entries {
		if e.GSeq <= c.gcCut {
			continue
		}
		if _, dup := c.orders[e.GSeq]; dup {
			continue
		}
		c.orders[e.GSeq] = e
		if e.GSeq > c.orderMax {
			c.orderMax = e.GSeq
		}
		// An order entry proves the referenced data exists; expose it to
		// gap detection even if the data message itself was lost.
		if e.LSeq > c.dataMax[e.Sender] {
			c.dataMax[e.Sender] = e.LSeq
		}
	}
	for {
		if _, held := c.orders[c.orderCut+1]; !held {
			break
		}
		c.orderCut++
	}
}

// sequence runs the sequencer's assignment loop for sender s: every
// contiguous, not-yet-ordered data message gets the next global sequence
// number. Entries accumulate in pendingOrder for batched multicast.
func (c *confState) sequence(s types.ServerID) {
	for {
		next := c.toOrder[s]
		d, held := c.data[s][next]
		if !held {
			return
		}
		if d.Service == Fifo {
			// FIFO messages bypass global ordering entirely.
			c.toOrder[s] = next + 1
			continue
		}
		c.nextGSeq++
		c.pendingOrder = append(c.pendingOrder, orderEntry{
			GSeq:   c.nextGSeq,
			Sender: s,
			LSeq:   next,
		})
		c.toOrder[s] = next + 1
	}
}

// advanceHold moves holdCut forward: the largest prefix of global
// sequence numbers for which both the order entry and the data payload
// are held. holdCut is what the node acknowledges.
func (c *confState) advanceHold() {
	for {
		e, ok := c.orders[c.holdCut+1]
		if !ok {
			return
		}
		if _, held := c.data[e.Sender][e.LSeq]; !held {
			return
		}
		c.holdCut++
	}
}

// stable returns the highest global sequence number known held by every
// member (SAFE deliverability bound), as announced by the sequencer.
func (c *confState) stable() uint64 { return c.stableCut }

// ackMin computes, at the sequencer, the stability bound from collected
// acks (its own contribution is holdCut).
func (c *confState) ackMin() uint64 {
	s := c.holdCut
	for _, m := range c.members {
		if m == c.sequencer {
			continue
		}
		if v := c.acks[m]; v < s {
			s = v
		}
	}
	return s
}

// nextFifo returns FIFO-service messages from s that became deliverable
// (the sender's stream is contiguous through them), advancing the cursor.
func (c *confState) nextFifo(s types.ServerID) []*dataMsg {
	var out []*dataMsg
	for c.fifoDeliv[s] < c.dataCut[s] {
		l := c.fifoDeliv[s] + 1
		if d, held := c.data[s][l]; held && d.Service == Fifo {
			out = append(out, d)
		}
		c.fifoDeliv[s] = l
	}
	return out
}

// nextDeliverable returns the next message to deliver in global order, or
// nil if the head of the queue is not yet deliverable. Safe-service
// messages additionally wait for stability.
func (c *confState) nextDeliverable() *dataMsg {
	g := c.delivered + 1
	e, ok := c.orders[g]
	if !ok {
		return nil
	}
	d, held := c.data[e.Sender][e.LSeq]
	if !held {
		return nil
	}
	if d.Service == Safe && g > c.stable() {
		return nil
	}
	return d
}

// markDelivered advances the delivery cursor past the current head.
func (c *confState) markDelivered() { c.delivered++ }

// gc discards payloads and order entries that are both delivered and
// stable: every member holds them, so no flush will ever need to
// retransmit them. Logical cuts (dataCut, orderCut) are preserved.
func (c *confState) gc() {
	limit := c.stable()
	if c.delivered < limit {
		limit = c.delivered
	}
	for g := c.gcCut + 1; g <= limit; g++ {
		if e, ok := c.orders[g]; ok {
			delete(c.data[e.Sender], e.LSeq)
			delete(c.orders, g)
		}
	}
	if limit > c.gcCut {
		c.gcCut = limit
	}
}

// holdings summarizes what this node holds, for flush exchange.
func (c *confState) holdings() holdings {
	h := holdings{
		DataCut:  make(map[types.ServerID]uint64, len(c.members)),
		OrderCut: c.orderCut,
	}
	for _, m := range c.members {
		h.DataCut[m] = c.dataCut[m]
		var sparse []uint64
		for lseq := range c.data[m] {
			if lseq > c.dataCut[m] {
				sparse = append(sparse, lseq)
			}
		}
		if len(sparse) > 0 {
			sort.Slice(sparse, func(i, j int) bool { return sparse[i] < sparse[j] })
			h.DataSparse = ensureSparse(h.DataSparse)
			h.DataSparse[m] = sparse
		}
	}
	for g := c.orderCut + 1; g <= c.orderMax; g++ {
		if e, ok := c.orders[g]; ok {
			h.OrderSparse = append(h.OrderSparse, e)
		}
	}
	sort.Slice(h.OrderSparse, func(i, j int) bool {
		return h.OrderSparse[i].GSeq < h.OrderSparse[j].GSeq
	})
	return h
}

func ensureSparse(m map[types.ServerID][]uint64) map[types.ServerID][]uint64 {
	if m == nil {
		return make(map[types.ServerID][]uint64)
	}
	return m
}

// dataGaps returns, per sender, the missing local sequence numbers below
// the highest seen, for NACK generation. Capped to keep NACKs small.
func (c *confState) dataGaps(cap int) map[types.ServerID][]uint64 {
	var out map[types.ServerID][]uint64
	for _, m := range c.members {
		var miss []uint64
		for lseq := c.dataCut[m] + 1; lseq <= c.dataMax[m] && len(miss) < cap; lseq++ {
			if _, held := c.data[m][lseq]; !held {
				miss = append(miss, lseq)
			}
		}
		if len(miss) > 0 {
			if out == nil {
				out = make(map[types.ServerID][]uint64)
			}
			out[m] = miss
		}
	}
	return out
}

// orderGaps returns missing global sequence numbers below the highest
// seen, for NACK generation.
func (c *confState) orderGaps(cap int) []uint64 {
	var miss []uint64
	for g := c.orderCut + 1; g <= c.orderMax && len(miss) < cap; g++ {
		if _, held := c.orders[g]; !held {
			miss = append(miss, g)
		}
	}
	return miss
}

// unorderedData returns held data messages that have no order entry, in
// the deterministic (sender, lseq) order used for transitional delivery.
func (c *confState) unorderedData() []*dataMsg {
	ordered := make(map[types.ServerID]map[uint64]bool)
	for _, e := range c.orders {
		if ordered[e.Sender] == nil {
			ordered[e.Sender] = make(map[uint64]bool)
		}
		ordered[e.Sender][e.LSeq] = true
	}
	// Everything at or below the sequencer cut for each sender may also be
	// ordered but GC'd; approximate by excluding gseq-covered pairs plus
	// anything <= gcCut coverage via the orders map only. GC only removes
	// messages that were delivered everywhere, which are never candidates
	// for transitional delivery.
	var out []*dataMsg
	for _, m := range c.members {
		for lseq, d := range c.data[m] {
			if ordered[m] != nil && ordered[m][lseq] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sender != out[j].Sender {
			return out[i].Sender < out[j].Sender
		}
		return out[i].LSeq < out[j].LSeq
	})
	return out
}
