// Package evs implements an Extended Virtual Synchrony (EVS) group
// communication layer (Moser, Amir, Melliar-Smith, Agarwal, ICDCS 1994)
// on top of a best-effort datagram transport.
//
// It provides the exact service the replication engine of Amir & Tutu
// (CNDS-2001-6) requires:
//
//   - reliable multicast within a membership view (configuration), with
//     Agreed (total order) and Safe (total order + all-received) delivery;
//   - a membership service delivering regular configurations, with the
//     EVS refinement of a *transitional* configuration between them:
//     messages that cannot meet the Safe guarantee are delivered after the
//     transitional configuration notification and before the next regular
//     configuration;
//   - virtual synchrony: processes moving together between configurations
//     (the transitional set) deliver the same messages in the same order.
//
// The implementation uses a per-configuration sequencer (lowest member
// id) for total order, cumulative acknowledgments for stability (Safe
// delivery), NACK-based loss recovery, a symmetric membership-agreement
// protocol, and a flush protocol that equalizes the transitional set's
// message holdings before the new configuration installs.
package evs

import (
	"fmt"
	"sync"
	"time"

	"evsdb/internal/obs"
	"evsdb/internal/queue"
	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// ServiceLevel selects the delivery guarantee for a multicast.
type ServiceLevel int

const (
	// Fifo delivers reliably in per-sender FIFO order, without global
	// ordering: a message is delivered as soon as the sender's stream is
	// contiguous through it. Used for end-to-end acknowledgments
	// (the COReL baseline).
	Fifo ServiceLevel = iota + 1
	// Agreed delivers in total order as soon as the order is known.
	Agreed
	// Safe delivers in total order once every member of the current
	// configuration is known to hold the message. Messages that cannot
	// meet this before a membership change are delivered in the
	// transitional configuration instead (the § 4.1 trichotomy).
	Safe
)

func (s ServiceLevel) String() string {
	switch s {
	case Fifo:
		return "fifo"
	case Agreed:
		return "agreed"
	case Safe:
		return "safe"
	default:
		return "ServiceLevel(?)"
	}
}

// Event is a delivery from the group communication layer: either a
// Delivery or a ViewChange.
type Event interface{ isEvent() }

// Delivery is an application message delivered in total order.
type Delivery struct {
	Conf    types.ConfID
	Sender  types.ServerID
	Payload []byte
	Service ServiceLevel
	// InTrans marks delivery inside a transitional configuration: the
	// message was received but its Safe guarantee could not be confirmed
	// before the membership changed (§ 4.1 case 2).
	InTrans bool
}

func (Delivery) isEvent() {}

// ViewChange announces a configuration: transitional (reduced membership,
// no new messages will be sent in it) or regular.
type ViewChange struct {
	Config types.Configuration
}

func (ViewChange) isEvent() {}

type phase int

const (
	phaseRegular phase = iota + 1
	phaseGather
	phaseFlush
)

// Config tunes protocol timers.
type Config struct {
	// Tick drives acknowledgments, NACK scans and membership
	// retransmissions. Default 1ms.
	Tick time.Duration
	// NackBatch caps the gaps reported per NACK. Default 64.
	NackBatch int
	// ResendTicks spaces periodic membership/ack retransmissions (loss
	// recovery only — protocol progress is event-driven). Default 16.
	ResendTicks uint64
	// Obs is the observability bundle (metrics + traces) the node
	// instruments. Nil means a fresh private bundle.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.NackBatch <= 0 {
		c.NackBatch = 64
	}
	if c.ResendTicks == 0 {
		c.ResendTicks = 16
	}
	if c.Obs == nil {
		c.Obs = obs.NewObserver()
	}
	return c
}

// Option configures a Node.
type Option func(*Config)

// WithTick overrides the protocol tick interval.
func WithTick(d time.Duration) Option {
	return func(c *Config) { c.Tick = d }
}

type outData struct {
	payload []byte
	service ServiceLevel
}

// Node is one group-communication endpoint. Create with NewNode; all
// protocol state is owned by a single event-loop goroutine.
type Node struct {
	cfg Config
	tr  transport.Node
	id  types.ServerID

	events   *queue.Unbounded[Event]
	eventsCh chan Event
	sendQ    *queue.Unbounded[outData]
	wake     chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
	pumpDone chan struct{}

	// dbg holds a human-readable snapshot of the protocol state, updated
	// by the loop; Debug reads it without touching loop-owned state.
	dbg atomicString

	// Everything below is owned by the run loop.
	tickCount   uint64
	rxPropose   uint64   // propose datagrams received (pre-filter), debug only
	rxFlush     uint64   // flush-state datagrams received (pre-filter), debug only
	rxDone      uint64   // flush-done datagrams received (pre-filter), debug only
	txDone      uint64   // flush-done datagrams multicast, debug only
	rejDone     string   // last rejected flush-done (conf@from), debug only
	trace       []string // recent membership transitions, debug only
	phase       phase
	conf        *confState
	oldConfID   types.ConfID // id of last installed regular conf (zero before first)
	maxCounter  uint64
	proposals   map[types.ServerID]proposeMsg
	myProposal  []types.ServerID
	flush       *flushPhase
	transDone   bool // transitional config + messages already delivered for conf
	pendingSend []outData
	om          *evsObs
	gatherStart time.Time // when the in-progress view change left phaseRegular
}

type flushPhase struct {
	newConf  types.ConfID
	members  []types.ServerID
	states   map[types.ServerID]flushStateMsg
	doneFrom map[types.ServerID]bool
	doneSent bool
}

// NewNode attaches an EVS endpoint to the transport and starts its event
// loop. The first event delivered is the initial regular configuration.
func NewNode(tr transport.Node, opts ...Option) *Node {
	cfg := Config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := &Node{
		cfg:      cfg.withDefaults(),
		tr:       tr,
		id:       tr.ID(),
		events:   queue.NewUnbounded[Event](),
		eventsCh: make(chan Event),
		sendQ:    queue.NewUnbounded[outData](),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	n.om = newEVSObs(n.cfg.Obs.Reg)
	go n.pumpEvents()
	go n.run()
	return n
}

// ID returns the node's server identifier.
func (n *Node) ID() types.ServerID { return n.id }

// atomicString is a tiny typed wrapper over sync-safe string storage.
type atomicString struct {
	mu sync.Mutex
	s  string
}

func (a *atomicString) store(s string) {
	a.mu.Lock()
	a.s = s
	a.mu.Unlock()
}

func (a *atomicString) load() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s
}

// Debug returns a snapshot of the node's protocol state for diagnostics.
func (n *Node) Debug() string { return n.dbg.load() }

// traceEvent records a membership transition for post-mortem dumps.
func (n *Node) traceEvent(s string) {
	n.trace = append(n.trace, fmt.Sprintf("t%d:%s", n.tickCount, s))
	if len(n.trace) > 12 {
		n.trace = n.trace[len(n.trace)-12:]
	}
}

// snapshotDebug refreshes the debug snapshot (called from the loop).
func (n *Node) snapshotDebug() {
	var confID types.ConfID
	var delivered, holdCut, stable, orderMax uint64
	if n.conf != nil {
		confID = n.conf.id
		delivered = n.conf.delivered
		holdCut = n.conf.holdCut
		stable = n.conf.stable()
		orderMax = n.conf.orderMax
	}
	ph := "regular"
	extra := ""
	switch n.phase {
	case phaseGather:
		ph = "gather"
		extra = fmt.Sprintf(" proposal=%v got=%d", n.myProposal, len(n.proposals))
	case phaseFlush:
		ph = "flush"
		extra = fmt.Sprintf(" new=%v members=%d states=%d done=%d doneSent=%v transDone=%v",
			n.flush.newConf, len(n.flush.members), len(n.flush.states),
			len(n.flush.doneFrom), n.flush.doneSent, n.transDone)
	}
	n.dbg.store(fmt.Sprintf("phase=%s ticks=%d rx=%d/%d/%d tx=%d rej=%q maxC=%d conf=%v deliv=%d hold=%d stable=%d orderMax=%d%s trace=%v",
		ph, n.tickCount, n.rxPropose, n.rxFlush, n.rxDone, n.txDone, n.rejDone, n.maxCounter,
		confID, delivered, holdCut, stable, orderMax, extra, n.trace))
}

// Events returns the ordered stream of deliveries and view changes. The
// channel closes when the node stops.
func (n *Node) Events() <-chan Event { return n.eventsCh }

// Multicast sends payload to the current configuration with the given
// service level. If a membership change is in progress the message is
// buffered and sent in the next regular configuration, preserving the
// sender's FIFO order.
func (n *Node) Multicast(payload []byte, service ServiceLevel) error {
	select {
	case <-n.stop:
		return transport.ErrClosed
	default:
	}
	n.sendQ.Push(outData{payload: append([]byte(nil), payload...), service: service})
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return nil
}

// Close stops the node and the underlying transport endpoint.
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		close(n.stop)
		_ = n.tr.Close()
	})
	<-n.loopDone
	<-n.pumpDone
}

// pumpEvents moves queued events to the outward channel without ever
// blocking the protocol loop.
func (n *Node) pumpEvents() {
	defer close(n.pumpDone)
	defer close(n.eventsCh)
	for {
		ev, ok := n.events.Pop()
		if !ok {
			return
		}
		select {
		case n.eventsCh <- ev:
		case <-n.stop:
			// Drain remaining events to nowhere so Close never blocks.
			continue
		}
	}
}

func (n *Node) emit(ev Event) { n.events.Push(ev) }

// run is the protocol event loop.
func (n *Node) run() {
	defer close(n.loopDone)
	defer n.events.Close()

	ticker := time.NewTicker(n.cfg.Tick)
	defer ticker.Stop()

	n.enterGather() // bootstrap: agree on the first configuration

	recv := n.tr.Recv()
	for {
		select {
		case msg, ok := <-recv:
			if !ok {
				return // endpoint crashed or closed
			}
			n.handleWire(msg)
			// Drain whatever is immediately available so ordering,
			// acknowledgments and delivery batch naturally under load.
			for drained := 0; drained < 256; drained++ {
				select {
				case more, ok2 := <-recv:
					if !ok2 {
						return
					}
					n.handleWire(more)
				default:
					drained = 256
				}
			}
		case <-n.tr.Changes():
			n.checkReachability()
		case <-n.wake:
			n.drainSends()
		case <-ticker.C:
			n.tick()
		case <-n.stop:
			return
		}
		n.progress()
	}
}

// drainSends moves queued application sends into the network (regular
// phase) or the pending buffer (membership change in progress).
func (n *Node) drainSends() {
	for n.sendQ.Len() > 0 {
		od, ok := n.sendQ.Pop()
		if !ok {
			return
		}
		if n.phase == phaseRegular && n.conf != nil {
			n.sendData(od)
		} else {
			n.pendingSend = append(n.pendingSend, od)
		}
	}
}

func (n *Node) sendData(od outData) {
	c := n.conf
	c.nextLSeq++
	d := dataMsg{
		Conf:    c.id,
		Sender:  n.id,
		LSeq:    c.nextLSeq,
		Service: od.service,
		Payload: od.payload,
	}
	n.multicast(c.members, wireMsg{Kind: kindData, Data: &d})
}

func (n *Node) multicast(to []types.ServerID, m wireMsg) {
	encodePooled(m, func(buf []byte) { _ = n.tr.Multicast(to, buf) })
}

func (n *Node) unicast(to types.ServerID, m wireMsg) {
	encodePooled(m, func(buf []byte) { _ = n.tr.Send(to, buf) })
}

// reachable returns the failure detector's current estimate, always
// including self, in canonical order.
func (n *Node) reachable() []types.ServerID {
	r := n.tr.Reachable()
	for _, id := range r {
		if id == n.id {
			return r
		}
	}
	return append(r, n.id)
}

// checkReachability reacts to failure-detector changes per phase.
func (n *Node) checkReachability() {
	cur := n.reachable()
	switch n.phase {
	case phaseRegular:
		if n.conf != nil && !equalIDs(cur, n.conf.members) {
			n.enterGather()
		}
	case phaseGather:
		if !equalIDs(cur, n.myProposal) {
			n.propose(cur)
		}
	case phaseFlush:
		if !equalIDs(cur, n.flush.members) {
			n.enterGather()
		}
	}
}

func equalIDs(a, b []types.ServerID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
