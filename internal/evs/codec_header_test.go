package evs

import (
	"strings"
	"testing"

	"evsdb/internal/types"
)

// The framed wire format opens with [magic][version][kind]; these tests
// pin the header bytes and the failure modes a mixed-version or foreign
// peer must hit loudly.

func TestCodecFrameHeader(t *testing.T) {
	frame := encodeWire(wireMsg{Kind: kindAck, Ack: &ackMsg{
		Conf: types.ConfID{Counter: 1, Proposer: "s00"}, UpTo: 5,
	}})
	if len(frame) < 3 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	if frame[0] != wireMagic {
		t.Fatalf("frame[0] = %#x, want magic %#x", frame[0], wireMagic)
	}
	if frame[1] != wireVersion {
		t.Fatalf("frame[1] = %d, want version %d", frame[1], wireVersion)
	}
	if frame[2] != byte(kindAck) {
		t.Fatalf("frame[2] = %d, want kind %d", frame[2], kindAck)
	}
}

func TestCodecRejectsWrongMagic(t *testing.T) {
	frame := encodeWire(wireMsg{Kind: kindFlushDone, FlushDone: &flushDoneMsg{}})
	frame[0] ^= 0xFF
	if _, err := decodeWire(frame); err == nil {
		t.Fatal("decode accepted a frame with the wrong magic byte")
	}
}

func TestCodecVersionMismatchIsLoud(t *testing.T) {
	frame := encodeWire(wireMsg{Kind: kindFlushDone, FlushDone: &flushDoneMsg{}})
	frame[1] = wireVersion + 1
	_, err := decodeWire(frame)
	if err == nil {
		t.Fatal("decode accepted a future-version frame")
	}
	if !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("version error not loud enough: %v", err)
	}
}

func TestCodecRejectsUnknownKind(t *testing.T) {
	frame := []byte{wireMagic, wireVersion, 0xFE}
	if _, err := decodeWire(frame); err == nil {
		t.Fatal("decode accepted an unknown message kind")
	}
}
