package evs

import (
	"fmt"

	"evsdb/internal/types"
)

// msgKind discriminates the wire messages exchanged by EVS nodes.
type msgKind int

const (
	kindData msgKind = iota + 1
	kindOrder
	kindAck
	kindStable
	kindNack
	kindPropose
	kindFlushState
	kindRetransData
	kindRetransOrder
	kindFlushDone
)

func (k msgKind) String() string {
	switch k {
	case kindData:
		return "data"
	case kindOrder:
		return "order"
	case kindAck:
		return "ack"
	case kindNack:
		return "nack"
	case kindPropose:
		return "propose"
	case kindFlushState:
		return "flushState"
	case kindRetransData:
		return "retransData"
	case kindRetransOrder:
		return "retransOrder"
	case kindFlushDone:
		return "flushDone"
	default:
		return fmt.Sprintf("msgKind(%d)", int(k))
	}
}

// dataMsg carries one application payload on the sender's per-configuration
// FIFO stream.
type dataMsg struct {
	Conf    types.ConfID   `json:"conf"`
	Sender  types.ServerID `json:"sender"`
	LSeq    uint64         `json:"lseq"` // 1-based per-sender local sequence
	Service ServiceLevel   `json:"service"`
	Payload []byte         `json:"payload"`
}

// orderEntry assigns a global sequence number to one data message.
type orderEntry struct {
	GSeq   uint64         `json:"gseq"`
	Sender types.ServerID `json:"sender"`
	LSeq   uint64         `json:"lseq"`
}

// orderMsg is the sequencer's batched global-order assignment.
type orderMsg struct {
	Conf    types.ConfID `json:"conf"`
	Entries []orderEntry `json:"entries"`
}

// ackMsg is a cumulative acknowledgment sent (unicast) to the sequencer:
// the sender holds the order entry and data payload for every global
// sequence number <= UpTo. The sequencer aggregates acks into stability
// announcements, keeping acknowledgment traffic linear instead of
// quadratic. SentHigh advertises the sender's own data-stream high
// watermark so tail loss is detectable.
type ackMsg struct {
	Conf     types.ConfID `json:"conf"`
	UpTo     uint64       `json:"upTo"`
	SentHigh uint64       `json:"sentHigh"`
}

// stableMsg is the sequencer's stability announcement: every member holds
// every global sequence number <= UpTo (the SAFE-delivery bound). On the
// loss-recovery cadence it also carries every member's stream high
// watermark for tail-loss detection.
type stableMsg struct {
	Conf     types.ConfID              `json:"conf"`
	UpTo     uint64                    `json:"upTo"`
	SentHigh map[types.ServerID]uint64 `json:"sentHigh,omitempty"`
}

// nackMsg requests retransmission of specific local sequence numbers from
// a sender's data stream (Sender set), or of global order entries from
// the sequencer (Sender empty, GSeqs set).
type nackMsg struct {
	Conf   types.ConfID   `json:"conf"`
	Sender types.ServerID `json:"sender,omitempty"`
	LSeqs  []uint64       `json:"lseqs,omitempty"`
	GSeqs  []uint64       `json:"gseqs,omitempty"`
}

// proposeMsg is the membership-agreement announcement: "I believe the
// next configuration should contain exactly Members". Agreement is
// reached when every proposed member proposes an identical set.
type proposeMsg struct {
	Members    []types.ServerID `json:"members"`
	MaxCounter uint64           `json:"maxCounter"` // highest conf counter seen
}

// holdings summarizes everything a node holds from its previous regular
// configuration; exchanged during flush so the transitional set can
// equalize before delivering.
type holdings struct {
	// DataCut[s] is the contiguous prefix of s's data stream held.
	DataCut map[types.ServerID]uint64 `json:"dataCut"`
	// DataSparse[s] lists held local seqs beyond DataCut[s].
	DataSparse map[types.ServerID][]uint64 `json:"dataSparse,omitempty"`
	// OrderCut is the contiguous prefix of global order entries held.
	OrderCut uint64 `json:"orderCut"`
	// OrderSparse lists held order entries beyond OrderCut.
	OrderSparse []orderEntry `json:"orderSparse,omitempty"`
}

// flushStateMsg announces a node's flush status for a proposed new
// configuration. It is resent every tick until installation, with
// holdings updated as retransmissions arrive.
type flushStateMsg struct {
	NewConf types.ConfID     `json:"newConf"`
	Members []types.ServerID `json:"members"`
	OldConf types.ConfID     `json:"oldConf"`
	Hold    holdings         `json:"hold"`
	// StableCut is the highest global seq known stable (acked by every
	// member of OldConf) before the configuration change.
	StableCut uint64 `json:"stableCut"`
	// Synced is set once the node's holdings match the transitional
	// set's union; installation waits for everyone to sync.
	Synced bool `json:"synced"`
}

// retransDataMsg re-multicasts a missing data message during flush.
type retransDataMsg struct {
	NewConf types.ConfID `json:"newConf"`
	Data    dataMsg      `json:"data"`
}

// retransOrderMsg re-multicasts missing order entries during flush.
type retransOrderMsg struct {
	NewConf types.ConfID `json:"newConf"`
	OldConf types.ConfID `json:"oldConf"`
	Entries []orderEntry `json:"entries"`
}

// flushDoneMsg announces the sender has delivered its transitional
// configuration and is ready to install NewConf.
type flushDoneMsg struct {
	NewConf types.ConfID `json:"newConf"`
}

// wireMsg is the envelope for every datagram. Encoding and decoding live
// in codec.go (binary for hot-path kinds, JSON for membership kinds).
type wireMsg struct {
	Kind         msgKind          `json:"-"`
	Data         *dataMsg         `json:"data,omitempty"`
	Order        *orderMsg        `json:"order,omitempty"`
	Ack          *ackMsg          `json:"ack,omitempty"`
	Stable       *stableMsg       `json:"stable,omitempty"`
	Nack         *nackMsg         `json:"nack,omitempty"`
	Propose      *proposeMsg      `json:"propose,omitempty"`
	FlushState   *flushStateMsg   `json:"flushState,omitempty"`
	RetransData  *retransDataMsg  `json:"retransData,omitempty"`
	RetransOrder *retransOrderMsg `json:"retransOrder,omitempty"`
	FlushDone    *flushDoneMsg    `json:"flushDone,omitempty"`
}
