package evs

import (
	"fmt"
	"sort"
	"time"

	"evsdb/internal/obs"
	"evsdb/internal/types"
)

// enterGather starts (or restarts) membership agreement from the current
// failure-detector estimate. Gather is symmetric: every node announces
// the member set it believes in, and agreement is reached when every
// proposed member proposes the identical set.
func (n *Node) enterGather() {
	n.traceEvent(fmt.Sprintf("gather(%v)", n.reachable()))
	if n.phase == phaseRegular || n.gatherStart.IsZero() {
		// A re-gather from flush extends the same view change; only the
		// first departure from regular operation starts the clock.
		n.gatherStart = time.Now()
	}
	n.om.gathers.Inc()
	n.cfg.Obs.Trace.Record(obs.EvViewGather, n.maxCounter, uint64(len(n.reachable())), 0)
	n.phase = phaseGather
	n.flush = nil
	n.proposals = make(map[types.ServerID]proposeMsg)
	n.propose(n.reachable())
}

// propose records and multicasts this node's membership proposal.
func (n *Node) propose(members []types.ServerID) {
	ms := append([]types.ServerID(nil), members...)
	types.SortServerIDs(ms)
	n.myProposal = ms
	p := proposeMsg{Members: ms, MaxCounter: n.maxCounter}
	n.proposals[n.id] = p
	// Prune proposals from nodes outside the current candidate set.
	for id := range n.proposals {
		if !containsID(ms, id) {
			delete(n.proposals, id)
		}
	}
	n.multicast(ms, wireMsg{Kind: kindPropose, Propose: &p})
	n.checkAgreement()
}

func containsID(ids []types.ServerID, id types.ServerID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// handlePropose processes a membership announcement from a peer.
func (n *Node) handlePropose(from types.ServerID, p proposeMsg) {
	switch n.phase {
	case phaseRegular:
		// Distinguish two same-membership cases: a late duplicate from
		// the gather that installed the current configuration carries a
		// counter below ours (ignore it, or every install would trigger a
		// fresh round); a peer that re-entered gather after a transient
		// flap carries our counter or higher and needs us to participate
		// or it blocks forever.
		if n.conf != nil && equalIDs(p.Members, n.conf.members) &&
			p.MaxCounter < n.conf.id.Counter {
			return
		}
		n.enterGather()
		n.proposals[from] = p
		n.checkAgreement()
	case phaseGather:
		if _, seen := n.proposals[from]; !seen {
			// First contact from this peer: it may have entered gather
			// after our announcement went out. Re-announce once so
			// progress stays event-driven rather than timer-driven.
			mine := n.proposals[n.id]
			n.multicast(n.myProposal, wireMsg{Kind: kindPropose, Propose: &mine})
		}
		n.proposals[from] = p
		if !equalIDs(p.Members, n.myProposal) && containsID(p.Members, n.id) {
			// Fold in the peer's knowledge only via the failure
			// detector: re-read it, since proposals must converge to the
			// oracle's component.
			cur := n.reachable()
			if !equalIDs(cur, n.myProposal) {
				n.propose(cur)
				return
			}
		}
		n.checkAgreement()
	case phaseFlush:
		// Same distinction as above: proposals from the gather that led
		// to this flush carry counter < newConf's; a peer that restarted
		// gather after observing (or installing) this configuration
		// carries >= and requires a fresh round.
		if equalIDs(p.Members, n.flush.members) &&
			p.MaxCounter < n.flush.newConf.Counter {
			return // straggler still gathering toward the same view
		}
		n.enterGather()
		n.proposals[from] = p
		n.checkAgreement()
	}
}

// checkAgreement tests whether every proposed member proposes exactly the
// same set; on success the flush phase starts toward the new
// configuration id (max counter seen + 1, lowest member as tiebreak).
func (n *Node) checkAgreement() {
	if n.phase != phaseGather {
		return
	}
	maxCounter := n.maxCounter
	for _, m := range n.myProposal {
		p, ok := n.proposals[m]
		if !ok || !equalIDs(p.Members, n.myProposal) {
			return
		}
		if p.MaxCounter > maxCounter {
			maxCounter = p.MaxCounter
		}
	}
	n.maxCounter = maxCounter + 1
	newConf := types.ConfID{Counter: n.maxCounter, Proposer: n.myProposal[0]}
	n.enterFlush(newConf, n.myProposal)
}

// enterFlush begins the flush protocol toward newConf: exchange holdings
// within the transitional set, equalize, deliver the transitional
// configuration and its messages, then synchronize installation.
func (n *Node) enterFlush(newConf types.ConfID, members []types.ServerID) {
	n.traceEvent(fmt.Sprintf("flush(%v %v)", newConf, members))
	n.cfg.Obs.Trace.Record(obs.EvViewFlush, newConf.Counter, uint64(len(members)), 0)
	n.phase = phaseFlush
	n.flush = &flushPhase{
		newConf:  newConf,
		members:  append([]types.ServerID(nil), members...),
		states:   make(map[types.ServerID]flushStateMsg),
		doneFrom: make(map[types.ServerID]bool),
	}
	n.sendFlushState()
}

// sendFlushState multicasts this node's current flush state (holdings
// update included) to the prospective members.
func (n *Node) sendFlushState() {
	fs := flushStateMsg{
		NewConf: n.flush.newConf,
		Members: n.flush.members,
		OldConf: n.oldConfID,
	}
	if n.conf != nil {
		fs.Hold = n.conf.holdings()
		fs.StableCut = n.conf.stable()
	}
	n.flush.states[n.id] = fs
	n.multicast(n.flush.members, wireMsg{Kind: kindFlushState, FlushState: &fs})
}

// handleFlushState records a peer's flush state for the same attempt.
// First contact triggers an event-driven re-announcement of our own
// state; any update triggers a retransmission scan so holdings equalize
// without waiting for the periodic resend.
func (n *Node) handleFlushState(from types.ServerID, fs flushStateMsg) {
	if n.phase != phaseFlush || fs.NewConf != n.flush.newConf {
		return
	}
	_, seen := n.flush.states[from]
	n.flush.states[from] = fs
	if !seen && from != n.id {
		n.sendFlushState()
		if n.flush.doneSent {
			n.txDone++
			n.multicast(n.flush.members, wireMsg{Kind: kindFlushDone,
				FlushDone: &flushDoneMsg{NewConf: n.flush.newConf}})
		}
	}
	if t := n.transSet(); t != nil {
		u := n.computeUnion(t)
		n.retransmitLacking(t, u)
	}
}

// transSet returns the members of the flush attempt that come directly
// from this node's previous regular configuration (the EVS transitional
// membership), provided every member's state has arrived; otherwise nil.
func (n *Node) transSet() []types.ServerID {
	f := n.flush
	for _, m := range f.members {
		if _, ok := f.states[m]; !ok {
			return nil
		}
	}
	var t []types.ServerID
	for _, m := range f.members {
		if f.states[m].OldConf == n.oldConfID {
			t = append(t, m)
		}
	}
	return types.SortServerIDs(t)
}

// flushUnion merges the holdings reported by the transitional set.
type flushUnion struct {
	dataCut    map[types.ServerID]uint64
	dataSparse map[types.ServerID]map[uint64]bool
	orderCut   uint64
	orders     map[uint64]orderEntry
	orderMax   uint64
	maxStable  uint64
}

func (n *Node) computeUnion(t []types.ServerID) flushUnion {
	u := flushUnion{
		dataCut:    make(map[types.ServerID]uint64),
		dataSparse: make(map[types.ServerID]map[uint64]bool),
		orders:     make(map[uint64]orderEntry),
	}
	for _, m := range t {
		fs := n.flush.states[m]
		if fs.StableCut > u.maxStable {
			u.maxStable = fs.StableCut
		}
		if fs.Hold.OrderCut > u.orderCut {
			u.orderCut = fs.Hold.OrderCut
		}
		for _, e := range fs.Hold.OrderSparse {
			u.orders[e.GSeq] = e
			if e.GSeq > u.orderMax {
				u.orderMax = e.GSeq
			}
		}
		for s, cut := range fs.Hold.DataCut {
			if cut > u.dataCut[s] {
				u.dataCut[s] = cut
			}
		}
		for s, sparse := range fs.Hold.DataSparse {
			if u.dataSparse[s] == nil {
				u.dataSparse[s] = make(map[uint64]bool)
			}
			for _, lseq := range sparse {
				u.dataSparse[s][lseq] = true
			}
		}
	}
	if u.orderCut > u.orderMax {
		u.orderMax = u.orderCut
	}
	return u
}

// coversUnion reports whether the node's local holdings include every
// item in the union (so it may deliver its transitional messages).
func (n *Node) coversUnion(u flushUnion) bool {
	c := n.conf
	if c == nil {
		return true
	}
	if c.orderCut < u.orderCut {
		return false
	}
	for g, e := range u.orders {
		if g <= c.orderCut || g <= c.gcCut {
			continue
		}
		if _, held := c.orders[g]; !held {
			_ = e
			return false
		}
	}
	for s, cut := range u.dataCut {
		if c.dataCut[s] < cut {
			return false
		}
	}
	for s, sparse := range u.dataSparse {
		for lseq := range sparse {
			if lseq <= c.dataCut[s] {
				continue
			}
			if _, held := c.data[s][lseq]; !held {
				return false
			}
		}
	}
	return true
}

// retransmitLacking re-multicasts items this node holds that some member
// of the transitional set still lacks, if this node is the lowest-id
// holder (a deterministic choice that avoids duplicate storms).
func (n *Node) retransmitLacking(t []types.ServerID, u flushUnion) {
	if n.conf == nil {
		return
	}
	c := n.conf
	// Collect, per item, which members hold it and which lack it.
	type need struct {
		lackers bool
		holders []types.ServerID
	}
	// Nothing below every member's contiguous cut can be lacking; start
	// the scans there to keep flush work proportional to the tail.
	minOrderCut := u.orderCut
	minDataCut := make(map[types.ServerID]uint64, len(u.dataCut))
	for s, cut := range u.dataCut {
		minDataCut[s] = cut
	}
	for _, m := range t {
		fs := n.flush.states[m]
		if fs.Hold.OrderCut < minOrderCut {
			minOrderCut = fs.Hold.OrderCut
		}
		for s := range minDataCut {
			if fs.Hold.DataCut[s] < minDataCut[s] {
				minDataCut[s] = fs.Hold.DataCut[s]
			}
		}
	}
	// Order entries.
	for g := minOrderCut + 1; g <= u.orderMax; g++ {
		if _, inUnion := u.orders[g]; !inUnion && g > u.orderCut {
			continue
		}
		nd := need{}
		for _, m := range t {
			fs := n.flush.states[m]
			if holdsOrder(fs.Hold, g) {
				nd.holders = append(nd.holders, m)
			} else {
				nd.lackers = true
			}
		}
		if !nd.lackers || len(nd.holders) == 0 || nd.holders[0] != n.id {
			continue
		}
		e, held := c.orders[g]
		if !held {
			continue // below our contiguous cut but GC'd: all members held it
		}
		n.om.retransOrder.Inc()
		n.multicast(t, wireMsg{Kind: kindRetransOrder, RetransOrder: &retransOrderMsg{
			NewConf: n.flush.newConf,
			OldConf: n.oldConfID,
			Entries: []orderEntry{e},
		}})
	}
	// Data messages.
	for s, cut := range u.dataCut {
		limit := cut
		for lseq := range u.dataSparse[s] {
			if lseq > limit {
				limit = lseq
			}
		}
		for lseq := minDataCut[s] + 1; lseq <= limit; lseq++ {
			if lseq > cut && !u.dataSparse[s][lseq] {
				continue
			}
			nd := need{}
			for _, m := range t {
				fs := n.flush.states[m]
				if holdsData(fs.Hold, s, lseq) {
					nd.holders = append(nd.holders, m)
				} else {
					nd.lackers = true
				}
			}
			if !nd.lackers || len(nd.holders) == 0 || nd.holders[0] != n.id {
				continue
			}
			d, held := c.data[s][lseq]
			if !held {
				continue // GC'd: provably held everywhere
			}
			n.om.retransData.Inc()
			n.multicast(t, wireMsg{Kind: kindRetransData, RetransData: &retransDataMsg{
				NewConf: n.flush.newConf,
				Data:    *d,
			}})
		}
	}
}

func holdsOrder(h holdings, g uint64) bool {
	if g <= h.OrderCut {
		return true
	}
	for _, e := range h.OrderSparse {
		if e.GSeq == g {
			return true
		}
	}
	return false
}

func holdsData(h holdings, s types.ServerID, lseq uint64) bool {
	if lseq <= h.DataCut[s] {
		return true
	}
	for _, x := range h.DataSparse[s] {
		if x == lseq {
			return true
		}
	}
	return false
}

// progressFlush drives the flush phase: once all states are in and local
// holdings cover the transitional union, deliver the remaining old-
// configuration messages and the transitional configuration, then
// synchronize installation via flush-done messages.
func (n *Node) progressFlush() {
	f := n.flush
	t := n.transSet()
	if t == nil {
		return
	}
	u := n.computeUnion(t)
	if !n.transDone {
		if !n.coversUnion(u) {
			return
		}
		n.deliverTransitional(t, u)
		n.transDone = true
	}
	if !f.doneSent {
		f.doneSent = true
		f.doneFrom[n.id] = true
		n.txDone++
		n.multicast(f.members, wireMsg{Kind: kindFlushDone, FlushDone: &flushDoneMsg{NewConf: f.newConf}})
	}
	for _, m := range f.members {
		if !f.doneFrom[m] {
			return
		}
	}
	n.install()
}

// deliverTransitional performs the EVS end-of-configuration delivery:
//
//  1. messages that still meet the Safe guarantee (stable anywhere in the
//     transitional set, or Agreed service) are delivered in the *regular*
//     configuration (§ 4.1 case 1);
//  2. the transitional configuration notification;
//  3. the remaining ordered messages, then order-less messages in
//     deterministic (sender, lseq) order — identical at every member of
//     the transitional set (virtual synchrony), § 4.1 case 2.
func (n *Node) deliverTransitional(t []types.ServerID, u flushUnion) {
	c := n.conf
	if c == nil {
		return // first configuration: nothing to flush
	}
	// 1. Regular-configuration deliveries: the longest prefix where every
	// message is Agreed or within the known-stable bound.
	for {
		g := c.delivered + 1
		e, ok := c.orders[g]
		if !ok {
			break
		}
		d, held := c.data[e.Sender][e.LSeq]
		if !held {
			break
		}
		if d.Service == Safe && g > u.maxStable {
			break
		}
		n.emit(Delivery{Conf: c.id, Sender: d.Sender, Payload: d.Payload, Service: d.Service})
		c.markDelivered()
	}
	// 2. Transitional configuration.
	n.emit(ViewChange{Config: types.Configuration{
		ID:           c.id,
		Members:      t,
		Transitional: true,
	}})
	// 3a. Remaining ordered messages, up to the first hole in the union
	// (a hole means the sequencer's assignment was lost everywhere that
	// survived; the messages behind it fall back to deterministic order).
	for {
		g := c.delivered + 1
		e, ok := c.orders[g]
		if !ok {
			break
		}
		d, held := c.data[e.Sender][e.LSeq]
		if !held {
			break
		}
		n.emit(Delivery{Conf: c.id, Sender: d.Sender, Payload: d.Payload, Service: d.Service, InTrans: true})
		c.markDelivered()
	}
	// 3b. Everything else, in deterministic (sender, lseq) order.
	for _, d := range c.leftoverData() {
		n.emit(Delivery{Conf: c.id, Sender: d.Sender, Payload: d.Payload, Service: d.Service, InTrans: true})
	}
}

// install delivers the new regular configuration and resets per-
// configuration state. Buffered application sends go out immediately in
// the new configuration.
func (n *Node) install() {
	f := n.flush
	n.traceEvent(fmt.Sprintf("install(%v)", f.newConf))
	n.om.installs.Inc()
	if !n.gatherStart.IsZero() {
		n.om.flushDur.ObserveDuration(time.Since(n.gatherStart))
		n.gatherStart = time.Time{}
	}
	n.cfg.Obs.Trace.Record(obs.EvViewInstall, f.newConf.Counter, uint64(len(f.members)), 0)
	n.emit(ViewChange{Config: types.Configuration{
		ID:      f.newConf,
		Members: append([]types.ServerID(nil), f.members...),
	}})
	n.conf = newConfState(f.newConf, f.members)
	n.oldConfID = f.newConf
	n.phase = phaseRegular
	n.flush = nil
	n.proposals = nil
	n.transDone = false
	pend := n.pendingSend
	n.pendingSend = nil
	for _, od := range pend {
		n.sendData(od)
	}
}

// leftoverData returns held data messages not yet delivered, in the
// deterministic transitional order.
func (c *confState) leftoverData() []*dataMsg {
	deliveredPair := make(map[types.ServerID]map[uint64]bool)
	for g, e := range c.orders {
		if g <= c.delivered {
			if deliveredPair[e.Sender] == nil {
				deliveredPair[e.Sender] = make(map[uint64]bool)
			}
			deliveredPair[e.Sender][e.LSeq] = true
		}
	}
	var out []*dataMsg
	for _, m := range c.members {
		for lseq, d := range c.data[m] {
			if deliveredPair[m] != nil && deliveredPair[m][lseq] {
				continue
			}
			if d.Service == Fifo && lseq <= c.fifoDeliv[m] {
				continue // already delivered by the FIFO fast path
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sender != out[j].Sender {
			return out[i].Sender < out[j].Sender
		}
		return out[i].LSeq < out[j].LSeq
	})
	return out
}
