package evs

import (
	"testing"

	"evsdb/internal/types"
)

// FuzzDecodeWire is the native-fuzzing entry for the wire codec: any byte
// string must either decode cleanly or error — never panic — and
// re-encoding a decoded message must decode to the same thing.
func FuzzDecodeWire(f *testing.F) {
	// Seed with real encodings of every kind.
	f.Add(encodeWire(wireMsg{Kind: kindData, Data: &dataMsg{
		Conf: types.ConfID{Counter: 1, Proposer: "a"}, Sender: "b", LSeq: 2,
		Service: Safe, Payload: []byte("p"),
	}}))
	f.Add(encodeWire(wireMsg{Kind: kindOrder, Order: &orderMsg{
		Conf:    types.ConfID{Counter: 1, Proposer: "a"},
		Entries: []orderEntry{{GSeq: 1, Sender: "b", LSeq: 1}},
	}}))
	f.Add(encodeWire(wireMsg{Kind: kindAck, Ack: &ackMsg{
		Conf: types.ConfID{Counter: 1, Proposer: "a"}, UpTo: 5, SentHigh: 6,
	}}))
	f.Add(encodeWire(wireMsg{Kind: kindStable, Stable: &stableMsg{
		Conf: types.ConfID{Counter: 1, Proposer: "a"}, UpTo: 3,
		SentHigh: map[types.ServerID]uint64{"b": 9},
	}}))
	f.Add(encodeWire(wireMsg{Kind: kindPropose, Propose: &proposeMsg{
		Members: []types.ServerID{"a", "b"}, MaxCounter: 2,
	}}))
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeWire(data)
		if err != nil {
			return
		}
		// Idempotence: decode(encode(decode(x))) == decode(x) for the
		// binary kinds (JSON kinds may normalize whitespace).
		switch m.Kind {
		case kindData, kindOrder, kindAck, kindStable, kindNack:
			again, err := decodeWire(encodeWire(m))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if again.Kind != m.Kind {
				t.Fatalf("kind changed: %v -> %v", m.Kind, again.Kind)
			}
		}
	})
}
