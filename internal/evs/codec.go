package evs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"evsdb/internal/types"
)

// Wire format, version 1: every datagram starts with a three-byte header
//
//	[0] wireMagic — distinguishes EVS frames from foreign traffic
//	[1] wire version — a frame from a node speaking another version
//	    fails loudly at decode instead of being mis-parsed
//	[2] message kind
//
// Hot-path messages (data, order, ack, stable, nack) use a hand-rolled
// binary layout — on a single-core host the JSON codec dominated per-hop
// latency. Membership messages (propose, flush*) are rare and stay JSON,
// carried after the header.
const (
	wireMagic   = 0xE5
	wireVersion = 1
)

// frameBufs pools encode buffers for the send path: every transport
// either writes the frame out synchronously or copies it before
// Multicast/Send returns, so the buffer is reusable immediately.
var frameBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// encodePooled encodes m into a pooled buffer, hands it to send, and
// recycles the buffer.
func encodePooled(m wireMsg, send func([]byte)) {
	bp := frameBufs.Get().(*[]byte)
	buf := appendWire((*bp)[:0], m)
	send(buf)
	*bp = buf[:0]
	frameBufs.Put(bp)
}

// putStr appends a length-prefixed string.
func putStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func getStr(buf []byte) (string, []byte, bool) {
	if len(buf) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, false
	}
	return string(buf[:n]), buf[n:], true
}

func putConf(buf []byte, c types.ConfID) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, c.Counter)
	return putStr(buf, string(c.Proposer))
}

func getConf(buf []byte) (types.ConfID, []byte, bool) {
	if len(buf) < 8 {
		return types.ConfID{}, nil, false
	}
	c := types.ConfID{Counter: binary.LittleEndian.Uint64(buf)}
	s, rest, ok := getStr(buf[8:])
	if !ok {
		return types.ConfID{}, nil, false
	}
	c.Proposer = types.ServerID(s)
	return c, rest, true
}

// confSize is the exact encoded size of a configuration id.
func confSize(c types.ConfID) int { return 8 + 2 + len(c.Proposer) }

// wireSize returns the exact encoded size of a binary-bodied message
// (header included), so encodes allocate or grow at most once. JSON
// bodies return a guess; append handles the rest.
func wireSize(m wireMsg) int {
	switch m.Kind {
	case kindData:
		d := m.Data
		return 3 + confSize(d.Conf) + 2 + len(d.Sender) + 8 + 1 + 4 + len(d.Payload)
	case kindOrder:
		n := 3 + confSize(m.Order.Conf) + 4
		for _, e := range m.Order.Entries {
			n += 8 + 2 + len(e.Sender) + 8
		}
		return n
	case kindAck:
		return 3 + confSize(m.Ack.Conf) + 16
	case kindStable:
		n := 3 + confSize(m.Stable.Conf) + 8 + 4
		for id := range m.Stable.SentHigh {
			n += 2 + len(id) + 8
		}
		return n
	case kindNack:
		nk := m.Nack
		return 3 + confSize(nk.Conf) + 2 + len(nk.Sender) + 4 + 8*len(nk.LSeqs) + 4 + 8*len(nk.GSeqs)
	default:
		return 64
	}
}

// appendWire appends the framed encoding of m to buf.
func appendWire(buf []byte, m wireMsg) []byte {
	buf = append(buf, wireMagic, wireVersion, byte(m.Kind))
	switch m.Kind {
	case kindData:
		d := m.Data
		buf = putConf(buf, d.Conf)
		buf = putStr(buf, string(d.Sender))
		buf = binary.LittleEndian.AppendUint64(buf, d.LSeq)
		buf = append(buf, byte(d.Service))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Payload)))
		return append(buf, d.Payload...)
	case kindOrder:
		o := m.Order
		buf = putConf(buf, o.Conf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.Entries)))
		for _, e := range o.Entries {
			buf = binary.LittleEndian.AppendUint64(buf, e.GSeq)
			buf = putStr(buf, string(e.Sender))
			buf = binary.LittleEndian.AppendUint64(buf, e.LSeq)
		}
		return buf
	case kindAck:
		a := m.Ack
		buf = putConf(buf, a.Conf)
		buf = binary.LittleEndian.AppendUint64(buf, a.UpTo)
		return binary.LittleEndian.AppendUint64(buf, a.SentHigh)
	case kindStable:
		s := m.Stable
		buf = putConf(buf, s.Conf)
		buf = binary.LittleEndian.AppendUint64(buf, s.UpTo)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.SentHigh)))
		for id, high := range s.SentHigh {
			buf = putStr(buf, string(id))
			buf = binary.LittleEndian.AppendUint64(buf, high)
		}
		return buf
	case kindNack:
		nk := m.Nack
		buf = putConf(buf, nk.Conf)
		buf = putStr(buf, string(nk.Sender))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nk.LSeqs)))
		for _, l := range nk.LSeqs {
			buf = binary.LittleEndian.AppendUint64(buf, l)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nk.GSeqs)))
		for _, g := range nk.GSeqs {
			buf = binary.LittleEndian.AppendUint64(buf, g)
		}
		return buf
	default:
		body, err := json.Marshal(m)
		if err != nil {
			panic(fmt.Sprintf("evs: marshal %v: %v", m.Kind, err))
		}
		return append(buf, body...)
	}
}

func encodeWire(m wireMsg) []byte {
	return appendWire(make([]byte, 0, wireSize(m)), m)
}

func decodeWire(buf []byte) (wireMsg, error) {
	if len(buf) < 3 {
		return wireMsg{}, fmt.Errorf("evs: datagram too short (%d bytes)", len(buf))
	}
	if buf[0] != wireMagic {
		return wireMsg{}, fmt.Errorf("evs: not an evs frame (magic 0x%02x)", buf[0])
	}
	if buf[1] != wireVersion {
		// Loud, specific failure: a mixed-version group must surface the
		// incompatibility instead of mis-parsing frames.
		return wireMsg{}, fmt.Errorf("evs: wire version mismatch: frame v%d, this node speaks v%d",
			buf[1], wireVersion)
	}
	kind := msgKind(buf[2])
	rest := buf[3:]
	if kind < kindData || kind > kindFlushDone {
		return wireMsg{}, fmt.Errorf("evs: unknown message kind %d", int(kind))
	}
	bad := func() (wireMsg, error) {
		return wireMsg{}, fmt.Errorf("evs: truncated %v datagram", kind)
	}
	switch kind {
	case kindData:
		var d dataMsg
		var ok bool
		if d.Conf, rest, ok = getConf(rest); !ok {
			return bad()
		}
		var s string
		if s, rest, ok = getStr(rest); !ok {
			return bad()
		}
		d.Sender = types.ServerID(s)
		if len(rest) < 13 {
			return bad()
		}
		d.LSeq = binary.LittleEndian.Uint64(rest)
		d.Service = ServiceLevel(rest[8])
		n := int(binary.LittleEndian.Uint32(rest[9:]))
		rest = rest[13:]
		if len(rest) < n {
			return bad()
		}
		d.Payload = rest[:n:n]
		return wireMsg{Kind: kindData, Data: &d}, nil
	case kindOrder:
		var o orderMsg
		var ok bool
		if o.Conf, rest, ok = getConf(rest); !ok {
			return bad()
		}
		if len(rest) < 4 {
			return bad()
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		// Each entry needs at least 18 bytes; a declared count beyond
		// that is a corrupt (or hostile) datagram, not an allocation
		// request.
		if n > len(rest)/18+1 {
			return bad()
		}
		o.Entries = make([]orderEntry, 0, n)
		for i := 0; i < n; i++ {
			var e orderEntry
			if len(rest) < 8 {
				return bad()
			}
			e.GSeq = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			var s string
			if s, rest, ok = getStr(rest); !ok {
				return bad()
			}
			e.Sender = types.ServerID(s)
			if len(rest) < 8 {
				return bad()
			}
			e.LSeq = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			o.Entries = append(o.Entries, e)
		}
		return wireMsg{Kind: kindOrder, Order: &o}, nil
	case kindAck:
		var a ackMsg
		var ok bool
		if a.Conf, rest, ok = getConf(rest); !ok {
			return bad()
		}
		if len(rest) < 16 {
			return bad()
		}
		a.UpTo = binary.LittleEndian.Uint64(rest)
		a.SentHigh = binary.LittleEndian.Uint64(rest[8:])
		return wireMsg{Kind: kindAck, Ack: &a}, nil
	case kindStable:
		var s stableMsg
		var ok bool
		if s.Conf, rest, ok = getConf(rest); !ok {
			return bad()
		}
		if len(rest) < 12 {
			return bad()
		}
		s.UpTo = binary.LittleEndian.Uint64(rest)
		n := int(binary.LittleEndian.Uint32(rest[8:]))
		rest = rest[12:]
		// Each map entry needs at least 10 encoded bytes.
		if n > len(rest)/10+1 {
			return bad()
		}
		if n > 0 {
			s.SentHigh = make(map[types.ServerID]uint64, n)
			for i := 0; i < n; i++ {
				var id string
				if id, rest, ok = getStr(rest); !ok {
					return bad()
				}
				if len(rest) < 8 {
					return bad()
				}
				s.SentHigh[types.ServerID(id)] = binary.LittleEndian.Uint64(rest)
				rest = rest[8:]
			}
		}
		return wireMsg{Kind: kindStable, Stable: &s}, nil
	case kindNack:
		var nk nackMsg
		var ok bool
		if nk.Conf, rest, ok = getConf(rest); !ok {
			return bad()
		}
		var s string
		if s, rest, ok = getStr(rest); !ok {
			return bad()
		}
		nk.Sender = types.ServerID(s)
		if len(rest) < 4 {
			return bad()
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest)/8 {
			return bad()
		}
		for i := 0; i < n; i++ {
			nk.LSeqs = append(nk.LSeqs, binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		if len(rest) < 4 {
			return bad()
		}
		n = int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest)/8 {
			return bad()
		}
		for i := 0; i < n; i++ {
			nk.GSeqs = append(nk.GSeqs, binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		return wireMsg{Kind: kindNack, Nack: &nk}, nil
	default:
		var m wireMsg
		if err := json.Unmarshal(rest, &m); err != nil {
			return wireMsg{}, fmt.Errorf("evs: unmarshal %v: %w", kind, err)
		}
		m.Kind = kind
		return m, nil
	}
}
