package evs

import (
	"fmt"
	"testing"
	"time"

	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

func TestFourteenNodesConverge(t *testing.T) {
	for round := 0; round < 5; round++ {
		func() {
			h := newHarness14(t)
			var all []types.ServerID
			for i := 0; i < 14; i++ {
				all = append(all, serverID(i))
			}
			h.waitView(all, all)
			for i, id := range all {
				_ = h.nodes[id].Multicast([]byte(fmt.Sprintf("m%d", i)), Safe)
			}
			waitFor(t, 10*time.Second, fmt.Sprintf("round %d deliveries", round), func() bool {
				for _, id := range all {
					if len(deliveries(h.events(id))) < 14 {
						return false
					}
				}
				return true
			})
			h.close()
		}()
	}
}

func TestFourteenDebug(t *testing.T) {
	h := newHarness14(t)
	var all []types.ServerID
	for i := 0; i < 14; i++ {
		all = append(all, serverID(i))
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range all {
			conf, got := lastRegular(h.events(id))
			if !got || !types.EqualMembers(conf.Members, all) {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range all {
		t.Logf("%s: %s", id, h.nodes[id].Debug())
	}
	t.Fatal("no convergence")
}

// newHarness14 builds a 14-node harness with a coarser tick: at this
// scale the fine-grained test tick saturates small CI hosts (especially
// under the race detector).
func newHarness14(t *testing.T) *harness {
	t.Helper()
	h := &harness{
		t:     t,
		net:   memnet.New(),
		nodes: make(map[types.ServerID]*Node),
		logs:  make(map[types.ServerID][]Event),
	}
	for i := 0; i < 14; i++ {
		id := serverID(i)
		ep, err := h.net.Attach(id)
		if err != nil {
			t.Fatalf("attach %s: %v", id, err)
		}
		node := NewNode(ep, WithTick(2*time.Millisecond))
		h.nodes[id] = node
		h.wg.Add(1)
		go func(id types.ServerID, node *Node) {
			defer h.wg.Done()
			for ev := range node.Events() {
				h.mu.Lock()
				h.logs[id] = append(h.logs[id], ev)
				h.mu.Unlock()
			}
		}(id, node)
	}
	t.Cleanup(h.close)
	return h
}
