package evs

import (
	"fmt"
	"testing"
	"time"

	"evsdb/internal/types"
)

// confCounters extracts the regular-configuration counters a node
// installed, in order.
func confCounters(evs []Event) []uint64 {
	var out []uint64
	for _, ev := range evs {
		if vc, ok := ev.(ViewChange); ok && !vc.Config.Transitional {
			out = append(out, vc.Config.ID.Counter)
		}
	}
	return out
}

// TestConfCountersMonotonic: every node's installed configuration
// counters strictly increase, across arbitrary partition churn.
func TestConfCountersMonotonic(t *testing.T) {
	h := newHarness(t, 4)
	var all []types.ServerID
	for i := 0; i < 4; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)
	h.net.Partition(all[:2], all[2:])
	h.waitView(all[:2], all[:2])
	h.net.Partition(all[:1], all[1:3], all[3:])
	time.Sleep(20 * time.Millisecond)
	h.net.Heal()
	h.waitView(all, all)

	for _, id := range all {
		counters := confCounters(h.events(id))
		for i := 1; i < len(counters); i++ {
			if counters[i] <= counters[i-1] {
				t.Fatalf("%s installed non-monotonic counters: %v", id, counters)
			}
		}
	}
}

// TestMergeAdoptsHigherCounter: when two components with different
// configuration histories merge, the merged configuration's counter
// exceeds both sides' maxima (no id reuse).
func TestMergeAdoptsHigherCounter(t *testing.T) {
	h := newHarness(t, 4)
	var all []types.ServerID
	for i := 0; i < 4; i++ {
		all = append(all, serverID(i))
	}
	h.waitView(all, all)
	h.net.Partition(all[:2], all[2:])
	h.waitView(all[:2], all[:2])
	h.waitView(all[2:], all[2:])

	// Churn one side to advance its counter well past the other's.
	for i := 0; i < 3; i++ {
		h.net.Partition(all[:1], all[1:2], all[2:])
		h.waitView(all[:1], all[:1])
		h.net.Partition(all[:2], all[2:])
		h.waitView(all[:2], all[:2])
	}
	leftMax := confCounters(h.events(all[0]))
	rightMax := confCounters(h.events(all[2]))

	h.net.Heal()
	h.waitView(all, all)
	merged, _ := lastRegular(h.events(all[3]))
	if merged.ID.Counter <= leftMax[len(leftMax)-1] || merged.ID.Counter <= rightMax[len(rightMax)-1] {
		t.Fatalf("merged counter %d does not exceed both sides (%d, %d)",
			merged.ID.Counter, leftMax[len(leftMax)-1], rightMax[len(rightMax)-1])
	}
}

// TestStragglerRejoinsAfterFlap is the regression test for the
// same-membership re-gather deadlock: a node that briefly saw a different
// reachability estimate re-gathers toward the SAME member set; peers in
// the regular phase must respond rather than discard the proposal.
func TestStragglerRejoinsAfterFlap(t *testing.T) {
	h := newHarness(t, 3)
	all := []types.ServerID{serverID(0), serverID(1), serverID(2)}
	h.waitView(all, all)

	for round := 0; round < 10; round++ {
		// Blink: isolate one node for an instant, then heal. The blinked
		// node re-gathers with the same final membership.
		victim := all[round%3]
		h.net.Partition([]types.ServerID{victim})
		h.net.Heal()

		// Everyone must converge to a common regular configuration and
		// deliver new traffic.
		h.waitView(all, all)
		marker := fmt.Sprintf("flap-%d", round)
		_ = h.nodes[all[(round+1)%3]].Multicast([]byte(marker), Safe)
		waitFor(t, 10*time.Second, marker, func() bool {
			for _, id := range all {
				if !contains(deliveries(h.events(id)), marker) {
					return false
				}
			}
			return true
		})
	}
}

// TestSingletonChurn: a lone node partitioning away and back repeatedly
// must keep making progress alone (installing singleton configurations).
func TestSingletonChurn(t *testing.T) {
	h := newHarness(t, 2)
	a, b := serverID(0), serverID(1)
	h.waitView([]types.ServerID{a, b}, []types.ServerID{a, b})

	for round := 0; round < 5; round++ {
		h.net.Partition([]types.ServerID{a}, []types.ServerID{b})
		h.waitView([]types.ServerID{a}, []types.ServerID{a})
		marker := fmt.Sprintf("solo-%d", round)
		_ = h.nodes[a].Multicast([]byte(marker), Safe)
		waitFor(t, 5*time.Second, marker, func() bool {
			return contains(deliveries(h.events(a)), marker)
		})
		h.net.Heal()
		h.waitView([]types.ServerID{a, b}, []types.ServerID{a, b})
	}
}

// TestSafeDeliveryGuarantee is a direct check of the § 4.1 property the
// engine depends on: if any node delivered a Safe message in the regular
// configuration (pre-transitional), every node of that configuration
// delivers it somewhere (regular or transitional) — nobody misses it.
func TestSafeDeliveryGuarantee(t *testing.T) {
	for round := 0; round < 5; round++ {
		func() {
			h := newHarness(t, 4)
			var all []types.ServerID
			for i := 0; i < 4; i++ {
				all = append(all, serverID(i))
			}
			h.waitView(all, all)
			// Fire a burst and partition mid-flight.
			for i := 0; i < 30; i++ {
				_ = h.nodes[all[i%4]].Multicast([]byte(fmt.Sprintf("r%d-m%d", round, i)), Safe)
			}
			h.net.Partition(all[:2], all[2:])
			h.waitView(all[:2], all[:2])
			h.waitView(all[2:], all[2:])
			time.Sleep(50 * time.Millisecond)

			// Collect pre-transitional (regular) deliveries per node and
			// all deliveries per node.
			preTrans := make(map[types.ServerID]map[string]bool)
			everything := make(map[types.ServerID]map[string]bool)
			for _, id := range all {
				preTrans[id] = make(map[string]bool)
				everything[id] = make(map[string]bool)
				sawTrans := false
				for _, ev := range h.events(id) {
					switch e := ev.(type) {
					case ViewChange:
						if e.Config.Transitional {
							sawTrans = true
						}
					case Delivery:
						everything[id][string(e.Payload)] = true
						if !sawTrans {
							preTrans[id][string(e.Payload)] = true
						}
					}
				}
			}
			for _, p := range all {
				for msg := range preTrans[p] {
					for _, q := range all {
						if !everything[q][msg] {
							t.Fatalf("round %d: %s delivered %q safe in the regular conf but %s never delivered it",
								round, p, msg, q)
						}
					}
				}
			}
			h.close()
		}()
	}
}
