package evs

import (
	"testing"

	"evsdb/internal/types"
)

func benchDataMsg() wireMsg {
	return wireMsg{Kind: kindData, Data: &dataMsg{
		Conf:    types.ConfID{Counter: 7, Proposer: "s03"},
		Sender:  "s11",
		LSeq:    42,
		Service: Safe,
		Payload: make([]byte, 200),
	}}
}

func benchOrderMsg() wireMsg {
	entries := make([]orderEntry, 16)
	for i := range entries {
		entries[i] = orderEntry{GSeq: uint64(100 + i), Sender: "s03", LSeq: uint64(i)}
	}
	return wireMsg{Kind: kindOrder, Order: &orderMsg{
		Conf:    types.ConfID{Counter: 7, Proposer: "s03"},
		Entries: entries,
	}}
}

func BenchmarkEncodeWireData(b *testing.B) {
	m := benchDataMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeWire(m)
	}
}

// BenchmarkEncodeWireDataPooled is the node send path: encode into a
// pooled frame buffer (steady state: zero allocations).
func BenchmarkEncodeWireDataPooled(b *testing.B) {
	m := benchDataMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encodePooled(m, func([]byte) {})
	}
}

func BenchmarkDecodeWireData(b *testing.B) {
	frame := encodeWire(benchDataMsg())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeWire(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeWireOrder(b *testing.B) {
	m := benchOrderMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeWire(m)
	}
}

func BenchmarkDecodeWireOrder(b *testing.B) {
	frame := encodeWire(benchOrderMsg())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeWire(frame); err != nil {
			b.Fatal(err)
		}
	}
}
