package evs

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"evsdb/internal/types"
)

func roundTrip(t *testing.T, m wireMsg) wireMsg {
	t.Helper()
	buf := encodeWire(m)
	got, err := decodeWire(buf)
	if err != nil {
		t.Fatalf("decode %v: %v", m.Kind, err)
	}
	return got
}

func TestCodecData(t *testing.T) {
	in := wireMsg{Kind: kindData, Data: &dataMsg{
		Conf:    types.ConfID{Counter: 7, Proposer: "s03"},
		Sender:  "s11",
		LSeq:    42,
		Service: Safe,
		Payload: []byte("the payload"),
	}}
	out := roundTrip(t, in)
	if out.Kind != kindData || !reflect.DeepEqual(out.Data, in.Data) {
		t.Fatalf("round trip: %+v vs %+v", out.Data, in.Data)
	}
}

func TestCodecDataEmptyPayload(t *testing.T) {
	in := wireMsg{Kind: kindData, Data: &dataMsg{
		Conf: types.ConfID{Counter: 1, Proposer: "a"}, Sender: "a", LSeq: 1, Service: Fifo,
	}}
	out := roundTrip(t, in)
	if len(out.Data.Payload) != 0 {
		t.Fatalf("payload appeared: %q", out.Data.Payload)
	}
}

func TestCodecOrder(t *testing.T) {
	in := wireMsg{Kind: kindOrder, Order: &orderMsg{
		Conf: types.ConfID{Counter: 3, Proposer: "x"},
		Entries: []orderEntry{
			{GSeq: 1, Sender: "a", LSeq: 1},
			{GSeq: 2, Sender: "b", LSeq: 5},
			{GSeq: 3, Sender: "a", LSeq: 2},
		},
	}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(out.Order, in.Order) {
		t.Fatalf("round trip: %+v vs %+v", out.Order, in.Order)
	}
}

func TestCodecAckStableNack(t *testing.T) {
	ack := wireMsg{Kind: kindAck, Ack: &ackMsg{
		Conf: types.ConfID{Counter: 9, Proposer: "p"}, UpTo: 100, SentHigh: 12,
	}}
	if out := roundTrip(t, ack); !reflect.DeepEqual(out.Ack, ack.Ack) {
		t.Fatalf("ack: %+v", out.Ack)
	}
	stable := wireMsg{Kind: kindStable, Stable: &stableMsg{
		Conf: types.ConfID{Counter: 9, Proposer: "p"}, UpTo: 55,
		SentHigh: map[types.ServerID]uint64{"a": 1, "b": 2},
	}}
	if out := roundTrip(t, stable); !reflect.DeepEqual(out.Stable, stable.Stable) {
		t.Fatalf("stable: %+v", out.Stable)
	}
	nack := wireMsg{Kind: kindNack, Nack: &nackMsg{
		Conf: types.ConfID{Counter: 9, Proposer: "p"}, Sender: "s",
		LSeqs: []uint64{3, 4}, GSeqs: []uint64{10},
	}}
	if out := roundTrip(t, nack); !reflect.DeepEqual(out.Nack, nack.Nack) {
		t.Fatalf("nack: %+v", out.Nack)
	}
}

func TestCodecMembershipJSON(t *testing.T) {
	in := wireMsg{Kind: kindPropose, Propose: &proposeMsg{
		Members: []types.ServerID{"a", "b", "c"}, MaxCounter: 4,
	}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(out.Propose, in.Propose) {
		t.Fatalf("propose: %+v", out.Propose)
	}
	fs := wireMsg{Kind: kindFlushState, FlushState: &flushStateMsg{
		NewConf: types.ConfID{Counter: 5, Proposer: "a"},
		Members: []types.ServerID{"a", "b"},
		OldConf: types.ConfID{Counter: 4, Proposer: "a"},
		Hold: holdings{
			DataCut:     map[types.ServerID]uint64{"a": 3},
			OrderCut:    3,
			OrderSparse: []orderEntry{{GSeq: 5, Sender: "b", LSeq: 2}},
		},
		StableCut: 2,
	}}
	out = roundTrip(t, fs)
	if !reflect.DeepEqual(out.FlushState, fs.FlushState) {
		t.Fatalf("flushState: %+v vs %+v", out.FlushState, fs.FlushState)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeWire(nil); err == nil {
		t.Fatal("decoded empty datagram")
	}
	for _, kind := range []msgKind{kindData, kindOrder, kindAck, kindStable, kindNack} {
		if _, err := decodeWire([]byte{byte(kind), 1, 2}); err == nil {
			t.Fatalf("decoded truncated %v", kind)
		}
	}
	if _, err := decodeWire([]byte{byte(kindPropose), '{'}); err == nil {
		t.Fatal("decoded bad JSON membership message")
	}
}

// TestCodecDataFuzzRoundTrip: arbitrary field values survive the binary
// codec.
func TestCodecDataFuzzRoundTrip(t *testing.T) {
	prop := func(counter uint64, proposer, sender string, lseq uint64, svc uint8, payload []byte) bool {
		if len(proposer) > 1000 || len(sender) > 1000 {
			return true
		}
		in := dataMsg{
			Conf:    types.ConfID{Counter: counter, Proposer: types.ServerID(proposer)},
			Sender:  types.ServerID(sender),
			LSeq:    lseq,
			Service: ServiceLevel(svc%3 + 1),
			Payload: payload,
		}
		out, err := decodeWire(encodeWire(wireMsg{Kind: kindData, Data: &in}))
		if err != nil {
			return false
		}
		d := out.Data
		return d.Conf == in.Conf && d.Sender == in.Sender && d.LSeq == in.LSeq &&
			d.Service == in.Service && bytes.Equal(d.Payload, in.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics throws random bytes at the decoder: errors are
// fine, panics are not (datagrams cross trust boundaries in tcpnet).
func TestDecodeNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = decodeWire(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
