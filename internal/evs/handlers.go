package evs

import (
	"fmt"

	"evsdb/internal/transport"
	"evsdb/internal/types"
)

// handleWire dispatches one incoming datagram.
func (n *Node) handleWire(msg transport.Message) {
	m, err := decodeWire(msg.Payload)
	if err != nil {
		return // corrupt datagrams are dropped; NACKs recover the stream
	}
	from := msg.From
	switch m.Kind {
	case kindData:
		n.handleData(m.Data)
	case kindOrder:
		n.handleOrder(m.Order)
	case kindAck:
		n.handleAck(from, m.Ack)
	case kindStable:
		n.handleStable(m.Stable)
	case kindNack:
		n.handleNack(from, m.Nack)
	case kindPropose:
		if m.Propose != nil {
			n.rxPropose++
			n.handlePropose(from, *m.Propose)
		}
	case kindFlushState:
		if m.FlushState != nil {
			n.rxFlush++
			n.handleFlushState(from, *m.FlushState)
		}
	case kindRetransData:
		n.handleRetransData(m.RetransData)
	case kindRetransOrder:
		n.handleRetransOrder(m.RetransOrder)
	case kindFlushDone:
		n.rxDone++
		n.handleFlushDone(from, m.FlushDone)
	}
}

func (n *Node) handleData(d *dataMsg) {
	if d == nil || n.conf == nil || d.Conf != n.conf.id {
		return
	}
	if !n.conf.storeData(d) {
		return
	}
	n.deliverFifo(d.Sender)
	// Only the sequencer assigns order, and only while the configuration
	// is steady; assignments made during a membership change could not be
	// propagated consistently.
	if n.phase == phaseRegular && n.conf.sequencer == n.id {
		n.conf.sequence(d.Sender)
	}
}

// deliverFifo emits FIFO-service messages that became deliverable for
// sender s.
func (n *Node) deliverFifo(s types.ServerID) {
	for _, d := range n.conf.nextFifo(s) {
		n.emit(Delivery{Conf: n.conf.id, Sender: d.Sender, Payload: d.Payload, Service: Fifo})
	}
}

func (n *Node) handleOrder(o *orderMsg) {
	if o == nil || n.conf == nil || o.Conf != n.conf.id {
		return
	}
	n.conf.storeOrder(o.Entries)
}

func (n *Node) handleAck(from types.ServerID, a *ackMsg) {
	if a == nil || n.conf == nil || a.Conf != n.conf.id {
		return
	}
	if a.UpTo > n.conf.acks[from] {
		n.conf.acks[from] = a.UpTo
	}
	if a.SentHigh > n.conf.dataMax[from] {
		n.conf.dataMax[from] = a.SentHigh
	}
}

func (n *Node) handleStable(s *stableMsg) {
	if s == nil || n.conf == nil || s.Conf != n.conf.id {
		return
	}
	if s.UpTo > n.conf.stableCut {
		n.conf.stableCut = s.UpTo
	}
	for id, high := range s.SentHigh {
		if high > n.conf.dataMax[id] {
			n.conf.dataMax[id] = high
		}
	}
}

// handleNack answers retransmission requests: data from this node's own
// stream, order entries if this node is the sequencer.
func (n *Node) handleNack(from types.ServerID, nk *nackMsg) {
	if nk == nil || n.conf == nil || nk.Conf != n.conf.id {
		return
	}
	n.om.nackRx.Inc()
	c := n.conf
	if nk.Sender == n.id {
		for _, lseq := range nk.LSeqs {
			if d, held := c.data[n.id][lseq]; held {
				n.unicast(from, wireMsg{Kind: kindData, Data: d})
			}
		}
	}
	if len(nk.GSeqs) > 0 && c.sequencer == n.id {
		var entries []orderEntry
		for _, g := range nk.GSeqs {
			if e, held := c.orders[g]; held {
				entries = append(entries, e)
			}
		}
		if len(entries) > 0 {
			n.unicast(from, wireMsg{Kind: kindOrder, Order: &orderMsg{Conf: c.id, Entries: entries}})
		}
	}
}

func (n *Node) handleRetransData(rd *retransDataMsg) {
	if rd == nil || n.phase != phaseFlush || rd.NewConf != n.flush.newConf {
		return
	}
	if n.conf == nil || rd.Data.Conf != n.conf.id {
		return // retransmission for a different old configuration
	}
	d := rd.Data
	if n.conf.storeData(&d) {
		n.deliverFifo(d.Sender)
	}
}

func (n *Node) handleRetransOrder(ro *retransOrderMsg) {
	if ro == nil || n.phase != phaseFlush || ro.NewConf != n.flush.newConf {
		return
	}
	if n.conf == nil || ro.OldConf != n.conf.id {
		return
	}
	n.conf.storeOrder(ro.Entries)
}

func (n *Node) handleFlushDone(from types.ServerID, fd *flushDoneMsg) {
	if fd == nil {
		n.rejDone = "nil"
		return
	}
	if n.phase != phaseFlush {
		n.rejDone = fmt.Sprintf("phase=%d got %v from %s", n.phase, fd.NewConf, from)
		return
	}
	if fd.NewConf != n.flush.newConf {
		n.rejDone = fmt.Sprintf("conf %v != mine %v from %s", fd.NewConf, n.flush.newConf, from)
		return
	}
	if !n.flush.doneFrom[from] && from != n.id && n.flush.doneSent {
		// First contact: the peer may have missed our flush-done while it
		// was still gathering; re-announce once, event-driven.
		n.txDone++
		n.multicast(n.flush.members, wireMsg{Kind: kindFlushDone,
			FlushDone: &flushDoneMsg{NewConf: n.flush.newConf}})
	}
	n.flush.doneFrom[from] = true
}

// progress runs after every batch of events: ordering flush, stability
// advancement, in-order delivery and flush progression.
func (n *Node) progress() {
	switch n.phase {
	case phaseRegular:
		n.progressRegular()
	case phaseFlush:
		n.progressFlush()
	}
}

func (n *Node) progressRegular() {
	c := n.conf
	if c == nil {
		return
	}
	// Sequencer: publish any freshly assigned order entries (batched per
	// handled burst, so ordering traffic amortizes under load).
	if c.sequencer == n.id && len(c.pendingOrder) > 0 {
		entries := c.pendingOrder
		c.pendingOrder = nil
		n.multicast(c.members, wireMsg{Kind: kindOrder, Order: &orderMsg{Conf: c.id, Entries: entries}})
	}
	c.advanceHold()
	if c.sequencer == n.id {
		// The sequencer aggregates stability: when the minimum ack across
		// the configuration advances, announce the new SAFE bound.
		if min := c.ackMin(); min > c.stableCut {
			c.stableCut = min
			n.multicast(c.members, wireMsg{Kind: kindStable, Stable: &stableMsg{Conf: c.id, UpTo: min}})
		}
	} else if c.holdCut > c.lastAckSent {
		// Acknowledge per processed burst: cheap at low rate, amortized
		// under load, and it is what advances stability for Safe delivery.
		c.lastAckSent = c.holdCut
		n.sendAck()
	}
	for {
		d := c.nextDeliverable()
		if d == nil {
			break
		}
		n.emit(Delivery{Conf: c.id, Sender: d.Sender, Payload: d.Payload, Service: d.Service})
		c.markDelivered()
	}
	n.om.safeLag.Set(int64(c.orderMax - c.delivered))
}

// sendAck unicasts the cumulative acknowledgment (plus this node's own
// stream high watermark) to the sequencer.
func (n *Node) sendAck() {
	c := n.conf
	n.unicast(c.sequencer, wireMsg{Kind: kindAck, Ack: &ackMsg{
		Conf:     c.id,
		UpTo:     c.holdCut,
		SentHigh: c.nextLSeq,
	}})
}

// tick drives periodic work. Fast work (reachability checks, NACK scans,
// ack advancement, GC) runs every tick; blanket retransmissions of
// membership traffic run only every ResendTicks ticks — they exist purely
// to recover lost datagrams, since protocol progress is event-driven.
func (n *Node) tick() {
	n.tickCount++
	resend := n.tickCount%n.cfg.ResendTicks == 0
	if resend {
		// The debug snapshot allocates; refreshing it on resend ticks only
		// keeps the per-tick cost near zero at sub-millisecond tick rates.
		n.snapshotDebug()
	}
	switch n.phase {
	case phaseRegular:
		// Reachability changes arrive on their own notification channel;
		// the tick check is only a slow backstop for detectors that miss
		// an edge (e.g. tcpnet heartbeats).
		if resend {
			n.checkReachability()
			if n.phase != phaseRegular { // reachability moved us to gather
				return
			}
		}
		c := n.conf
		if c == nil {
			return
		}
		if resend {
			if c.sequencer == n.id {
				// The sequencer re-announces the stability bound and every
				// member's stream high watermark (tail-loss detection), and
				// its latest order assignment so receivers can NACK
				// interior gaps even when the newest order message was
				// lost.
				high := make(map[types.ServerID]uint64, len(c.members))
				for _, m := range c.members {
					high[m] = c.dataMax[m]
				}
				n.multicast(c.members, wireMsg{Kind: kindStable, Stable: &stableMsg{
					Conf: c.id, UpTo: c.stableCut, SentHigh: high,
				}})
				if c.nextGSeq > c.gcCut {
					if e, held := c.orders[c.nextGSeq]; held {
						n.multicast(c.members, wireMsg{Kind: kindOrder, Order: &orderMsg{Conf: c.id, Entries: []orderEntry{e}}})
					}
				}
			} else {
				// Periodic ack: recovers lost acknowledgments (stability
				// would otherwise stall forever under loss).
				n.sendAck()
			}
		}
		for sender, lseqs := range c.dataGaps(n.cfg.NackBatch) {
			n.om.nackTx.Inc()
			n.unicast(sender, wireMsg{Kind: kindNack, Nack: &nackMsg{Conf: c.id, Sender: sender, LSeqs: lseqs}})
		}
		if gseqs := c.orderGaps(n.cfg.NackBatch); len(gseqs) > 0 {
			n.om.nackTx.Inc()
			n.unicast(c.sequencer, wireMsg{Kind: kindNack, Nack: &nackMsg{Conf: c.id, GSeqs: gseqs}})
		}
		c.gc()
	case phaseGather:
		n.checkReachability()
		if n.phase == phaseGather && resend {
			// Re-announce: proposals are idempotent and this recovers any
			// lost announcement.
			n.propose(n.myProposal)
		}
	case phaseFlush:
		n.checkReachability()
		if n.phase != phaseFlush {
			return
		}
		f := n.flush
		if !resend {
			return
		}
		if t := n.transSet(); t != nil {
			u := n.computeUnion(t)
			n.retransmitLacking(t, u)
		}
		// Loss-recovery blanket resends: keep stragglers converging
		// toward the same membership and refresh our flush state.
		p := proposeMsg{Members: f.members, MaxCounter: n.maxCounter - 1}
		n.multicast(f.members, wireMsg{Kind: kindPropose, Propose: &p})
		n.sendFlushState()
		if f.doneSent {
			n.txDone++
			n.multicast(f.members, wireMsg{Kind: kindFlushDone, FlushDone: &flushDoneMsg{NewConf: f.newConf}})
		}
	}
}
