package evs

import (
	"evsdb/internal/obs"
)

// WithObserver routes the node's metrics and event traces through o,
// typically the Observer shared with the replica's engine so one
// /metrics endpoint covers both layers.
func WithObserver(o *obs.Observer) Option {
	return func(c *Config) { c.Obs = o }
}

// evsObs holds every EVS metric pre-registered against the registry so
// the protocol loop only touches atomics.
type evsObs struct {
	gathers      *obs.Counter
	installs     *obs.Counter
	flushDur     *obs.Histogram
	retransData  *obs.Counter
	retransOrder *obs.Counter
	nackTx       *obs.Counter
	nackRx       *obs.Counter
	safeLag      *obs.Gauge
}

func newEVSObs(r *obs.Registry) *evsObs {
	return &evsObs{
		gathers:      r.Counter("evsdb_evs_view_changes_total", "Membership gather phases entered (view changes started)."),
		installs:     r.Counter("evsdb_evs_views_installed_total", "Regular configurations installed."),
		flushDur:     r.Histogram("evsdb_evs_flush_seconds", "View-change duration, gather entry to install.", nil),
		retransData:  r.Counter("evsdb_evs_retransmits_total", "Messages re-sent during flush, by kind.", obs.L("kind", "data")),
		retransOrder: r.Counter("evsdb_evs_retransmits_total", "Messages re-sent during flush, by kind.", obs.L("kind", "order")),
		nackTx:       r.Counter("evsdb_evs_nacks_sent_total", "NACKs this node sent for data or order gaps."),
		nackRx:       r.Counter("evsdb_evs_nacks_received_total", "NACKs this node answered with retransmissions."),
		safeLag:      r.Gauge("evsdb_evs_safe_lag", "Order positions assigned but not yet delivered to the engine (safe-delivery lag)."),
	}
}
