module evsdb

go 1.22
