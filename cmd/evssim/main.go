// Command evssim runs seeded fault-injection schedules against a full
// in-process replication cluster and checks the paper's safety
// invariants (see internal/sim).
//
//	evssim -seed 60 -runs 20        # replay one schedule 20 times
//	evssim -runs 500                # explore 500 fresh random seeds
//	evssim -seed 60 -shrink         # minimize a failing schedule
//
// The process exits non-zero if any run fails; every failure message
// embeds the seed, so any result is reproducible from the output alone.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"evsdb/internal/sim"
)

func main() {
	var (
		seed    = flag.Int64("seed", 0, "schedule seed to replay (0: explore random seeds)")
		runs    = flag.Int("runs", 1, "repetitions of -seed, or number of random seeds to explore")
		retry   = flag.Bool("retry", false, "use the retry-heavy generator (idempotent re-submissions racing faults)")
		batch   = flag.Bool("batch", false, "use the burst-heavy generator (submit storms travelling as action bundles racing faults)")
		shrink  = flag.Bool("shrink", false, "minimize failing schedules by delta debugging")
		budget  = flag.Int("shrink-budget", 150, "max re-runs the shrinker may spend")
		verbose = flag.Bool("v", false, "print schedules and per-step progress")
	)
	flag.Parse()

	opts := sim.Options{}
	if *verbose {
		opts.Logf = log.New(os.Stderr, "", log.Lmicroseconds).Printf
	}

	seeds := make([]int64, 0, *runs)
	if *seed != 0 {
		for i := 0; i < *runs; i++ {
			seeds = append(seeds, *seed)
		}
	} else {
		base := time.Now().UnixNano()
		fmt.Printf("exploring %d random seeds from base %d\n", *runs, base)
		for i := 0; i < *runs; i++ {
			seeds = append(seeds, base+int64(i))
		}
	}

	failures := 0
	start := time.Now()
	generate := sim.Generate
	if *retry {
		generate = sim.GenerateRetry
	}
	if *batch {
		generate = sim.GenerateBatch
	}
	for i, s := range seeds {
		sched := generate(s)
		if *verbose {
			fmt.Printf("--- run %d/%d\n%s\n", i+1, len(seeds), sched)
		}
		res := sim.Run(sched, opts)
		if !res.Failed() {
			continue
		}
		failures++
		fmt.Printf("FAIL: %v\n", res.Err)
		if res.Report != "" {
			fmt.Printf("post-mortem:\n%s\n", res.Report)
		}
		if *shrink {
			min := sim.Shrink(sched, opts, *budget)
			fmt.Printf("shrunk to %d steps (from %d):\n%s\n", len(min.Steps), len(sched.Steps), min)
		}
	}
	fmt.Printf("%d/%d runs failed in %v\n", failures, len(seeds), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
