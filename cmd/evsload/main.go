// Command evsload drives the HTTP API of running replica processes
// (cmd/replica) with a closed-loop workload and reports throughput and
// latency percentiles — the operational complement to cmd/evsbench's
// in-process experiments.
//
//	evsload -targets http://127.0.0.1:8001,http://127.0.0.1:8002 \
//	        -clients 8 -ops 500 -mix 70:20:10
//
// The mix is set:add:get percentages.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"evsdb/internal/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evsload:", err)
		os.Exit(1)
	}
}

type opStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	failures  int
}

func (s *opStats) record(d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.latencies = append(s.latencies, d)
	} else {
		s.failures++
	}
}

func run() error {
	var (
		targets = flag.String("targets", "http://127.0.0.1:8001", "comma-separated replica HTTP endpoints")
		clients = flag.Int("clients", 4, "concurrent closed-loop clients")
		ops     = flag.Int("ops", 200, "operations per client")
		keys    = flag.Int("keys", 1000, "keyspace size")
		mixSpec = flag.String("mix", "70:20:10", "set:add:get percentages")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var endpoints []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			endpoints = append(endpoints, t)
		}
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	stats := &opStats{}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client gets its own connection object with a rotated
			// home endpoint, like the paper's per-machine clients.
			rotated := append(append([]string(nil), endpoints[c%len(endpoints):]...),
				endpoints[:c%len(endpoints)]...)
			cl, err := client.New(rotated)
			if err != nil {
				stats.record(0, err)
				return
			}
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			ctx := context.Background()
			for i := 0; i < *ops; i++ {
				key := fmt.Sprintf("key-%06d", rng.Intn(*keys))
				t0 := time.Now()
				var err error
				switch pick(rng, mix) {
				case 0:
					_, err = cl.Set(ctx, key, fmt.Sprintf("v%d-%d", c, i))
				case 1:
					err = cl.Add(ctx, key, int64(rng.Intn(10)+1))
				default:
					_, err = cl.Get(ctx, key, client.Strict)
				}
				stats.record(time.Since(t0), err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats.mu.Lock()
	defer stats.mu.Unlock()
	n := len(stats.latencies)
	if n == 0 {
		return fmt.Errorf("every operation failed (%d failures)", stats.failures)
	}
	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	pct := func(p float64) time.Duration {
		return stats.latencies[int(p*float64(n-1))]
	}
	fmt.Printf("completed %d ops in %v (%d failures)\n", n, elapsed.Round(time.Millisecond), stats.failures)
	fmt.Printf("throughput: %.1f ops/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), stats.latencies[n-1].Round(time.Microsecond))
	return nil
}

// parseMix turns "70:20:10" into cumulative thresholds.
func parseMix(spec string) ([3]int, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("mix %q must be set:add:get", spec)
	}
	var out [3]int
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return [3]int{}, fmt.Errorf("bad mix component %q", p)
		}
		total += n
		out[i] = total
	}
	if total == 0 {
		return [3]int{}, fmt.Errorf("mix %q sums to zero", spec)
	}
	return out, nil
}

// pick selects 0 (set), 1 (add) or 2 (get) per the cumulative mix.
func pick(rng *rand.Rand, mix [3]int) int {
	r := rng.Intn(mix[2])
	switch {
	case r < mix[0]:
		return 0
	case r < mix[1]:
		return 1
	default:
		return 2
	}
}
