// Command replica runs one replication server over TCP, exposing a small
// HTTP client API.
//
// Example three-replica deployment on one host:
//
//	replica -id s1 -listen 127.0.0.1:7001 -peers s2=127.0.0.1:7002,s3=127.0.0.1:7003 -http 127.0.0.1:8001 -wal /tmp/s1.wal
//	replica -id s2 -listen 127.0.0.1:7002 -peers s1=127.0.0.1:7001,s3=127.0.0.1:7003 -http 127.0.0.1:8002 -wal /tmp/s2.wal
//	replica -id s3 -listen 127.0.0.1:7003 -peers s1=127.0.0.1:7001,s2=127.0.0.1:7002 -http 127.0.0.1:8003 -wal /tmp/s3.wal
//
// Client API:
//
//	POST /set?key=k&value=v          strict replicated write
//	POST /add?key=k&delta=5          commutative increment (available in any component)
//	GET  /get?key=k&level=strict|weak|dirty
//	GET  /status                     engine state, configuration, counters
//	POST /leave                      permanently retire this replica
//
// Writes may carry an idempotency key (&client=ID&seq=N): retries of
// the same key return the original reply instead of re-applying.
// Overload answers 503 with a Retry-After hint (see -max-inflight).
//
// -admin-addr serves the operator surface on a separate address (off by
// default; bind it to loopback — the endpoints are unauthenticated):
//
//	GET /metrics        Prometheus text exposition
//	GET /debug/events   recent state-machine event trace
//	GET /debug/pprof/   net/http/pprof profiles
//
// Logs are structured (log/slog, JSON to stderr); -log-level selects
// the threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/evs"
	"evsdb/internal/httpapi"
	"evsdb/internal/obs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/tcpnet"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id           = flag.String("id", "", "server id (required)")
		listen       = flag.String("listen", "127.0.0.1:7001", "replication listen address")
		peerSpec     = flag.String("peers", "", "comma-separated id=addr peer list")
		httpAddr     = flag.String("http", "127.0.0.1:8001", "client HTTP address")
		walPath      = flag.String("wal", "", "write-ahead log path (default <id>.wal)")
		recover      = flag.Bool("recover", false, "replay the WAL before starting")
		delayed      = flag.Bool("delayed-writes", false, "use delayed (asynchronous) disk writes")
		maxInFlight  = flag.Int("max-inflight", 0, "admission budget for strict requests (0: default, -1: unlimited)")
		httpTimeout  = flag.Duration("http-timeout", 0, "server-side deadline per client request (0: default)")
		maxBatch     = flag.Int("max-batch", 0, "max actions coalesced into one multicast bundle (0: default, 1: disable batching)")
		batchDelay   = flag.Duration("batch-delay", 0, "how long a submission waits for bundle companions (0: default, <0: no wait)")
		adminAddr    = flag.String("admin-addr", "", "serve /metrics, /debug/events and /debug/pprof on this address (empty: disabled)")
		applyWorkers = flag.Int("apply-workers", 0, "parallel green-apply worker pool width (0: min(GOMAXPROCS,8), 1: sequential)")
		logLevel     = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
	)
	flag.Parse()
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	if *walPath == "" {
		*walPath = *id + ".wal"
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	// The engine stamps "server" on its own records, so the handler adds
	// no pre-bound attrs (they would duplicate).
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// One observer bundle is shared by every layer: transport, group
	// communication and the replication engine all register into the same
	// metrics registry and event ring, so /metrics is one coherent scrape.
	ob := obs.NewObserver().WithLogger(logger)

	peers := make(map[types.ServerID]string)
	servers := []types.ServerID{types.ServerID(*id)}
	if *peerSpec != "" {
		for _, part := range strings.Split(*peerSpec, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad peer %q (want id=addr)", part)
			}
			pid := types.ServerID(kv[0])
			peers[pid] = kv[1]
			servers = append(servers, pid)
		}
	}
	types.SortServerIDs(servers)

	tr, err := tcpnet.New(tcpnet.Config{
		ID:     types.ServerID(*id),
		Listen: *listen,
		Peers:  peers,
		Obs:    ob,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	policy := storage.SyncForced
	if *delayed {
		policy = storage.SyncDelayed
	}
	wal, err := storage.OpenFileLog(*walPath, storage.Options{Policy: policy})
	if err != nil {
		return err
	}
	defer wal.Close()

	gc := evs.NewNode(tr, evs.WithTick(5*time.Millisecond), evs.WithObserver(ob))
	defer gc.Close()

	eng, err := core.New(core.Config{
		ID:              types.ServerID(*id),
		Servers:         servers,
		GC:              gc,
		Log:             wal,
		Recover:         *recover,
		MaxInFlight:     *maxInFlight,
		MaxBatchActions: *maxBatch,
		MaxBatchDelay:   *batchDelay,
		Obs:             ob,
		ApplyWorkers:    *applyWorkers,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	mux := httpapi.New(eng, httpapi.Config{
		Timeout:     *httpTimeout,
		MaxInFlight: *maxInFlight,
	})

	srv := &http.Server{Addr: *httpAddr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *adminAddr != "" {
		// The admin surface gets its own mux (never DefaultServeMux) and
		// its own listener, so profiling and scraping never share a port
		// with the client API.
		admin := http.NewServeMux()
		admin.Handle("GET /metrics", ob.Reg)
		admin.HandleFunc("GET /debug/events", ob.ServeEvents)
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { errCh <- http.ListenAndServe(*adminAddr, admin) }()
		logger.Info("admin listener up", "server", *id, "addr", *adminAddr)
	}
	logger.Info("replica up", "server", *id, "replication", *listen, "clients", *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return nil
	}
}
