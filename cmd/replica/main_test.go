package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestThreeProcessDeployment builds the replica binary and runs a real
// three-process cluster over TCP + HTTP: write at one replica, read at
// another, check status, and exercise crash-free shutdown.
func TestThreeProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "replica")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reserve ports.
	repPorts := freePorts(t, 3)
	httpPorts := freePorts(t, 3)
	ids := []string{"s1", "s2", "s3"}
	addr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", repPorts[i]) }
	httpAddr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", httpPorts[i]) }

	dir := t.TempDir()
	var procs []*exec.Cmd
	for i, id := range ids {
		peers := ""
		for j, pid := range ids {
			if j == i {
				continue
			}
			if peers != "" {
				peers += ","
			}
			peers += pid + "=" + addr(j)
		}
		cmd := exec.Command(bin,
			"-id", id,
			"-listen", addr(i),
			"-peers", peers,
			"-http", httpAddr(i),
			"-wal", filepath.Join(dir, id+".wal"),
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", id, err)
		}
		procs = append(procs, cmd)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_, _ = p.Process.Wait()
		}
	})

	client := &http.Client{Timeout: 10 * time.Second}
	waitStatus := func(i int, want string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Get("http://" + httpAddr(i) + "/status")
			if err == nil {
				var st struct {
					State string `json:"state"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if st.State == want {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("replica %d never reached %s", i, want)
	}
	for i := range ids {
		waitStatus(i, "RegPrim")
	}

	// Write via s1, read via s3.
	resp, err := client.Post("http://"+httpAddr(0)+"/set?key=city&value=baltimore", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set: %d %s", resp.StatusCode, body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get("http://" + httpAddr(2) + "/get?key=city&level=weak")
		if err != nil {
			t.Fatal(err)
		}
		var res struct {
			Found bool   `json:"found"`
			Value string `json:"value"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if res.Found && res.Value == "baltimore" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("s3 never saw the write: %+v", res)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Commutative add works too.
	resp, err = client.Post("http://"+httpAddr(1)+"/add?key=n&delta=5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d", resp.StatusCode)
	}
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var ports []int
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return ports
}
