// Command partition-sim is an interactive driver for a simulated cluster:
// partition it, crash replicas, watch the engine states, and see red
// actions turn green after merges.
//
//	$ partition-sim -n 5
//	> status
//	> set s00 city baltimore
//	> partition s00,s01,s02 / s03,s04
//	> set s03 note hello          # stays red in the minority
//	> dirty s03 note              # visible to dirty reads
//	> heal
//	> get s04 note                # ordered after the merge
//	> crash s01
//	> recover s01
//	> join s99 s00
//	> quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partition-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 5, "number of replicas")
	flag.Parse()

	c, err := cluster.New(*n)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WaitPrimary(10*time.Second, c.IDs()...); err != nil {
		return err
	}
	fmt.Printf("cluster of %d replicas up: %v\n", *n, c.IDs())
	fmt.Println("commands: status | set <rep> <k> <v> | get <rep> <k> | dirty <rep> <k> |")
	fmt.Println("          partition g1 / g2 [/ g3...] | heal | crash <rep> | recover <rep> |")
	fmt.Println("          join <newId> <via> | leave <rep> | quit")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := execute(c, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func execute(c *cluster.Cluster, line string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	fields := strings.Fields(line)
	switch fields[0] {
	case "status":
		for _, id := range c.Alive() {
			st := c.Replica(id).Engine.Status()
			fmt.Printf("  %s  %-15v conf=%v green=%d red=%d prim=#%d vulnerable=%v set=%v\n",
				id, st.State, st.Conf.ID, st.GreenCount, st.RedCount,
				st.Prim.PrimIndex, st.Vulnerable, st.ServerSet)
		}
		return nil
	case "set":
		if len(fields) != 4 {
			return fmt.Errorf("usage: set <rep> <key> <value>")
		}
		r := c.Replica(types.ServerID(fields[1]))
		if r == nil {
			return fmt.Errorf("no replica %s", fields[1])
		}
		ch, err := r.Engine.SubmitAsync(db.EncodeUpdate(db.Set(fields[2], fields[3])), nil, types.SemStrict)
		if err != nil {
			return err
		}
		select {
		case reply := <-ch:
			if reply.Err != "" {
				return fmt.Errorf("aborted: %s", reply.Err)
			}
			fmt.Printf("  committed at global position %d\n", reply.GreenSeq)
		case <-time.After(500 * time.Millisecond):
			fmt.Println("  pending (red): will commit when a primary orders it")
		}
		return nil
	case "get", "dirty":
		if len(fields) != 3 {
			return fmt.Errorf("usage: %s <rep> <key>", fields[0])
		}
		r := c.Replica(types.ServerID(fields[1]))
		if r == nil {
			return fmt.Errorf("no replica %s", fields[1])
		}
		level := core.QueryWeak
		if fields[0] == "dirty" {
			level = core.QueryDirty
		}
		res, err := r.Engine.Query(ctx, db.Get(fields[2]), level)
		if err != nil {
			return err
		}
		if !res.Found {
			fmt.Println("  (not found)")
			return nil
		}
		fmt.Printf("  %s = %q (version %d, dirty=%v)\n", fields[2], res.Value, res.Version, res.Dirty)
		return nil
	case "partition":
		spec := strings.Join(fields[1:], " ")
		var groups [][]types.ServerID
		for _, g := range strings.Split(spec, "/") {
			var ids []types.ServerID
			for _, s := range strings.Split(g, ",") {
				if s = strings.TrimSpace(s); s != "" {
					ids = append(ids, types.ServerID(s))
				}
			}
			if len(ids) > 0 {
				groups = append(groups, ids)
			}
		}
		c.Partition(groups...)
		fmt.Printf("  partitioned into %d groups\n", len(groups))
		return nil
	case "heal":
		c.Heal()
		fmt.Println("  healed")
		return nil
	case "crash":
		if len(fields) != 2 {
			return fmt.Errorf("usage: crash <rep>")
		}
		c.Crash(types.ServerID(fields[1]))
		fmt.Println("  crashed (unsynced log records lost)")
		return nil
	case "recover":
		if len(fields) != 2 {
			return fmt.Errorf("usage: recover <rep>")
		}
		if _, err := c.Recover(types.ServerID(fields[1])); err != nil {
			return err
		}
		fmt.Println("  recovered from durable log")
		return nil
	case "join":
		if len(fields) != 3 {
			return fmt.Errorf("usage: join <newId> <via>")
		}
		if _, err := c.Join(ctx, types.ServerID(fields[1]), types.ServerID(fields[2])); err != nil {
			return err
		}
		fmt.Println("  joined")
		return nil
	case "leave":
		if len(fields) != 2 {
			return fmt.Errorf("usage: leave <rep>")
		}
		r := c.Replica(types.ServerID(fields[1]))
		if r == nil {
			return fmt.Errorf("no replica %s", fields[1])
		}
		return r.Engine.Leave(ctx)
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}
