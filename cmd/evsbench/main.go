// Command evsbench regenerates the paper's evaluation (§ 7):
//
//	evsbench -exp fig5a     # throughput vs clients: engine / COReL / 2PC
//	evsbench -exp fig5b     # engine forced vs delayed writes
//	evsbench -exp latency   # single-client average latency, three systems
//	evsbench -exp batching  # action batching off vs on, plus codec allocs
//	evsbench -exp parallel-apply  # dependency-aware parallel green apply scaling
//	evsbench -exp all       # everything
//
// The -sync flag sets the simulated forced-write latency (the knob that
// stands in for the 2001 testbed's disks). Absolute numbers differ from
// the paper; the ordering and ratios are the reproduction target.
//
// -json writes the batching experiment's results as a machine-readable
// file (the repo commits one as BENCH_batching.json), so perf changes
// have a comparable trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"evsdb/internal/bench"
	"evsdb/internal/core"
	"evsdb/internal/evs"
	"evsdb/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("exp", "all", "experiment: fig5a, fig5b, latency, batching, parallel-apply, all")
		replicas    = flag.Int("replicas", 14, "number of replicas (paper: 14)")
		actions     = flag.Int("actions", 100, "actions per client per data point")
		syncLat     = flag.Duration("sync", 2*time.Millisecond, "simulated forced-write latency")
		clients     = flag.String("clients", "1,2,4,7,10,14", "client counts for throughput curves")
		batches     = flag.Int("batches", 200, "batches per parallel-apply data point")
		batchSize   = flag.Int("batch-size", 64, "actions per batch in the parallel-apply experiment")
		jsonPath    = flag.String("json", "", "write batching or parallel-apply results to this JSON file (e.g. BENCH_batching.json)")
		metricsPath = flag.String("metrics", "", "write replica 0's final /metrics exposition from the batching experiment to this file (validated against the in-repo parser)")
	)
	flag.Parse()

	var clientCounts []int
	for _, part := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -clients value %q: %w", part, err)
		}
		clientCounts = append(clientCounts, n)
	}

	switch *exp {
	case "fig5a":
		return fig5a(*replicas, clientCounts, *actions, *syncLat)
	case "fig5b":
		return fig5b(*replicas, clientCounts, *actions, *syncLat)
	case "latency":
		return latency(*replicas, *actions, *syncLat)
	case "costmodel":
		return costModel(*replicas, *actions, *syncLat)
	case "batching":
		return batching(*replicas, clientCounts, *actions, *syncLat, *jsonPath, *metricsPath)
	case "parallel-apply":
		return parallelApply(*batches, *batchSize, *jsonPath)
	case "all":
		if err := fig5a(*replicas, clientCounts, *actions, *syncLat); err != nil {
			return err
		}
		if err := fig5b(*replicas, clientCounts, *actions, *syncLat); err != nil {
			return err
		}
		if err := latency(*replicas, *actions, *syncLat); err != nil {
			return err
		}
		if err := costModel(*replicas, *actions, *syncLat); err != nil {
			return err
		}
		if err := batching(*replicas, clientCounts, *actions, *syncLat, *jsonPath, *metricsPath); err != nil {
			return err
		}
		// -json is consumed by the batching run above; the parallel-apply
		// artifact is only written when the experiment runs on its own.
		return parallelApply(*batches, *batchSize, "")
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

// costModel prints the empirical per-action message and forced-write
// counts behind the paper's § 7 cost claims.
func costModel(replicas, actions int, syncLat time.Duration) error {
	fmt.Printf("== § 7 cost model: per-action messages and forced writes, %d replicas ==\n", replicas)
	rows, err := bench.CostModel(replicas, actions, syncLat)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Println()
	return nil
}

func fig5a(replicas int, clients []int, actions int, syncLat time.Duration) error {
	fmt.Printf("== Figure 5(a): throughput vs clients, %d replicas, forced writes (sync=%v) ==\n",
		replicas, syncLat)
	for _, sys := range []bench.System{bench.Engine, bench.COReL, bench.TwoPC} {
		results, err := bench.Series(sys, replicas, clients, actions, syncLat)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
	}
	fmt.Println()
	return nil
}

func fig5b(replicas int, clients []int, actions int, syncLat time.Duration) error {
	fmt.Printf("== Figure 5(b): engine delayed vs forced writes, %d replicas ==\n", replicas)
	for _, sys := range []bench.System{bench.EngineDelayed, bench.Engine} {
		results, err := bench.Series(sys, replicas, clients, actions, syncLat)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
	}
	fmt.Println()
	return nil
}

// batchRun is one row of the batching experiment's JSON output.
type batchRun struct {
	Mode       string  `json:"mode"` // "unbatched" | "batched"
	Clients    int     `json:"clients"`
	Actions    int     `json:"actions"`
	Throughput float64 `json:"actionsPerSec"`
	AvgMs      float64 `json:"avgLatencyMs"`
	P50Ms      float64 `json:"p50LatencyMs"`
	P99Ms      float64 `json:"p99LatencyMs"`
}

// batchReport is the BENCH_batching.json schema.
type batchReport struct {
	Experiment  string             `json:"experiment"`
	Replicas    int                `json:"replicas"`
	SyncLatency string             `json:"syncLatency"`
	Workload    string             `json:"workload"`
	Runs        []batchRun         `json:"runs"`
	Speedup     map[string]float64 `json:"speedupByClients"` // batched / unbatched throughput
	CodecAllocs map[string]float64 `json:"codecAllocsPerOp"`
}

func toRun(mode string, r bench.Result) batchRun {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return batchRun{
		Mode: mode, Clients: r.Clients, Actions: r.Actions, Throughput: r.Throughput,
		AvgMs: ms(r.AvgLatency), P50Ms: ms(r.P50Latency), P99Ms: ms(r.P99Latency),
	}
}

// batching measures the action batching pipeline: the engine's
// forced-write closed-loop workload with batching disabled (MaxBatch 1,
// the pre-batching pipeline) versus enabled (engine defaults), plus the
// wire codecs' allocations per operation.
func batching(replicas int, clients []int, actions int, syncLat time.Duration, jsonPath, metricsPath string) error {
	fmt.Printf("== Batching: engine forced writes, %d replicas, batching off vs on (sync=%v) ==\n",
		replicas, syncLat)
	report := batchReport{
		Experiment:  "batching",
		Replicas:    replicas,
		SyncLatency: syncLat.String(),
		Workload:    fmt.Sprintf("closed-loop, %d strict 200B update actions per client", actions),
		Speedup:     make(map[string]float64),
	}
	var exposition string // replica 0's metrics from the last batched run
	for _, n := range clients {
		base := bench.Config{
			System:           bench.Engine,
			Replicas:         replicas,
			Clients:          n,
			ActionsPerClient: actions,
			SyncLatency:      syncLat,
		}
		base.CaptureMetrics = metricsPath != ""
		off := base
		off.MaxBatch = 1 // disable batching
		off.CaptureMetrics = false
		unbatched, err := bench.Run(off)
		if err != nil {
			return fmt.Errorf("unbatched clients=%d: %w", n, err)
		}
		fmt.Println("  off " + unbatched.String())
		batched, err := bench.Run(base)
		if err != nil {
			return fmt.Errorf("batched clients=%d: %w", n, err)
		}
		speedup := batched.Throughput / unbatched.Throughput
		fmt.Printf("  on  %v  (%.2fx)\n", batched, speedup)
		report.Runs = append(report.Runs, toRun("unbatched", unbatched), toRun("batched", batched))
		report.Speedup[strconv.Itoa(n)] = speedup
		exposition = batched.Metrics
	}

	evsEnc, evsDec := evs.CodecAllocsPerOp()
	binEnc, binDec, jsonEnc, jsonDec := core.CodecAllocsPerOp()
	report.CodecAllocs = map[string]float64{
		"evsDataEncode":      evsEnc,
		"evsDataDecode":      evsDec,
		"engineActionEncode": binEnc,
		"engineActionDecode": binDec,
		"legacyJSONEncode":   jsonEnc,
		"legacyJSONDecode":   jsonDec,
	}
	fmt.Printf("  codec allocs/op: evs data enc=%.1f dec=%.1f | engine action enc=%.1f dec=%.1f (legacy JSON enc=%.1f dec=%.1f)\n",
		evsEnc, evsDec, binEnc, binDec, jsonEnc, jsonDec)
	fmt.Println()

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n\n", jsonPath)
	}
	if metricsPath != "" {
		// Reject the exposition before writing it: an unparseable scrape is
		// a bug, and this is the check CI leans on.
		if _, err := obs.ParseExposition(exposition); err != nil {
			return fmt.Errorf("metrics exposition invalid: %w", err)
		}
		if err := os.WriteFile(metricsPath, []byte(exposition), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (%d bytes, parser-validated)\n\n", metricsPath, len(exposition))
	}
	return nil
}

func latency(replicas, actions int, syncLat time.Duration) error {
	fmt.Printf("== § 7 latency: 1 client, %d sequential actions, %d replicas (sync=%v) ==\n",
		actions, replicas, syncLat)
	for _, sys := range []bench.System{bench.Engine, bench.COReL, bench.TwoPC} {
		r, err := bench.Run(bench.Config{
			System:           sys,
			Replicas:         replicas,
			Clients:          1,
			ActionsPerClient: actions,
			SyncLatency:      syncLat,
		})
		if err != nil {
			return err
		}
		fmt.Println("  " + r.String())
	}
	fmt.Println()
	return nil
}
