// Command evsbench regenerates the paper's evaluation (§ 7):
//
//	evsbench -exp fig5a    # throughput vs clients: engine / COReL / 2PC
//	evsbench -exp fig5b    # engine forced vs delayed writes
//	evsbench -exp latency  # single-client average latency, three systems
//	evsbench -exp all      # everything
//
// The -sync flag sets the simulated forced-write latency (the knob that
// stands in for the 2001 testbed's disks). Absolute numbers differ from
// the paper; the ordering and ratios are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"evsdb/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: fig5a, fig5b, latency, all")
		replicas = flag.Int("replicas", 14, "number of replicas (paper: 14)")
		actions  = flag.Int("actions", 100, "actions per client per data point")
		syncLat  = flag.Duration("sync", 2*time.Millisecond, "simulated forced-write latency")
		clients  = flag.String("clients", "1,2,4,7,10,14", "client counts for throughput curves")
	)
	flag.Parse()

	var clientCounts []int
	for _, part := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -clients value %q: %w", part, err)
		}
		clientCounts = append(clientCounts, n)
	}

	switch *exp {
	case "fig5a":
		return fig5a(*replicas, clientCounts, *actions, *syncLat)
	case "fig5b":
		return fig5b(*replicas, clientCounts, *actions, *syncLat)
	case "latency":
		return latency(*replicas, *actions, *syncLat)
	case "costmodel":
		return costModel(*replicas, *actions, *syncLat)
	case "all":
		if err := fig5a(*replicas, clientCounts, *actions, *syncLat); err != nil {
			return err
		}
		if err := fig5b(*replicas, clientCounts, *actions, *syncLat); err != nil {
			return err
		}
		if err := latency(*replicas, *actions, *syncLat); err != nil {
			return err
		}
		return costModel(*replicas, *actions, *syncLat)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

// costModel prints the empirical per-action message and forced-write
// counts behind the paper's § 7 cost claims.
func costModel(replicas, actions int, syncLat time.Duration) error {
	fmt.Printf("== § 7 cost model: per-action messages and forced writes, %d replicas ==\n", replicas)
	rows, err := bench.CostModel(replicas, actions, syncLat)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Println()
	return nil
}

func fig5a(replicas int, clients []int, actions int, syncLat time.Duration) error {
	fmt.Printf("== Figure 5(a): throughput vs clients, %d replicas, forced writes (sync=%v) ==\n",
		replicas, syncLat)
	for _, sys := range []bench.System{bench.Engine, bench.COReL, bench.TwoPC} {
		results, err := bench.Series(sys, replicas, clients, actions, syncLat)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
	}
	fmt.Println()
	return nil
}

func fig5b(replicas int, clients []int, actions int, syncLat time.Duration) error {
	fmt.Printf("== Figure 5(b): engine delayed vs forced writes, %d replicas ==\n", replicas)
	for _, sys := range []bench.System{bench.EngineDelayed, bench.Engine} {
		results, err := bench.Series(sys, replicas, clients, actions, syncLat)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
	}
	fmt.Println()
	return nil
}

func latency(replicas, actions int, syncLat time.Duration) error {
	fmt.Printf("== § 7 latency: 1 client, %d sequential actions, %d replicas (sync=%v) ==\n",
		actions, replicas, syncLat)
	for _, sys := range []bench.System{bench.Engine, bench.COReL, bench.TwoPC} {
		r, err := bench.Run(bench.Config{
			System:           sys,
			Replicas:         replicas,
			Clients:          1,
			ActionsPerClient: actions,
			SyncLatency:      syncLat,
		})
		if err != nil {
			return err
		}
		fmt.Println("  " + r.String())
	}
	fmt.Println()
	return nil
}
