package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"evsdb/internal/db"
	"evsdb/internal/obs"
)

// The parallel-apply experiment measures green-apply throughput at the
// database layer — the exact path the engine's fused applyGreenRun
// drives — comparing the PR 4 sequential batched applier (ApplyBatch)
// against the dependency-aware parallel scheduler (ApplyBatchParallel)
// at several worker-pool widths, across workloads with very different
// conflict structure. The committed artifact is BENCH_parallel_apply.json.

// parWorkload generates deterministic batches with a known conflict
// profile.
type parWorkload struct {
	name string
	desc string
	gen  func(batch, i int) []byte
}

func parWorkloads() []parWorkload {
	val := func(i int) string { return fmt.Sprintf("v%08d", i) }
	return []parWorkload{
		{
			name: "conflict-light",
			desc: "strict set+add per update, all-distinct keys (one wave per batch)",
			gen: func(b, i int) []byte {
				k := fmt.Sprintf("k%05d-%03d", b, i)
				return db.EncodeUpdate(db.Set(k, val(i)), db.Add("ctr:"+k, 1))
			},
		},
		{
			name: "conflict-heavy",
			desc: "strict set+add per update over 8 shared keys (waves split constantly)",
			gen: func(b, i int) []byte {
				k := fmt.Sprintf("hot%d", i%8)
				return db.EncodeUpdate(db.Set(k, val(i)), db.Add("ctr:"+k, 1))
			},
		},
		{
			name: "commutative",
			desc: "§6 commutative adds on one shared counter (class fast path, one wave)",
			gen: func(b, i int) []byte {
				return db.EncodeUpdate(db.Add("ctr", 1), db.Add(fmt.Sprintf("ctr:%d", i%16), 1))
			},
		},
		{
			name: "barrier-heavy",
			desc: "conflict-light with a cas barrier every 8th update",
			gen: func(b, i int) []byte {
				k := fmt.Sprintf("k%05d-%03d", b, i)
				if i%8 == 7 {
					return db.EncodeUpdate(db.CAS(nil, db.Set(k, val(i))))
				}
				return db.EncodeUpdate(db.Set(k, val(i)), db.Add("ctr:"+k, 1))
			},
		},
	}
}

// parRun is one (workload, workers) measurement.
type parRun struct {
	Workers    int     `json:"workers"`
	Throughput float64 `json:"actionsPerSec"`
	Speedup    float64 `json:"speedupVsSequential"`
	Waves      uint64  `json:"waves"`
	Conflicts  uint64  `json:"conflicts"`
	Barriers   uint64  `json:"barriers"`
}

type parWorkloadReport struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Sequential  float64  `json:"sequentialActionsPerSec"` // PR 4 ApplyBatch baseline
	Runs        []parRun `json:"runs"`
}

type parReport struct {
	Experiment string              `json:"experiment"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"numCPU"`
	Batch      int                 `json:"actionsPerBatch"`
	Batches    int                 `json:"batches"`
	Note       string              `json:"note"`
	Workloads  []parWorkloadReport `json:"workloads"`
}

// genBatches materializes every batch up front so encoding cost stays
// out of the measured window.
func genBatches(w parWorkload, batches, batchSize int) [][][]byte {
	out := make([][][]byte, batches)
	for b := range out {
		out[b] = make([][]byte, batchSize)
		for i := range out[b] {
			out[b][i] = w.gen(b, i)
		}
	}
	return out
}

func measureSequential(batches [][][]byte) float64 {
	warm := db.New()
	for _, b := range batches {
		warm.ApplyBatch(b)
	}
	d := db.New()
	n := 0
	start := time.Now()
	for _, b := range batches {
		d.ApplyBatch(b)
		n += len(b)
	}
	return float64(n) / time.Since(start).Seconds()
}

func measureParallel(batches [][][]byte, workers int) (float64, uint64, uint64, uint64) {
	warm := db.New()
	warm.SetApplyWorkers(workers)
	for _, b := range batches {
		warm.ApplyBatchParallel(b)
	}
	d := db.New()
	reg := obs.NewRegistry()
	d.Instrument(reg)
	d.SetApplyWorkers(workers)
	n := 0
	start := time.Now()
	for _, b := range batches {
		d.ApplyBatchParallel(b)
		n += len(b)
	}
	elapsed := time.Since(start).Seconds()
	// The registry hands back the same series on re-lookup, so the
	// scheduler's own instruments double as the experiment's probes.
	waves := reg.Counter("evsdb_apply_waves_total", "").Value()
	conflicts := reg.Counter("evsdb_apply_conflicts_total", "").Value()
	barriers := reg.Counter("evsdb_apply_barriers_total", "").Value()
	return float64(n) / elapsed, waves, conflicts, barriers
}

// parallelApply runs the experiment and optionally writes the JSON
// artifact.
func parallelApply(batches, batchSize int, jsonPath string) error {
	fmt.Printf("== Parallel green apply: db-level ApplyBatchParallel vs sequential ApplyBatch (%d batches x %d actions) ==\n",
		batches, batchSize)
	report := parReport{
		Experiment: "parallel-apply",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Batch:      batchSize,
		Batches:    batches,
		Note: "speedup is wall-clock and therefore bounded by physical cores: " +
			"on a single-CPU host the parallel scheduler can only match the sequential " +
			"baseline (its win there is decode outside the state lock, which keeps " +
			"concurrent reads unblocked); multi-core scaling comes from parallel decode " +
			"and wave evaluation",
	}
	for _, w := range parWorkloads() {
		data := genBatches(w, batches, batchSize)
		wr := parWorkloadReport{Name: w.name, Description: w.desc}
		wr.Sequential = measureSequential(data)
		fmt.Printf("  %-15s sequential %.0f actions/s\n", w.name, wr.Sequential)
		for _, workers := range []int{1, 2, 4, 8} {
			tput, waves, conflicts, barriers := measureParallel(data, workers)
			run := parRun{
				Workers:    workers,
				Throughput: tput,
				Speedup:    tput / wr.Sequential,
				Waves:      waves,
				Conflicts:  conflicts,
				Barriers:   barriers,
			}
			wr.Runs = append(wr.Runs, run)
			fmt.Printf("  %-15s workers=%d  %.0f actions/s (%.2fx)  waves=%d conflicts=%d barriers=%d\n",
				w.name, workers, tput, run.Speedup, waves, conflicts, barriers)
		}
		report.Workloads = append(report.Workloads, wr)
	}
	fmt.Println()
	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n\n", jsonPath)
	}
	return nil
}
