// Benchmarks regenerating the paper's evaluation (§ 7). One benchmark per
// figure/series; cmd/evsbench runs the same experiments at full paper
// scale (14 replicas, thousands of actions) with pretty-printed output.
//
// The -benchtime and replica counts here are sized so `go test -bench=.`
// finishes in minutes on a small host while preserving the paper's shape:
//
//	Fig. 5(a): Engine > COReL > 2PC  (throughput, forced writes)
//	Fig. 5(b): delayed writes >> forced writes
//	Latency:   Engine ≈ COReL ≈ ~half of 2PC (two forced writes serialized)
package evsdb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evsdb/internal/bench"
	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/quorum"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

const (
	benchReplicas = 5
	benchClients  = 5
	benchSync     = 500 * time.Microsecond
)

// driveClosedLoop runs b.N actions across clients against the runner and
// reports throughput.
func driveClosedLoop(b *testing.B, runner *bench.Runner, clients int) {
	b.Helper()
	payload := runner.Payload()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	per := b.N / clients
	extra := b.N % clients
	for c := 0; c < clients; c++ {
		n := per
		if c < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := runner.Submit(ctx, c, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "actions/s")
	}
}

func benchThroughput(b *testing.B, sys bench.System) {
	b.Helper()
	runner, err := bench.NewRunner(bench.Config{
		System:      sys,
		Replicas:    benchReplicas,
		SyncLatency: benchSync,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	driveClosedLoop(b, runner, benchClients)
}

// Figure 5(a): throughput under forced writes, three systems.

func BenchmarkFig5aEngine(b *testing.B) { benchThroughput(b, bench.Engine) }
func BenchmarkFig5aCOReL(b *testing.B)  { benchThroughput(b, bench.COReL) }
func BenchmarkFig5aTwoPC(b *testing.B)  { benchThroughput(b, bench.TwoPC) }

// Figure 5(b): the engine with forced versus delayed disk writes.

func BenchmarkFig5bForced(b *testing.B)  { benchThroughput(b, bench.Engine) }
func BenchmarkFig5bDelayed(b *testing.B) { benchThroughput(b, bench.EngineDelayed) }

// § 7 latency: one sequential client; ns/op is the per-action latency.

func benchLatency(b *testing.B, sys bench.System) {
	b.Helper()
	runner, err := bench.NewRunner(bench.Config{
		System:      sys,
		Replicas:    benchReplicas,
		SyncLatency: benchSync,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	payload := runner.Payload()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Submit(ctx, 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyEngine(b *testing.B) { benchLatency(b, bench.Engine) }
func BenchmarkLatencyCOReL(b *testing.B)  { benchLatency(b, bench.COReL) }
func BenchmarkLatencyTwoPC(b *testing.B)  { benchLatency(b, bench.TwoPC) }

// Ablation: Safe versus Agreed delivery on the raw EVS layer — the price
// of the guarantee the engine's correctness depends on (§ 4).

func benchEVS(b *testing.B, service evs.ServiceLevel) {
	b.Helper()
	net := memnet.New()
	var nodes []*evs.Node
	for i := 0; i < benchReplicas; i++ {
		ep, err := net.Attach(cluster.ServerID(i))
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, evs.NewNode(ep, evs.WithTick(500*time.Microsecond)))
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	// Drain every node; count deliveries at node 0.
	delivered := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *evs.Node) {
			defer wg.Done()
			for ev := range n.Events() {
				if i == 0 {
					if _, ok := ev.(evs.Delivery); ok {
						delivered <- struct{}{}
					}
				}
			}
		}(i, n)
	}
	// Wait for the initial view.
	time.Sleep(300 * time.Millisecond)
	payload := []byte("0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Multicast(payload, service); err != nil {
			b.Fatal(err)
		}
		select {
		case <-delivered:
		case <-time.After(30 * time.Second):
			b.Fatal("delivery timed out")
		}
	}
	b.StopTimer()
	for _, n := range nodes {
		n.Close()
	}
	wg.Wait()
}

func BenchmarkEVSAgreed(b *testing.B) { benchEVS(b, evs.Agreed) }
func BenchmarkEVSSafe(b *testing.B)   { benchEVS(b, evs.Safe) }

// Ablation: quorum rules (pure CPU cost; the availability difference is
// covered by TestDLVSurvivesShrinkingPartitions).

func benchQuorum(b *testing.B, sys quorum.System) {
	b.Helper()
	last := make([]types.ServerID, 14)
	for i := range last {
		last[i] = cluster.ServerID(i)
	}
	members := last[:8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.IsQuorum(members, last) {
			b.Fatal("unexpected quorum refusal")
		}
	}
}

func BenchmarkQuorumDynamicLinear(b *testing.B) { benchQuorum(b, quorum.DynamicLinear{}) }
func BenchmarkQuorumStaticMajority(b *testing.B) {
	all := make([]types.ServerID, 14)
	for i := range all {
		all[i] = cluster.ServerID(i)
	}
	benchQuorum(b, quorum.StaticMajority{All: all})
}

// Sanity: the benchmark stacks produce the counts they claim.
func TestBenchRunnerSmoke(t *testing.T) {
	for _, sys := range []bench.System{bench.Engine, bench.EngineDelayed, bench.COReL, bench.TwoPC} {
		t.Run(fmt.Sprint(sys), func(t *testing.T) {
			res, err := bench.Run(bench.Config{
				System:           sys,
				Replicas:         3,
				Clients:          2,
				ActionsPerClient: 5,
				SyncLatency:      benchSync,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Actions != 10 || res.Throughput <= 0 {
				t.Fatalf("bad result: %+v", res)
			}
		})
	}
}

// Keep storage import used regardless of benchmark edits.
var _ = storage.SyncForced

// § 6 query optimization: strict query-only requests in the primary skip
// the ordering round entirely. Compare against an equivalent ordered
// read-modify-nothing action.
func BenchmarkStrictQueryFastPath(b *testing.B) {
	runner, err := bench.NewRunner(bench.Config{Replicas: benchReplicas, System: bench.Engine})
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	eng := runner.Engine(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	q := db.Get("missing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, q, core.QueryStrict); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderedNoop is the ordered-action baseline the fast path is
// measured against.
func BenchmarkOrderedNoop(b *testing.B) {
	runner, err := bench.NewRunner(bench.Config{Replicas: benchReplicas, System: bench.Engine})
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	payload := db.EncodeUpdate(db.Noop("x"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Submit(ctx, 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}
