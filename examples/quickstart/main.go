// Quickstart: bring up a five-replica cluster in one process, perform
// replicated writes at different replicas, and read the state back from
// every replica.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A cluster bundles transport, group communication, stable storage,
	// database and replication engine for each replica.
	c, err := cluster.New(5)
	if err != nil {
		return err
	}
	defer c.Close()

	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		return err
	}
	fmt.Println("primary component installed across", len(ids), "replicas")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Strict (one-copy serializable) writes, submitted at different
	// replicas: the engine assigns them one global persistent order.
	writes := map[string]string{
		"user/alice": "active",
		"user/bob":   "active",
		"config/ttl": "3600",
	}
	i := 0
	for key, value := range writes {
		eng := c.Replica(ids[i%len(ids)]).Engine
		reply, err := eng.Submit(ctx, db.EncodeUpdate(db.Set(key, value)), nil, types.SemStrict)
		if err != nil {
			return fmt.Errorf("submit %s: %w", key, err)
		}
		fmt.Printf("wrote %s=%s (global order position %d)\n", key, value, reply.GreenSeq)
		i++
	}

	// An update with a query part: the answer reflects the state right
	// after the update applies, at its global position.
	reply, err := c.Replica(ids[0]).Engine.Submit(ctx,
		db.EncodeUpdate(db.Set("config/ttl", "7200")),
		db.Get("config/ttl"), types.SemStrict)
	if err != nil {
		return err
	}
	fmt.Printf("updated config/ttl, read back %q at position %d\n",
		reply.Result.Value, reply.GreenSeq)

	// Every replica converges to the same state.
	for _, id := range ids {
		res, err := c.Replica(id).Engine.Query(ctx, db.Prefix("user/"), core.QueryWeak)
		if err != nil {
			return err
		}
		fmt.Printf("%s sees %d users\n", id, len(res.Values))
	}
	return nil
}
