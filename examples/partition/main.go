// Partition walks through the paper's central scenario: a five-replica
// cluster partitions into a majority and a minority component. The
// majority keeps committing (green actions); the minority accumulates red
// actions, answers weak and dirty queries, and blocks strict commits.
// After the merge, one state-exchange round — not per-action
// acknowledgments — reconciles everything.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run() error {
	c, err := cluster.New(5)
	if err != nil {
		return err
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	must := func(eng *core.Engine, key, value string) error {
		r, err := eng.Submit(ctx, db.EncodeUpdate(db.Set(key, value)), nil, types.SemStrict)
		if err != nil {
			return err
		}
		if r.Err != "" {
			return fmt.Errorf("aborted: %s", r.Err)
		}
		return nil
	}

	if err := must(c.Replica(ids[0]).Engine, "city", "baltimore"); err != nil {
		return err
	}
	fmt.Println("before partition: city=baltimore replicated to all 5")

	majority, minority := ids[:3], ids[3:]
	c.Partition(majority, minority)
	fmt.Printf("partitioned: %v | %v\n", majority, minority)

	if err := c.WaitPrimary(10*time.Second, majority...); err != nil {
		return err
	}
	if err := c.WaitNonPrim(10*time.Second, minority...); err != nil {
		return err
	}
	fmt.Println("majority re-formed the primary component (dynamic linear voting)")

	// The majority commits normally.
	if err := must(c.Replica(majority[0]).Engine, "city", "annapolis"); err != nil {
		return err
	}
	fmt.Println("majority committed city=annapolis")

	// The minority submits a strict write: it turns red (ordered locally,
	// global order unknown) and the client blocks.
	minEng := c.Replica(minority[0]).Engine
	pending, err := minEng.SubmitAsync(db.EncodeUpdate(db.Set("note", "from-minority")), nil, types.SemStrict)
	if err != nil {
		return err
	}
	select {
	case <-pending:
		return fmt.Errorf("minority write committed during partition — quorum violated")
	case <-time.After(200 * time.Millisecond):
		fmt.Println("minority strict write is red: blocked until a primary orders it")
	}

	// Weak query: consistent but possibly obsolete.
	weak, err := minEng.Query(ctx, db.Get("city"), core.QueryWeak)
	if err != nil {
		return err
	}
	fmt.Printf("minority weak read: city=%q (obsolete, version %d)\n", weak.Value, weak.Version)

	// Dirty query: includes red effects.
	for {
		dirty, err := minEng.Query(ctx, db.Get("note"), core.QueryDirty)
		if err != nil {
			return err
		}
		if dirty.Found {
			fmt.Printf("minority dirty read: note=%q (dirty=%v)\n", dirty.Value, dirty.Dirty)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.Heal()
	fmt.Println("network healed: one exchange round reconciles the components")
	if err := c.WaitPrimary(20*time.Second, ids...); err != nil {
		return err
	}

	select {
	case r := <-pending:
		fmt.Printf("minority write committed after merge at global position %d\n", r.GreenSeq)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("minority write never committed after merge")
	}

	for _, id := range ids {
		res, err := c.Replica(id).Engine.Query(ctx, db.Get("note"), core.QueryWeak)
		if err != nil {
			return err
		}
		if res.Value != "from-minority" {
			return fmt.Errorf("%s did not converge: note=%q", id, res.Value)
		}
	}
	fmt.Println("all replicas converged; total order verified:",
		c.CheckTotalOrder(ids...) == nil)
	return nil
}
