// Dynamic-join exercises the paper's § 5.1 online reconfiguration: a
// running three-replica system admits a brand-new replica via a
// PERSISTENT_JOIN action and a database transfer, then permanently
// retires one of the original replicas via PERSISTENT_LEAVE — all while
// the system keeps executing.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamic-join:", err)
		os.Exit(1)
	}
}

func run() error {
	c, err := cluster.New(3)
	if err != nil {
		return err
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// History the joiner must inherit through the snapshot.
	for i := 0; i < 20; i++ {
		if _, err := c.Replica(ids[i%3]).Engine.Submit(ctx,
			db.EncodeUpdate(db.Set(fmt.Sprintf("hist/%02d", i), "x")), nil, types.SemStrict); err != nil {
			return err
		}
	}
	fmt.Println("3 replicas, 20 actions ordered")

	// Join: ids[1] acts as the representative. It orders a
	// PERSISTENT_JOIN action; when that action turns green, the snapshot
	// is taken at exactly that global position and transferred.
	joiner := types.ServerID("s99")
	if _, err := c.Join(ctx, joiner, ids[1]); err != nil {
		return err
	}
	fmt.Printf("%s joined via representative %s\n", joiner, ids[1])

	// The joiner inherits pre-join history and participates from the join
	// point on.
	jEng := c.Replica(joiner).Engine
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := jEng.Query(ctx, db.Prefix("hist/"), core.QueryWeak)
		if err != nil {
			return err
		}
		if len(res.Values) == 20 {
			fmt.Println("joiner inherited all 20 historical keys via the snapshot")
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("joiner stuck at %d keys", len(res.Values))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The joiner originates its own globally ordered actions.
	r, err := jEng.Submit(ctx, db.EncodeUpdate(db.Set("greeting", "hello-from-s99")), nil, types.SemStrict)
	if err != nil || r.Err != "" {
		return fmt.Errorf("joiner submit: %v %q", err, r.Err)
	}
	fmt.Printf("joiner's own action ordered at global position %d\n", r.GreenSeq)

	// The joiner now counts: 4 replicas, quorum is 3.
	all := append(append([]types.ServerID(nil), ids...), joiner)
	if err := c.WaitPrimary(10*time.Second, all...); err != nil {
		return err
	}

	// Retire one original replica permanently. The replica set shrinks to
	// 3, so the remaining majority requirement shrinks with it — without
	// PERSISTENT_LEAVE the system would forever require 3 of 4.
	if err := c.Replica(ids[2]).Engine.Leave(ctx); err != nil {
		return err
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		set := c.Replica(ids[0]).Engine.Status().ServerSet
		if len(set) == 3 {
			fmt.Printf("replica set after leave: %v\n", set)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leave never settled: %v", set)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Survivors plus the joiner still make progress without the retiree.
	c.Crash(ids[2])
	if err := c.WaitPrimary(10*time.Second, ids[0], ids[1], joiner); err != nil {
		return err
	}
	if _, err := c.Replica(ids[0]).Engine.Submit(ctx,
		db.EncodeUpdate(db.Set("after-leave", "ok")), nil, types.SemStrict); err != nil {
		return err
	}
	fmt.Println("system keeps committing after the permanent removal")
	return nil
}
