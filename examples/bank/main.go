// Bank demonstrates the paper's § 6 application semantics on an
// inventory/accounts workload:
//
//   - commutative updates (stock increments) stay available in every
//     component during a partition and converge after the merge;
//   - interactive transfers use the two-action pattern: read, then a
//     guarded (check-and-apply) update that aborts deterministically when
//     the read values changed;
//   - an active action (registered procedure) applies interest at
//     ordering time, identically at every replica.
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"time"

	"evsdb/internal/cluster"
	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	c, err := cluster.New(5)
	if err != nil {
		return err
	}
	defer c.Close()
	ids := c.IDs()

	// Active actions need the procedure registered at every replica
	// before any action invokes it.
	for _, id := range ids {
		c.Replica(id).Engine.DB().RegisterProc("apply-interest", applyInterest)
	}
	if err := c.WaitPrimary(10*time.Second, ids...); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	eng := func(i int) *core.Engine { return c.Replica(ids[i]).Engine }

	// Seed accounts.
	if _, err := eng(0).Submit(ctx, db.EncodeUpdate(
		db.Set("acct/alice", "100"),
		db.Set("acct/bob", "50"),
	), nil, types.SemStrict); err != nil {
		return err
	}

	// --- Commutative inventory across a partition -------------------
	c.Partition(ids[:3], ids[3:])
	if err := c.WaitPrimary(10*time.Second, ids[:3]...); err != nil {
		return err
	}
	if err := c.WaitNonPrim(10*time.Second, ids[3:]...); err != nil {
		return err
	}
	fmt.Println("partitioned; warehouse keeps receiving stock on both sides")

	// Majority side receives 30 units; minority side SELLS 10 (temporary
	// negative stock is allowed, the paper's inventory example).
	if _, err := eng(0).Submit(ctx, db.EncodeUpdate(db.Add("stock/widgets", 30)), nil, types.SemCommutative); err != nil {
		return err
	}
	r, err := eng(4).Submit(ctx, db.EncodeUpdate(db.Add("stock/widgets", -10)), nil, types.SemCommutative)
	if err != nil {
		return err
	}
	fmt.Printf("minority sale applied immediately (err=%q) — availability preserved\n", r.Err)

	c.Heal()
	if err := c.WaitPrimary(20*time.Second, ids...); err != nil {
		return err
	}
	waitStock := func(id types.ServerID, want string) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			res, err := c.Replica(id).Engine.Query(ctx, db.Get("stock/widgets"), core.QueryWeak)
			if err != nil {
				return err
			}
			if res.Value == want {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s: stock=%q, want %s", id, res.Value, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, id := range ids {
		if err := waitStock(id, "20"); err != nil {
			return err
		}
	}
	fmt.Println("after merge every replica agrees: stock/widgets = 20")

	// --- Interactive transfer (two-action pattern) ------------------
	read, err := eng(1).Query(ctx, db.Get("acct/alice"), core.QueryStrict)
	if err != nil {
		return err
	}
	fmt.Printf("transfer step 1: read alice=%s\n", read.Value)

	// Concurrent interference: someone else debits alice first.
	if _, err := eng(2).Submit(ctx, db.EncodeUpdate(db.Set("acct/alice", "80")), nil, types.SemStrict); err != nil {
		return err
	}

	// Step 2: guarded update using the step-1 read. The guard fails at
	// every replica identically — a deterministic abort.
	guard := map[string]string{"acct/alice": read.Value}
	r, err = eng(1).Submit(ctx, db.EncodeUpdate(
		db.CAS(guard, db.Add("acct/alice", -25), db.Add("acct/bob", 25)),
	), nil, types.SemStrict)
	if err != nil {
		return err
	}
	fmt.Printf("transfer with stale read aborted deterministically: %q\n", r.Err)

	// Retry with a fresh read.
	read, err = eng(1).Query(ctx, db.Get("acct/alice"), core.QueryStrict)
	if err != nil {
		return err
	}
	r, err = eng(1).Submit(ctx, db.EncodeUpdate(
		db.CAS(map[string]string{"acct/alice": read.Value},
			db.Add("acct/alice", -25), db.Add("acct/bob", 25)),
	), nil, types.SemStrict)
	if err != nil || r.Err != "" {
		return fmt.Errorf("fresh transfer failed: %v %q", err, r.Err)
	}
	fmt.Println("fresh transfer committed: alice -25, bob +25")

	// --- Active action: interest applied at ordering time -----------
	if _, err := eng(3).Submit(ctx, db.EncodeUpdate(db.Proc("apply-interest", nil)), nil, types.SemStrict); err != nil {
		return err
	}
	res, err := eng(0).Query(ctx, db.Get("acct/bob"), core.QueryStrict)
	if err != nil {
		return err
	}
	fmt.Printf("after 10%% interest: bob=%s\n", res.Value)
	return nil
}

// applyInterest is deterministic: it depends only on the database state
// at the action's global position.
func applyInterest(tx *db.Tx, _ []byte) error {
	for _, acct := range []string{"acct/alice", "acct/bob"} {
		v, ok := tx.Get(acct)
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%s holds %q", acct, v)
		}
		tx.Set(acct, strconv.FormatInt(n+n/10, 10))
	}
	return nil
}
