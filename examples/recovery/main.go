// Recovery demonstrates the engine's crash story end to end with real
// file-backed write-ahead logs:
//
//   - forced writes make committed actions durable;
//   - a power failure loses everything after the last fsync, including
//     green actions the crashed replica had applied — but NOT the
//     vulnerable record, so the recovered replica re-learns what it lost
//     through an exchange instead of presenting itself as knowledgeable;
//   - checkpointing compacts the log so recovery replays a snapshot plus
//     a short tail instead of the whole history.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"evsdb/internal/core"
	"evsdb/internal/db"
	"evsdb/internal/evs"
	"evsdb/internal/storage"
	"evsdb/internal/transport/memnet"
	"evsdb/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(1)
	}
}

type replica struct {
	id  types.ServerID
	gc  *evs.Node
	eng *core.Engine
	wal *storage.FileLog
}

func run() error {
	dir, err := os.MkdirTemp("", "evsdb-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	net := memnet.New()
	ids := []types.ServerID{"r1", "r2", "r3"}

	start := func(id types.ServerID, recover bool) (*replica, error) {
		ep, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		wal, err := storage.OpenFileLog(filepath.Join(dir, string(id)+".wal"), storage.Options{
			Policy: storage.SyncForced,
		})
		if err != nil {
			return nil, err
		}
		gc := evs.NewNode(ep, evs.WithTick(500*time.Microsecond))
		eng, err := core.New(core.Config{
			ID: id, Servers: ids, GC: gc, Log: wal, Recover: recover,
		})
		if err != nil {
			return nil, err
		}
		return &replica{id: id, gc: gc, eng: eng, wal: wal}, nil
	}

	reps := make(map[types.ServerID]*replica)
	for _, id := range ids {
		r, err := start(id, false)
		if err != nil {
			return err
		}
		reps[id] = r
	}
	defer func() {
		for _, r := range reps {
			r.eng.Close()
			r.gc.Close()
			r.wal.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	waitState := func(id types.ServerID, want core.State) error {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if reps[id].eng.Status().State == want {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("%s never reached %v", id, want)
	}
	for _, id := range ids {
		if err := waitState(id, core.RegPrim); err != nil {
			return err
		}
	}

	for i := 0; i < 25; i++ {
		if _, err := reps[ids[i%3]].eng.Submit(ctx,
			db.EncodeUpdate(db.Set(fmt.Sprintf("key%02d", i), "v")), nil, types.SemStrict); err != nil {
			return err
		}
	}
	fmt.Println("25 actions committed with forced writes (real fsync on the WAL files)")

	// Compact r2's log before the crash.
	if err := reps["r2"].eng.Checkpoint(ctx); err != nil {
		return err
	}
	info, _ := os.Stat(filepath.Join(dir, "r2.wal"))
	fmt.Printf("checkpointed r2: WAL is %d bytes (snapshot + tail instead of full history)\n", info.Size())

	// Power failure at r2.
	net.Crash("r2")
	reps["r2"].eng.Close()
	reps["r2"].gc.Close()
	reps["r2"].wal.Close()
	fmt.Println("r2 crashed (process gone; WAL file survives)")

	if err := waitState("r1", core.RegPrim); err != nil {
		return err
	}
	if _, err := reps["r1"].eng.Submit(ctx,
		db.EncodeUpdate(db.Set("while-down", "missed-by-r2")), nil, types.SemStrict); err != nil {
		return err
	}
	fmt.Println("r1+r3 kept the primary and committed more work")

	// Recovery: replay the WAL, rejoin, exchange, converge.
	r2, err := start("r2", true)
	if err != nil {
		return err
	}
	reps["r2"] = r2
	if err := waitState("r2", core.RegPrim); err != nil {
		return err
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := r2.eng.Query(ctx, db.Get("while-down"), core.QueryWeak)
		if err != nil {
			return err
		}
		if res.Value == "missed-by-r2" {
			fmt.Println("r2 recovered from its WAL and caught up via one exchange round")
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("r2 never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := r2.eng.Status()
	fmt.Printf("r2 final state: %v, %d green actions, primary #%d\n",
		st.State, st.GreenCount, st.Prim.PrimIndex)
	return nil
}
