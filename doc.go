// Package evsdb is a from-scratch Go reproduction of Amir & Tutu, "From
// Total Order to Database Replication" (Johns Hopkins CNDS-2001-6 /
// ICDCS 2002): a partition-aware database replication engine built on an
// Extended Virtual Synchrony group communication layer, with the COReL
// and two-phase-commit baselines the paper evaluates against.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation. The benchmarks in bench_test.go regenerate each
// figure of the paper's § 7; cmd/evsbench runs them at paper scale.
package evsdb
